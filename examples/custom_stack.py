#!/usr/bin/env python
"""Composing, modifying, and live-upgrading a custom LabStack.

Shows the three manageability features of Section III:

1. a LabStack defined in the YAML schema and mounted;
2. ``modify_stack``: hot-inserting a Compression LabMod into the running
   stack (dynamic semantics imposition / active storage);
3. ``modify.mods``: live-upgrading the scheduler LabMod with StateUpdate,
   without stopping the application.

Run:  python examples/custom_stack.py
"""

from repro.core import NodeSpec, UpgradeRequest
from repro.mods.generic_fs import GenericFS
from repro.mods.sched_noop import NoOpSchedMod
from repro.system import LabStorSystem
from repro.units import msec

STACK_YAML = """
mount: fs::/lab
rules:
  exec_mode: async
  priority: 1
labmods:
  - mod: LabFs
    uuid: demo.labfs
    attrs:
      capacity_bytes: 1073741824
      device: nvme
    outputs: [demo.sched]
  - mod: NoOpSchedMod
    uuid: demo.sched
    attrs:
      nqueues: 8
    outputs: [demo.driver]
  - mod: KernelDriverMod
    uuid: demo.driver
    attrs:
      device: nvme
"""


class NoOpSchedModV2(NoOpSchedMod):
    """The 'upgraded' scheduler — same policy, new code version."""


def main() -> None:
    system = LabStorSystem(devices=("nvme",))
    # 1. mount from the human-readable schema file
    stack = system.runtime.mount_stack(STACK_YAML)
    print("mounted from YAML:", stack)

    client = system.client()
    gfs = GenericFS(client)

    def write_files(tag: str, n: int = 8):
        for i in range(n):
            fd = yield from gfs.open(f"fs::/lab/{tag}_{i}", create=True)
            yield from gfs.write(fd, (f"{tag} " * 2000).encode(), offset=0)
            yield from gfs.close(fd)

    system.run(system.process(write_files("before")))

    # 2. modify_stack: splice a Compression LabMod after LabFS, live
    stack.insert_after("demo.labfs", NodeSpec(mod_name="CompressionMod", uuid="demo.zip"))
    print("stack after insert :", " -> ".join(n.uuid for n in stack.spec.nodes))
    system.run(system.process(write_files("compressed")))
    comp = system.runtime.registry.get("demo.zip")
    print(f"compression ratio  : {comp.bytes_out}/{comp.bytes_in} bytes "
          f"({comp.bytes_out / comp.bytes_in:.2f})")

    # 3. live-upgrade the scheduler while traffic continues
    system.runtime.modify_mods(
        UpgradeRequest(mod_name="NoOpSchedMod", new_cls=NoOpSchedModV2)
    )

    def traffic_through_upgrade():
        for i in range(40):
            fd = yield from gfs.open(f"fs::/lab/during_{i}", create=True)
            yield from gfs.write(fd, b"upgrade traffic" * 100, offset=0)
            yield from gfs.close(fd)
            yield system.env.timeout(msec(0.5))

    system.run(system.process(traffic_through_upgrade()))
    sched = system.runtime.registry.get("demo.sched")
    print(f"scheduler upgraded : {type(sched).__name__} v{sched.version} "
          f"(processed {sched.processed} requests, state preserved)")

    # data written before, during, and after all survives
    def verify():
        data = yield from gfs.read_file("fs::/lab/before_0")
        return data == ("before " * 2000).encode()

    assert system.run(system.process(verify()))
    print("all data readable after insert + upgrade: OK")


if __name__ == "__main__":
    main()
