#!/usr/bin/env python
"""Interface convergence: the same storage, two interfaces.

Reproduces the spirit of the paper's LABIOS result (Fig 9b): an object
workload forced through the POSIX file abstraction (open/seek/write/close
per object, as distributed stores that translate objects to files must
do) versus a native LabKVS put — one request instead of four syscalls.

Run:  python examples/kvs_vs_posix.py
"""

from repro.devices import make_device
from repro.experiments.report import format_table
from repro.kernel import make_filesystem
from repro.mods.generic_kvs import GenericKVS
from repro.sim import Environment
from repro.system import LabStorSystem
from repro.workloads import KernelFsAdapter, run_labios_fs, run_labios_kvs

NLABELS = 150
LABEL = 8192  # 8KB objects, as in the paper


def main() -> None:
    rows = []

    # POSIX translation over kernel filesystems
    for fs_name in ("ext4", "xfs", "f2fs"):
        env = Environment()
        fs = make_filesystem(fs_name, env, make_device(env, "nvme"))
        r = run_labios_fs(env, KernelFsAdapter(fs), nlabels=NLABELS, label_size=LABEL)
        rows.append([fs_name + " (POSIX files)", f"{r.throughput_MBps:.1f}",
                     f"{r.labels_per_sec:.0f}"])

    # native key-value LabStacks
    for variant, label in (("all", "LabKVS-All"), ("min", "LabKVS-Min"), ("d", "LabKVS-D")):
        system = LabStorSystem(devices=("nvme",))
        system.stack("kvs::/objs").kvs(variant=variant).device("nvme").mount()
        kvs = GenericKVS(system.client(), "kvs::/objs")
        r = run_labios_kvs(system.env, kvs, nlabels=NLABELS, label_size=LABEL)
        rows.append([label, f"{r.throughput_MBps:.1f}", f"{r.labels_per_sec:.0f}"])

    print(format_table(["backend", "MB/s", "objects/s"], rows,
                       title=f"{NLABELS} x {LABEL // 1024}KB object writes on NVMe"))
    print("\nThe POSIX translation pays open/seek/write/close per object;")
    print("LabKVS does one put. Removing permissions (Min) and the")
    print("centralized authority (D) recovers even more (paper: +16%).")


if __name__ == "__main__":
    main()
