#!/usr/bin/env python
"""Quickstart: mount a LabStack and do file I/O through LabStor.

Builds the paper's canonical Lab-All stack (Permissions -> LabFS -> LRU
cache -> NoOp scheduler -> Kernel Driver) on a simulated NVMe device,
connects a client, and round-trips data — printing where the time went.

Run:  python examples/quickstart.py
"""

from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem
from repro.units import fmt_time


def main() -> None:
    # 1. A complete deployment: devices + Runtime + standard LabMod repo.
    system = LabStorSystem(devices=("nvme",))

    # 2. Compose + mount a LabStack with the fluent builder.
    #    'all' = Permissions, LabFS, LRU, NoOp, KernelDriver.
    stack = (
        system.stack("fs::/demo")
        .fs(variant="all")
        .device("nvme")
        .cache()
        .sched("NoOpSchedMod")
        .mount()
    )
    print(f"mounted: {stack}")

    # 3. Connect a client and load the GenericFS connector (the LD_PRELOAD
    #    shim in the real system).
    client = system.client()
    gfs = GenericFS(client)

    # 4. POSIX-looking I/O, executed by the Runtime's workers.
    payload = b"Modular I/O stacks in userspace! " * 256  # ~8KB

    def scenario():
        fd = yield from gfs.open("fs::/demo/hello.txt", create=True)
        t0 = system.env.now
        yield from gfs.write(fd, payload, offset=0)
        write_ns = system.env.now - t0
        t0 = system.env.now
        data = yield from gfs.read(fd, len(payload), offset=0)
        read_ns = system.env.now - t0
        yield from gfs.fsync(fd)
        yield from gfs.close(fd)
        return data, write_ns, read_ns

    data, write_ns, read_ns = system.run(system.process(scenario()))
    assert data == payload, "round-trip mismatch!"

    print(f"wrote+read {len(payload)} bytes through the full stack")
    print(f"  write latency : {fmt_time(write_ns)}")
    print(f"  read  latency : {fmt_time(read_ns)} (LRU cache hit)")
    print(f"runtime stats  : {system.runtime.stats()}")
    lru = system.runtime.registry.get(stack.mod_uuids()[2])
    print(f"cache          : {lru.hits} hits / {lru.misses} misses")


if __name__ == "__main__":
    main()
