#!/usr/bin/env python
"""Crash recovery: the Runtime dies mid-workload and comes back.

LabFS keeps no on-disk inodes — the in-memory inode hashmap is rebuilt
from the per-worker metadata log (StateRepair).  ``Runtime.crash()``
calls every LabMod's ``on_crash()`` hook, which drops exactly the state
that would die with the process (the example used to reach into LabFS
and wipe the hashmaps by hand).  Clients detect the dead Runtime in
Wait, park until the administrator restarts it, and continue; requests
already in the shared-memory queues survive.

Run:  python examples/crash_recovery.py
"""

from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem
from repro.units import msec


def main() -> None:
    system = LabStorSystem(devices=("nvme",))
    stack = system.stack("fs::/vault").fs(variant="min").uuid_prefix("cr").mount()
    client = system.client()
    gfs = GenericFS(client)
    labfs = system.runtime.registry.get("cr.labfs")

    def before_crash():
        for i in range(20):
            fd = yield from gfs.open(f"fs::/vault/doc{i}", create=True)
            yield from gfs.write(fd, f"document {i} ".encode() * 300, offset=0)
            yield from gfs.close(fd)

    system.run(system.process(before_crash()))
    print(f"wrote 20 files; LabFS log holds {labfs.log.record_count()} records")

    # --- the Runtime crashes ------------------------------------------------
    # crash() invokes LabFs.on_crash(): the volatile inode hashmap is gone
    # (only the implicit root survives, as after a real power cut + mkfs-less
    # remount); the durable metadata log and device blocks are untouched.
    system.runtime.crash()
    assert len(labfs.inodes) == 1, "on_crash should leave only the root inode"
    print("runtime CRASHED; LabFS inode hashmap wiped by on_crash() "
          f"({len(labfs.inodes)} inode left: the root)")

    survived = {}

    def app_during_crash():
        # this request is submitted while the Runtime is down; Wait parks
        data = yield from gfs.read_file("fs::/vault/doc7")
        survived["doc7"] = data

    def administrator():
        yield system.env.timeout(msec(15))
        print("administrator restarts the runtime...")
        yield system.env.process(system.runtime.restart())

    app = system.process(app_during_crash())
    system.env.process(administrator())
    system.run(app)

    print(f"after restart: {len(labfs.inodes)} inodes rebuilt from the log "
          f"(StateRepair ran {labfs.repairs}x)")
    assert survived["doc7"] == b"document 7 " * 300
    print("request submitted during the crash completed with correct data")
    print(f"runtime stats: {system.runtime.stats()}")


if __name__ == "__main__":
    main()
