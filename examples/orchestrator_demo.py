#!/usr/bin/env python
"""Watching the Work Orchestrator scale the worker pool.

Clients arrive in waves; the dynamic policy measures the pool's consumed
CPU every epoch and grows/shrinks the worker count, keeping utilization
near its set-point (Fig 5a's "dynamic" line).

Run:  python examples/orchestrator_demo.py
"""

from repro.core import LabRequest, RuntimeConfig, StackSpec
from repro.system import LabStorSystem
from repro.units import msec
from repro.workloads.fio import FioJob, LabStackEngine, run_fio


def main() -> None:
    system = LabStorSystem(
        devices=("nvme",),
        config=RuntimeConfig(nworkers=1, policy="dynamic", max_workers=8,
                             orchestrator_interval_ns=msec(1.0)),
    )
    spec = StackSpec.linear("blk::/w", [("NoOpSchedMod", "demo.noop"),
                                        ("KernelDriverMod", "demo.drv")])
    spec.nodes[0].attrs = {"nqueues": 8}
    spec.nodes[1].attrs = {"device": "nvme"}
    stack = system.runtime.mount_stack(spec)

    log = []

    def monitor():
        while True:
            yield system.env.timeout(msec(2.0))
            log.append((system.env.now, system.runtime.orchestrator.worker_count()))

    system.env.process(monitor())

    print("wave 1: 2 clients (light load)")
    engines = [LabStackEngine(system.client(), stack, system.devices["nvme"])
               for _ in range(2)]

    def wave(engines, ops):
        import numpy as np
        from repro.workloads.fio import FioResult, _job_proc

        result = FioResult()
        start = system.env.now
        procs = []
        for i, engine in enumerate(engines):
            job = FioJob(rw="randwrite", bs=4096, nops=ops, core=i)
            procs.append(system.process(
                _job_proc(system.env, engine, job, np.random.default_rng(i),
                          result, b"x" * 4096)))
        system.run(system.env.all_of(procs))
        result.elapsed_ns = system.env.now - start
        return result

    wave(engines, 400)
    print(f"  workers now: {system.runtime.orchestrator.worker_count()}")

    print("wave 2: 12 clients (heavy load)")
    engines += [LabStackEngine(system.client(), stack, system.devices["nvme"])
                for _ in range(10)]
    r = wave(engines, 400)
    print(f"  workers now: {system.runtime.orchestrator.worker_count()}")
    print(f"  aggregate: {r.iops / 1000:.0f} KIOPS")

    print("wave 3: back to 1 client (scale down)")
    wave(engines[:1], 800)
    print(f"  workers now: {system.runtime.orchestrator.worker_count()}")

    print("\nworker count over time:")
    for t, n in log[:: max(1, len(log) // 12)]:
        print(f"  t={t / 1e6:7.1f}ms  workers={'#' * n} ({n})")


if __name__ == "__main__":
    main()
