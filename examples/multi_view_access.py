#!/usr/bin/env python
"""Tunable access control: multiple views over the same content.

Section III-B: "one can generate multiple views of the same data by
deploying several LabStacks on top of the same device ... Permission
LabMods inside the stack can implement islands of data that are viewable
by different actors."

Here two LabStacks share the *same LabFS instance* (same LabMod UUID in
the Module Registry — instantiate-once semantics), but sit behind
different Permission LabMods:

- ``fs::/public``   — open access
- ``fs::/curated``  — only uid 42 may touch /secret/*

The same file is visible through both mounts; the ACL only bites on the
curated view, and can be retuned live.

Run:  python examples/multi_view_access.py
"""

from repro.core import LabRequest, NodeSpec, StackRules, StackSpec
from repro.errors import PermissionDenied
from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem


def view_spec(mount: str, perm_uuid: str | None) -> StackSpec:
    nodes = []
    if perm_uuid:
        nodes.append(NodeSpec("PermissionsMod", perm_uuid, outputs=["shared.labfs"]))
    nodes.append(NodeSpec("LabFs", "shared.labfs",
                          attrs={"capacity_bytes": 1 << 30, "device": "nvme"},
                          outputs=["shared.driver"]))
    nodes.append(NodeSpec("KernelDriverMod", "shared.driver", attrs={"device": "nvme"}))
    return StackSpec(mount=mount, nodes=nodes, rules=StackRules(exec_mode="async"))


def main() -> None:
    system = LabStorSystem(devices=("nvme",))
    public = system.runtime.mount_stack(view_spec("fs::/public", None))
    curated = system.runtime.mount_stack(view_spec("fs::/curated", "view.perm"))
    # both stacks resolved the SAME LabFS instance from the registry:
    assert public.mods["shared.labfs"] is curated.mods["shared.labfs"]
    print("two mounts, one filesystem instance:", public.mods["shared.labfs"])

    perm = system.runtime.registry.get("view.perm")
    perm.set_acl("/secret", {42})

    client = system.client()
    gfs = GenericFS(client)

    def scenario():
        # write through the public view
        yield from gfs.write_file("fs::/public/secret/report.txt", b"the findings")
        # ... and read the SAME file through the curated view as uid 42
        stack, rem = system.runtime.namespace.resolve("fs::/curated/secret/report.txt")
        ino = yield from client.call(
            stack, LabRequest(op="fs.open", payload={"path": rem, "uid": 42})
        )
        data = yield from client.call(
            stack, LabRequest(op="fs.read", payload={"ino": ino, "offset": 0, "size": 12,
                                                     "path": rem, "uid": 42})
        )
        print("uid 42 via curated view reads:", data)

        # an unauthorized uid is denied on the curated view...
        denied = False
        try:
            yield from client.call(
                stack, LabRequest(op="fs.open", payload={"path": rem, "uid": 7})
            )
        except PermissionDenied as e:
            denied = True
            print("uid 7 via curated view:", e)
        assert denied

        # ...but the public view of the very same bytes stays open
        open_data = yield from gfs.read_file("fs::/public/secret/report.txt")
        print("uid 7 via public view reads:", open_data)

        # the operator retunes the island live
        perm.set_acl("/secret", {42, 7})
        ino2 = yield from client.call(
            stack, LabRequest(op="fs.open", payload={"path": rem, "uid": 7})
        )
        print("after live ACL change, uid 7 opens ino", ino2, "on the curated view")

    system.run(system.process(scenario()))
    print("permissions checks performed:", perm.processed, "| denied:", perm.denied)


if __name__ == "__main__":
    main()
