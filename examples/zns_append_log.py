#!/usr/bin/env python
"""An append-only log on a zoned-namespace SSD through LabStor.

The paper's Driver LabMods expose storage APIs beyond block — "e.g.,
zoned namespace and queues".  This example mounts a stack whose bottom is
the ZNS Driver LabMod and builds a tiny durable log on top of it: records
are zone-appended (the device assigns offsets), zones are recycled with
reset once consumed — exactly the contract a log-structured filesystem
like LabFS would exploit on real ZNS hardware.

Run:  python examples/zns_append_log.py
"""

from repro.core import LabRequest, StackSpec
from repro.devices import ZoneState
from repro.system import LabStorSystem
from repro.units import fmt_time


def main() -> None:
    system = LabStorSystem(devices=("zns",))
    spec = StackSpec.linear("blk::/log", [("ZnsDriverMod", "log.drv")])
    spec.nodes[0].attrs = {"device": "zns"}
    stack = system.runtime.mount_stack(spec)
    client = system.client()
    dev = system.devices["zns"]
    print(f"ZNS namespace: {len(dev.zones)} zones x {dev.zone_size // (1 << 20)}MiB")

    index = []  # (offset, size) of each record — the log's in-memory index

    def append(record: bytes):
        offset = yield from client.call(
            stack, LabRequest(op="blk.append", payload={"zone": 0, "data": record})
        )
        index.append((offset, len(record)))
        return offset

    def scenario():
        t0 = system.env.now
        for i in range(16):
            rec = f"record-{i:03d}|".encode() * 341  # ~4KB
            yield from append(rec)
        append_time = (system.env.now - t0) / 16
        print(f"appended 16 records, {fmt_time(round(append_time))} each "
              f"(device assigned offsets 0..{index[-1][0]})")

        # read one back by index
        off, size = index[7]
        data = yield from client.call(
            stack, LabRequest(op="blk.read", payload={"offset": off, "size": size})
        )
        assert data.startswith(b"record-007|")
        print("random read of record 7: OK")

        # recycle: reset the zone once its records are dead
        yield from client.call(stack, LabRequest(op="blk.reset_zone", payload={"zone": 0}))
        print(f"zone 0 reset -> state {dev.zones[0].state.value}, "
              f"write pointer back to {dev.zones[0].wp}")
        assert dev.zones[0].state is ZoneState.EMPTY

    system.run(system.process(scenario()))
    print(f"device counters: {dev.appends} appends, {dev.resets} resets")


if __name__ == "__main__":
    main()
