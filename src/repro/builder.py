"""Fluent stack-spec builder: the front door for composing LabStacks.

Replaces the keyword-soup ``fs_stack_spec``/``kvs_stack_spec`` facade
methods with a chainable builder::

    stack = (
        system.stack("/labfs")
        .fs(variant="all")
        .device("nvme")
        .cache()
        .sched("NoOpSchedMod")
        .mount()
    )

``build()`` returns the :class:`~repro.core.labstack.StackSpec` (for
callers that inspect or tweak specs before mounting); ``mount()`` builds
and mounts in one step.  The builder produces *byte-identical* specs to
the deprecated facade methods — the old methods now delegate here, and a
regression test pins ``repr(old) == repr(new)``.

Validation is eager where possible (unknown variant fails at ``.fs()``)
and otherwise collected at ``build()`` (unknown device names list the
devices the system actually has).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from .core.labstack import LabStack, NodeSpec, StackRules, StackSpec
from .errors import LabStorError

if TYPE_CHECKING:  # pragma: no cover
    from .system import LabStorSystem

__all__ = ["StackBuilder", "VARIANTS"]

VARIANTS = ("all", "min", "d")

#: shared uuid sequence for auto-prefixed stacks ("s1", "s2", ...); one
#: counter for builder and legacy wrappers so ids never collide
_uuid_seq = itertools.count(1)


class StackBuilder:
    """One in-progress LabStack configuration (create via
    :meth:`LabStorSystem.stack`)."""

    def __init__(self, system: "LabStorSystem", mount: str) -> None:
        self._system = system
        self._mount = mount
        self._kind: Optional[str] = None      # "fs" | "kvs"
        self._variant = "all"
        self._device = "nvme"
        self._driver = "KernelDriverMod"
        self._cache: Optional[bool] = None    # None -> kind default
        self._sched: Optional[str] = "NoOpSchedMod"
        self._sched_attrs: dict = {}
        self._uuid_prefix: Optional[str] = None
        self._capacity_bytes: Optional[int] = None
        self._nworkers = 8
        self._faults = None                   # FaultPlan | str | None

    # -- stack kind -------------------------------------------------------
    def fs(self, *, variant: str = "all", capacity_bytes: int | None = None,
           nworkers: int = 8) -> "StackBuilder":
        """A LabFS stack (the paper's Lab-All / Lab-Min / Lab-D)."""
        self._check_variant(variant)
        self._kind = "fs"
        self._variant = variant
        self._capacity_bytes = capacity_bytes
        self._nworkers = nworkers
        return self

    def kvs(self, *, variant: str = "all", capacity_bytes: int | None = None,
            nworkers: int = 8) -> "StackBuilder":
        """A LabKVS stack ([Permissions,] LabKVS, sched, driver)."""
        self._check_variant(variant)
        self._kind = "kvs"
        self._variant = variant
        self._capacity_bytes = capacity_bytes
        self._nworkers = nworkers
        return self

    @staticmethod
    def _check_variant(variant: str) -> None:
        if variant not in VARIANTS:
            raise LabStorError(f"variant must be one of {VARIANTS}")

    # -- component knobs --------------------------------------------------
    def device(self, name: str) -> "StackBuilder":
        self._device = name
        return self

    def driver(self, mod_name: str) -> "StackBuilder":
        self._driver = mod_name
        return self

    def cache(self, enabled: bool = True) -> "StackBuilder":
        """Include (or drop, with ``enabled=False``) the LRU cache LabMod.
        Only LabFS stacks carry a cache."""
        self._cache = enabled
        return self

    def sched(self, mod_name: str | None, **attrs) -> "StackBuilder":
        """Set the scheduler LabMod; ``None`` (or ``""``) omits it.

        Keyword arguments become the scheduler node's attrs, overlaid on
        the defaults the builder derives from the device — e.g.
        ``.sched("BatchSchedMod", window_ns=10_000, batch_max=16)``.
        """
        self._sched = mod_name or None
        self._sched_attrs = dict(attrs)
        return self

    def uuid_prefix(self, prefix: str) -> "StackBuilder":
        self._uuid_prefix = prefix
        return self

    def faults(self, plan) -> "StackBuilder":
        """Arm a :class:`repro.faults.FaultPlan` (or its text form) when
        the stack mounts.  Installation is deferred to :meth:`mount` so
        plans scoped by ``module=`` can resolve the stack's LabMod uuids."""
        self._faults = plan
        return self

    # -- terminal operations ----------------------------------------------
    def build(self) -> StackSpec:
        """Validate the configuration and produce the StackSpec."""
        if self._kind is None:
            raise LabStorError(
                f"stack({self._mount!r}): call .fs() or .kvs() before build()"
            )
        if self._kind == "kvs" and self._cache:
            raise LabStorError(
                f"stack({self._mount!r}): LabKVS stacks have no cache LabMod; "
                "drop the .cache() call"
            )
        try:
            dev = self._system.devices[self._device]
        except KeyError:
            raise LabStorError(
                f"stack({self._mount!r}): unknown device {self._device!r}; "
                f"system has {sorted(self._system.devices)}"
            ) from None
        u = self._uuid_prefix or f"s{next(_uuid_seq)}"
        cap = self._capacity_bytes or dev.profile.capacity_bytes
        use_cache = self._cache if self._cache is not None else (self._kind == "fs")

        nodes: list[NodeSpec] = []
        if self._variant == "all":
            nodes.append(NodeSpec(mod_name="PermissionsMod", uuid=f"{u}.perm", attrs={}))
        if self._kind == "fs":
            nodes.append(NodeSpec(
                mod_name="LabFs", uuid=f"{u}.labfs",
                attrs={"capacity_bytes": cap, "nworkers": self._nworkers,
                       "device": self._device},
            ))
            if use_cache:
                nodes.append(NodeSpec(mod_name="LruCacheMod", uuid=f"{u}.lru", attrs={}))
        else:
            nodes.append(NodeSpec(
                mod_name="LabKvs", uuid=f"{u}.labkvs",
                attrs={"capacity_bytes": cap, "nworkers": self._nworkers},
            ))
        if self._sched:
            sched_attrs: dict = {"nqueues": dev.nqueues}
            if self._sched == "BlkSwitchSchedMod":
                sched_attrs = {"device": self._device}
            sched_attrs.update(self._sched_attrs)
            nodes.append(NodeSpec(mod_name=self._sched, uuid=f"{u}.sched", attrs=sched_attrs))
        nodes.append(NodeSpec(
            mod_name=self._driver, uuid=f"{u}.driver", attrs={"device": self._device}
        ))
        for i in range(len(nodes) - 1):
            nodes[i].outputs = [nodes[i + 1].uuid]
        exec_mode = "sync" if self._variant == "d" else "async"
        return StackSpec(mount=self._mount, nodes=nodes, rules=StackRules(exec_mode=exec_mode))

    def mount(self) -> LabStack:
        """Build the spec and mount it into the system's Runtime."""
        stack = self._system.runtime.mount_stack(self.build())
        if self._faults is not None:
            self._system.install_faults(self._faults)
        return stack
