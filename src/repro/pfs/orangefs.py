"""A striped parallel filesystem in the OrangeFS mold (paper Fig 9(a)).

One metadata server (MDS) tracks stripe placement; N data servers store
64KB stripes round-robin.  Every server runs a *local* I/O stack behind
the uniform FsApi adapter — that local stack is exactly what the paper
customizes: the MDS runs on NVMe with ext4 / LabFS-All / LabFS-Min, the
data servers run on HDD / SSD / NVMe.

The network is modelled as a per-message latency plus a bandwidth term
(defaults approximating the 10GbE Chameleon fabric).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import Environment
from ..units import KiB, sec, usec

__all__ = ["OrangeFs", "PfsResult"]


@dataclass
class PfsResult:
    bytes_moved: int
    metadata_ops: int
    elapsed_ns: int

    @property
    def bandwidth_MBps(self) -> float:
        return self.bytes_moved / 1e6 / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0


class OrangeFs:
    def __init__(
        self,
        env: Environment,
        mds_api,
        data_apis: list,
        *,
        stripe_size: int = 64 * KiB,
        net_lat_ns: int = usec(30.0),
        net_bw: float = 1.2e9,  # ~10GbE payload rate, bytes/sec
        layout_batch: int = 4,  # stripes covered by one MDS layout record
        transport=None,
    ) -> None:
        self.env = env
        self.mds = mds_api
        self.data = list(data_apis)
        if not self.data:
            raise ValueError("need at least one data server")
        self.stripe_size = stripe_size
        self.net_lat_ns = net_lat_ns
        self.net_bw = net_bw
        #: pluggable network: an object with ``transfer(peer, nbytes)``
        #: (a process generator), e.g. repro.cluster's FabricTransport.
        #: None keeps the built-in latency+bandwidth model, byte-identical
        #: to the pre-seam behavior.  Peers: "mds" or a data-server index.
        self.transport = transport
        self.layout_batch = max(1, layout_batch)
        self.metadata_ops = 0
        self.bytes_moved = 0
        self._stripe_maps: dict[str, int] = {}  # path -> stripe count

    # -- network model ------------------------------------------------------
    def _net(self, nbytes: int, peer="mds"):
        if self.transport is not None:
            yield from self.transport.transfer(peer, nbytes)
            return
        yield self.env.timeout(self.net_lat_ns + round(nbytes / self.net_bw * 1e9))

    # -- metadata path ------------------------------------------------------
    def _mds_record_stripe(self, path: str, stripe_no: int):
        """Record where a stripe lives.  One layout object on the MDS
        covers ``layout_batch`` stripes (clients cache the layout), so only
        every batch-leading stripe pays a full metadata create."""
        self.metadata_ops += 1
        yield from self._net(256)
        if stripe_no % self.layout_batch == 0:
            fd = yield from self.mds.open(f"/meta{path}.s{stripe_no}", create=True)
            yield from self.mds.close(fd)

    def _mds_lookup_stripe(self, path: str, stripe_no: int):
        self.metadata_ops += 1
        yield from self._net(256)
        if stripe_no % self.layout_batch == 0:
            st = yield from self.mds.stat(f"/meta{path}.s{stripe_no}")
            return st
        return None

    # -- client operations ----------------------------------------------------
    def write_file(self, path: str, data: bytes):
        """Stripe ``data`` across the data servers."""
        nstripes = max(1, -(-len(data) // self.stripe_size))
        self._stripe_maps[path] = nstripes
        for s in range(nstripes):
            yield from self._mds_record_stripe(path, s)
            chunk = data[s * self.stripe_size : (s + 1) * self.stripe_size]
            server = self.data[s % len(self.data)]
            yield from self._net(len(chunk), peer=s % len(self.data))
            fd = yield from server.open(f"/data{path}.s{s}", create=True)
            yield from server.write(fd, chunk, offset=0)
            # the data server acknowledges durable stripes (PFS semantics)
            yield from server.fsync(fd)
            yield from server.close(fd)
            self.bytes_moved += len(chunk)
        return nstripes

    def drop_data_caches(self) -> None:
        """Invalidate the data servers' page caches (BD-CATS runs cold)."""
        for server in self.data:
            cache = getattr(getattr(server, "fs", None), "cache", None)
            if cache is not None:
                cache._pages.clear()

    def read_file(self, path: str):
        nstripes = self._stripe_maps.get(path)
        if nstripes is None:
            raise KeyError(f"PFS: unknown file {path}")
        out = bytearray()
        for s in range(nstripes):
            yield from self._mds_lookup_stripe(path, s)
            server = self.data[s % len(self.data)]
            fd = yield from server.open(f"/data{path}.s{s}")
            st = yield from server.stat(f"/data{path}.s{s}")
            chunk = yield from server.read(fd, st["size"], offset=0)
            yield from server.close(fd)
            yield from self._net(len(chunk), peer=s % len(self.data))
            out.extend(chunk)
            self.bytes_moved += len(chunk)
        return bytes(out)
