"""Distributed layer: a striped parallel filesystem model."""

from .orangefs import OrangeFs, PfsResult

__all__ = ["OrangeFs", "PfsResult"]
