"""Dummy LabMods for the live-upgrade evaluation (paper Table I).

``DummyMod`` echoes messages after a configurable processing delay and
keeps a message counter as its state; ``DummyModV2`` is "the upgrade" —
same behaviour, one version higher, plus a marker proving StateUpdate ran.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext

__all__ = ["DummyMod", "DummyModV2"]


class DummyMod(LabMod):
    mod_type = "dummy"
    accepts = ("msg.",)
    emits = ()

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.delay_ns = int(ctx.attrs.get("delay_ns", 500))
        self.messages = 0
        # "a few bytes of pointers" — the state the upgrade must transfer
        self.state_blob = {"cursor": 0}

    def handle(self, req, x: ExecContext):
        yield from x.work(self.delay_ns, span="dummy")
        self.messages += 1
        self.state_blob["cursor"] = self.messages
        self.processed += 1
        return {"echo": req.payload.get("value"), "version": self.version}

    def est_processing_time(self, req) -> int:
        return self.delay_ns

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, DummyMod):
            self.messages = old.messages
            self.state_blob = dict(old.state_blob)
            self.delay_ns = old.delay_ns


class DummyModV2(DummyMod):
    """The 'new code' an upgrade request installs."""

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.upgraded = True
