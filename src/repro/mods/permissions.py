"""Permissions LabMod: tunable access control as a pluggable stack stage.

Checks the request's uid against per-prefix ACLs.  Because it is just a
LabMod, end-users who do not need access control simply omit it from
their LabStack (the "Lab-Min" configurations), recovering the ~3%-per-op
cost the paper measures — or mount several stacks over the same data
with different Permission LabMods for tunable, per-view access control.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..errors import PermissionDenied

__all__ = ["PermissionsMod"]


class PermissionsMod(LabMod):
    mod_type = "permissions"
    accepts = ("*",)
    emits = ("fs.", "kvs.", "blk.", "msg.")

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        #: path/key prefix -> set of uids allowed ("*" = everyone)
        self.acls: dict[str, set] = {p: set(u) for p, u in ctx.attrs.get("acls", {}).items()}
        self.default_allow = bool(ctx.attrs.get("default_allow", True))
        self.denied = 0

    def set_acl(self, prefix: str, uids) -> None:
        self.acls[prefix] = set(uids)

    def _allowed(self, subject: str, uid) -> bool:
        best = None
        for prefix in self.acls:
            if subject.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is None:
            return self.default_allow
        allowed = self.acls[best]
        return "*" in allowed or uid in allowed

    def handle(self, req, x: ExecContext):
        yield from x.work(self.ctx.cost.perm_check_ns, span="permissions")
        subject = req.payload.get("path") or req.payload.get("key") or ""
        uid = req.payload.get("uid", req.client_pid)
        self.processed += 1
        if not self._allowed(subject, uid):
            self.denied += 1
            raise PermissionDenied(f"uid {uid} denied on {subject!r}")
        return (yield from self.forward(req, x))

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.perm_check_ns

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, PermissionsMod):
            self.acls = dict(old.acls)
            self.default_allow = old.default_allow
            self.denied = old.denied
