"""LRU page-cache LabMod (userspace).

Two write policies (``write_policy`` attr):

- ``"through"`` (default): writes copy into the cache (the Fig 4 "page
  cache" slice — copy + bookkeeping) and continue downstream
  synchronously — durable, what LabFS's crash-consistency story assumes.
- ``"back"``: writes are absorbed into dirty cache pages and acknowledged
  immediately; dirty pages drain downstream on eviction and on
  ``blk.flush`` — the kernel-page-cache behaviour, trading durability
  for write latency (the active-storage "asynchronously and in batches"
  pattern of Section III-B).

Reads are served from the cache on a hit, forwarded and inserted on a
miss.  State — the whole cache — survives live upgrades via StateUpdate.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.labmod import ExecContext, LabMod, ModContext
from ..core.requests import LabRequest
from ..errors import LabStorError

__all__ = ["LruCacheMod"]

PAGE = 4096


class LruCacheMod(LabMod):
    mod_type = "cache"
    accepts = ("blk.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.capacity_pages = int(ctx.attrs.get("capacity_pages", 16_384))
        self.write_policy = ctx.attrs.get("write_policy", "through")
        if self.write_policy not in ("through", "back"):
            raise LabStorError(f"{uuid}: write_policy must be 'through' or 'back'")
        self.pages: OrderedDict[int, bytes] = OrderedDict()
        self.dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- cache mechanics ----------------------------------------------------
    def _insert(self, page_no: int, data: bytes, dirty: bool = False):
        """Generator: insert a page, draining dirty evictions downstream."""
        self.pages[page_no] = data
        self.pages.move_to_end(page_no)
        if dirty:
            self.dirty.add(page_no)
        while len(self.pages) > self.capacity_pages:
            victim, vdata = self.pages.popitem(last=False)
            if victim in self.dirty:
                self.dirty.discard(victim)
                yield victim, vdata

    @staticmethod
    def _coalesce(evicted: list[tuple[int, bytes]]) -> list[tuple[int, bytes]]:
        """Group (page_no, data) pairs into contiguous (offset, data) extents."""
        items = sorted(evicted)
        out = []
        i = 0
        while i < len(items):
            j = i
            while j + 1 < len(items) and items[j + 1][0] == items[j][0] + 1:
                j += 1
            out.append((items[i][0] * PAGE, b"".join(d for _, d in items[i : j + 1])))
            i = j + 1
        return out

    def _writeback(self, req: LabRequest, x: ExecContext, evicted: list[tuple[int, bytes]]):
        """Generator: push evicted dirty pages downstream as extents."""
        for offset, data in self._coalesce(evicted):
            self.writebacks += 1
            sub = LabRequest(
                op="blk.write",
                payload={"offset": offset, "size": len(data), "data": data,
                         "origin_core": req.payload.get("origin_core", 0)},
                stack_id=req.stack_id,
                client_pid=req.client_pid,
            )
            yield from self.forward(sub, x)

    def _lookup(self, first_page: int, npages: int) -> bytes | None:
        chunks = []
        for p in range(first_page, first_page + npages):
            data = self.pages.get(p)
            if data is None:
                return None
            chunks.append(data)
        for p in range(first_page, first_page + npages):
            self.pages.move_to_end(p)
        return b"".join(chunks)

    # -- operation -----------------------------------------------------------
    def handle(self, req, x: ExecContext):
        cost = self.ctx.cost
        p = req.payload
        offset = p.get("offset", 0)
        size = p.get("size", len(p.get("data", b"")))
        self.processed += 1

        if req.op == "blk.write":
            yield from x.work(cost.cache_mgmt_ns + cost.copy_ns(size), span="cache")
            data = p["data"]
            aligned = offset % PAGE == 0 and len(data) % PAGE == 0
            if not aligned:
                # safety: drop any cached pages the unaligned write touches
                first = offset // PAGE
                for pno in range(first, (offset + len(data) + PAGE - 1) // PAGE):
                    self.pages.pop(pno, None)
                    self.dirty.discard(pno)
                return (yield from self.forward(req, x))
            evicted: list[tuple[int, bytes]] = []
            absorb = self.write_policy == "back"
            for i in range(0, len(data), PAGE):
                evicted += list(
                    self._insert((offset + i) // PAGE, bytes(data[i : i + PAGE]), dirty=absorb)
                )
            if evicted:
                yield from self._writeback(req, x, evicted)
            if absorb:
                return len(data)  # acknowledged from the cache
            return (yield from self.forward(req, x))

        if req.op == "blk.flush" and self.dirty:
            # durability point: drain every dirty page before the flush
            pending = [(pno, self.pages[pno]) for pno in sorted(self.dirty)
                       if pno in self.pages]
            self.dirty.clear()
            yield from self._writeback(req, x, pending)
            return (yield from self.forward(req, x))

        if req.op == "blk.read":
            yield from x.work(cost.cache_mgmt_ns, span="cache")
            if offset % PAGE == 0 and size % PAGE == 0:
                cached = self._lookup(offset // PAGE, size // PAGE)
                if cached is not None:
                    self.hits += 1
                    yield from x.work(cost.copy_ns(size), span="cache")
                    return cached
            self.misses += 1
            result = yield from self.forward(req, x)
            if result is not None and offset % PAGE == 0:
                buf = bytearray(result)
                evicted: list[tuple[int, bytes]] = []
                for i in range(0, len(buf), PAGE):
                    pno = (offset + i) // PAGE
                    if len(buf) - i < PAGE:
                        break
                    cached = self.pages.get(pno)
                    if pno in self.dirty and cached is not None:
                        # dirty page not yet written back: cache wins
                        buf[i : i + PAGE] = cached
                    else:
                        evicted += list(self._insert(pno, bytes(buf[i : i + PAGE])))
                if evicted:
                    yield from self._writeback(req, x, evicted)
                result = bytes(buf)
            yield from x.work(cost.copy_ns(size), span="cache")
            return result

        if req.op == "blk.trim":
            first = offset // PAGE
            for pno in range(first, first + (size + PAGE - 1) // PAGE):
                self.pages.pop(pno, None)
                self.dirty.discard(pno)
        return (yield from self.forward(req, x))

    def est_processing_time(self, req) -> int:
        size = req.payload.get("size", len(req.payload.get("data", b"")))
        return self.ctx.cost.cache_mgmt_ns + self.ctx.cost.copy_ns(size)

    # -- upgrade / repair -----------------------------------------------------
    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, LruCacheMod):
            self.pages = old.pages
            self.dirty = old.dirty
            self.write_policy = old.write_policy
            self.hits = old.hits
            self.misses = old.misses
            self.writebacks = old.writebacks

    def on_crash(self) -> None:
        # cached pages live in the Runtime's memory and die with it; in
        # write-back mode that loses un-flushed dirty pages — exactly the
        # durability trade the policy advertises.
        self.pages.clear()
        self.dirty.clear()

    def state_repair(self) -> None:
        # nothing durable to rebuild from; start cold (on_crash dropped
        # the pages when the Runtime died)
        self.pages.clear()
        self.dirty.clear()
