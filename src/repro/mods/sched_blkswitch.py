"""blk-switch I/O scheduler LabMod.

The userspace port of blk-switch [20] the paper integrates in Fig 8:
requests are classified into latency (small) and throughput (large)
classes; the latency class gets dedicated hardware queues the
throughput class never touches, with least-loaded steering inside each
lane.  This prevents latency-sensitive requests from queueing behind a
throughput app's large writes (head-of-line blocking).
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..errors import LabStorError

__all__ = ["BlkSwitchSchedMod"]


class BlkSwitchSchedMod(LabMod):
    mod_type = "sched"
    accepts = ("blk.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        dev_name = ctx.attrs.get("device")
        if dev_name is None:
            if len(ctx.devices) == 1:
                dev_name = next(iter(ctx.devices))
            else:
                raise LabStorError(f"{uuid}: 'device' attr required to observe queue load")
        self.device = ctx.devices[dev_name]
        # bytes outstanding per hctx, maintained by this scheduler instance
        self.inflight_bytes = [0] * self.device.nqueues

    #: requests at or above this size ride the throughput lane
    large_threshold = 32 * 1024

    def handle(self, req, x: ExecContext):
        yield from x.work(self.ctx.cost.blkswitch_sched_ns, span="sched")
        size = req.payload.get("size", len(req.payload.get("data", b"")))
        nq = self.device.nqueues
        k = max(1, nq // 4)  # queues dedicated to the latency lane
        lane = range(k, nq) if (size >= self.large_threshold and nq > 1) else range(0, k)
        if nq == 1:
            lane = range(0, 1)
        hctx = min(
            lane,
            key=lambda q: (self.inflight_bytes[q] + self.device.queue_depth(q), q),
        )
        req.payload["hctx"] = hctx
        self.inflight_bytes[hctx] += size
        self.processed += 1
        try:
            return (yield from self.forward(req, x))
        finally:
            self.inflight_bytes[hctx] -= size

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.blkswitch_sched_ns

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, BlkSwitchSchedMod) and len(old.inflight_bytes) == len(self.inflight_bytes):
            self.inflight_bytes = list(old.inflight_bytes)
