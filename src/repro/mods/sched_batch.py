"""Batching I/O scheduler LabMod: elevator-style front/back merging.

Models blk-mq plugging inside a LabStor stack: a read/write that opens a
new extent lingers for a short window (``window_ns``, re-armed while the
group keeps growing) so contiguous same-direction requests arriving
behind it can merge.  The merged run goes downstream as **one** request
whose payload carries the constituent extents in ``parts``; the kernel
driver submits the parts back-to-back (where the device's coalescing
window fuses them into a single command) and returns per-part outcomes,
which this LabMod distributes back to the parked constituents.

Crucially, merging never weakens per-op semantics:

- every constituent gets its own result/error — a fault injected into one
  part of a merged run fails only that op;
- every constituent's telemetry span receives the device window of the
  merged command (overlap-merged, so nothing double-counts);
- the sanitizer's ``san.batch`` record audits that a group of N delivers
  exactly N outcomes, each exactly once.

Open merge groups are volatile state: a Runtime crash drops them (the
in-flight requests complete with WorkerCrashed like any other).
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..core.requests import LabRequest

__all__ = ["BatchSchedMod"]


class _MergeGroup:
    """An open run of contiguous same-direction requests being merged."""

    __slots__ = ("op", "hctx", "start", "end", "members", "done",
                 "outcomes", "taken", "open", "delivered", "double")

    def __init__(self, env, op: str, hctx: int, req, offset: int, size: int) -> None:
        self.op = op
        self.hctx = hctx
        self.start = offset
        self.end = offset + size
        self.members: list[tuple] = [(req, offset, size)]
        self.done = env.event()
        self.outcomes: list | None = None  # per-member (value, error, window)
        self.taken: list[bool] | None = None
        self.open = True
        self.delivered = 0
        self.double = 0

    def adjoins(self, op: str, hctx: int, offset: int, size: int) -> bool:
        if not self.open or op != self.op or hctx != self.hctx:
            return False
        return offset == self.end or offset + size == self.start

    def join(self, req, offset: int, size: int) -> int:
        """Add a member (caller checked adjacency); returns its index."""
        self.members.append((req, offset, size))
        self.start = min(self.start, offset)
        self.end = max(self.end, offset + size)
        return len(self.members) - 1

    def settle(self, outcomes: list) -> None:
        """Record per-member outcomes and wake the parked members."""
        self.outcomes = outcomes
        self.taken = [False] * len(outcomes)
        if not self.done.triggered:
            self.done.succeed()

    def take(self, idx: int) -> tuple:
        if self.taken[idx]:
            self.double += 1  # double-delivery: the sanitizer flags this
        else:
            self.taken[idx] = True
            self.delivered += 1
        return self.outcomes[idx]


class BatchSchedMod(LabMod):
    """Front/back-merging scheduler (attrs: nqueues, window_ns, batch_max)."""

    mod_type = "sched"
    accepts = ("blk.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.nqueues = int(ctx.attrs.get("nqueues", 8))
        #: linger per growth round; re-armed while the group keeps growing
        self.window_ns = int(ctx.attrs.get("window_ns", 10_000))
        self.batch_max = int(ctx.attrs.get("batch_max", 16))
        self._groups: list[_MergeGroup] = []
        self.merged_groups = 0  # runs of >= 2 forwarded as one request
        self.merged_ops = 0     # constituents inside those runs

    def handle(self, req, x: ExecContext):
        yield from x.work(self.ctx.cost.noop_sched_ns, span="sched")
        origin = req.payload.get("origin_core")
        if origin is None:
            origin = req.client_pid or 0
        hctx = origin % self.nqueues
        req.payload["hctx"] = hctx
        self.processed += 1
        data = req.payload.get("data")
        mergeable = (
            self.batch_max > 1 and self.window_ns > 0
            and (req.op == "blk.read" or (req.op == "blk.write" and data is not None))
        )
        if not mergeable:
            return (yield from self.forward(req, x))
        offset = req.payload["offset"]
        size = req.payload.get("size", len(data or b""))
        for g in self._groups:
            if len(g.members) < self.batch_max and g.adjoins(req.op, hctx, offset, size):
                idx = g.join(req, offset, size)
                return (yield from self._await_member(g, idx, x))
        g = _MergeGroup(self.ctx.env, req.op, hctx, req, offset, size)
        self._groups.append(g)
        return (yield from self._lead(g, req, x))

    # ------------------------------------------------------------------
    def _await_member(self, g: _MergeGroup, idx: int, x: ExecContext):
        """A joiner parks until the group's merged command settles."""
        yield from x.wait(g.done, span="batch")
        return self._deliver(g, idx, x)

    def _lead(self, g: _MergeGroup, req, x: ExecContext):
        env = self.ctx.env
        try:
            # plug window: linger while the group keeps growing so trailing
            # batch-mates (staggered by their upstream CPU) can still merge
            seen = len(g.members)
            while True:
                yield from x.wait(env.timeout(self.window_ns), span="batch")
                if len(g.members) == seen or len(g.members) >= self.batch_max:
                    break
                seen = len(g.members)
        finally:
            g.open = False
            if g in self._groups:
                self._groups.remove(g)
        if len(g.members) == 1:
            try:
                result = yield from self.forward(req, x)
            except BaseException as exc:
                g.settle([(None, exc, None)])
                raise
            g.settle([(result, None, None)])
            return self._deliver(g, 0, x)
        self.merged_groups += 1
        self.merged_ops += len(g.members)
        # offset order: the merged extent tiles exactly (front/back joins
        # only ever extend the run by the joiner's full size)
        order = sorted(range(len(g.members)), key=lambda i: g.members[i][1])
        parts = [(g.members[i][1], g.members[i][2]) for i in order]
        payload = {"offset": g.start, "size": g.end - g.start,
                   "hctx": g.hctx, "parts": parts}
        if req.op == "blk.write":
            payload["data"] = b"".join(g.members[i][0].payload["data"] for i in order)
        mreq = LabRequest(op=req.op, payload=payload, stack_id=req.stack_id,
                          client_pid=req.client_pid)
        try:
            returned = yield from self.forward(mreq, x)
        except BaseException as exc:
            # whole-command failure below the merge: every constituent
            # observes it (nothing reached the per-part stage)
            g.settle([(None, exc, None)] * len(g.members))
            raise
        by_part = self._per_part_outcomes(returned, parts, mreq.op)
        by_member: list = [None] * len(g.members)
        for part_idx, member_idx in enumerate(order):
            by_member[member_idx] = by_part[part_idx]
        g.settle(by_member)
        return self._deliver(g, 0, x)

    @staticmethod
    def _per_part_outcomes(returned, parts: list, op: str) -> list:
        """Normalize the downstream return into per-part (value, error, window).

        The kernel driver's parts path returns per-part tuples; a driver
        that serviced the merged command as one unit (SPDK, blk path)
        returns a single result, which is sliced back per part.
        """
        if (isinstance(returned, list) and len(returned) == len(parts)
                and all(isinstance(o, tuple) and len(o) == 4 for o in returned)):
            return [
                (value, error, (t0, t1) if error is None else None)
                for value, error, t0, t1 in returned
            ]
        if op == "blk.read" and isinstance(returned, (bytes, bytearray)):
            base = parts[0][0]
            return [(bytes(returned[off - base:off - base + size]), None, None)
                    for off, size in parts]
        return [(returned, None, None)] * len(parts)

    def _deliver(self, g: _MergeGroup, idx: int, x: ExecContext):
        value, error, window = g.take(idx)
        if window is not None and x.sc is not None:
            # bill the merged command's device window into this
            # constituent's span (overlap-merged: no double count)
            x.sc.add_device_window(*window)
        t = self.ctx.env.tracer
        if t.audit and g.delivered == len(g.members):
            t.emit(self.ctx.env.now, "san.batch", source=type(self).__name__,
                   ops=len(g.members), delivered=g.delivered, double=g.double)
        if error is not None:
            raise error
        return value

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Open merge groups are volatile: drop them on a Runtime crash."""
        self._groups.clear()

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        self.merged_groups = getattr(old, "merged_groups", 0)
        self.merged_ops = getattr(old, "merged_ops", 0)

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.noop_sched_ns + self.ctx.cost.batch_op_ns
