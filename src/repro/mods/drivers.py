"""Driver LabMods: the storage hardware APIs at the bottom of every stack.

Three drivers matching Section III-F:

- :class:`KernelDriverMod` — exposes the kernel's multi-queue driver
  hardware queues directly (``submit_io_to_hctx``), bypassing the block
  layer's alloc/sched/dispatch bookkeeping; or rides the standard block
  layer (``submit_io_to_blk``) to inherit kernel policies.  Completion is
  reaped with ``poll_completions`` (no IRQ, no context switch).
- :class:`SpdkDriverMod` — userspace NVMe: builds the NVMe command
  directly in the mapped BAR, cheaper than the kernel driver's structure
  allocation (the +12% of Fig 6).
- :class:`DaxDriverMod` — PMEM as byte-addressable memory: I/O is a
  load/store memcpy.

All drivers are terminal LabMods accepting ``blk.*`` requests with
payload ``{offset, size, data?, hctx?}``; reads return the bytes.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..devices.base import BlockDevice, BlockRequest, IoOp
from ..devices.pmem import Pmem
from ..errors import LabStorError
from ..kernel.block_layer import BlockLayer
from ..sim import Interrupt

__all__ = ["DriverMod", "KernelDriverMod", "SpdkDriverMod", "DaxDriverMod"]

_OPS = {
    "blk.read": IoOp.READ,
    "blk.write": IoOp.WRITE,
    "blk.flush": IoOp.FLUSH,
    "blk.trim": IoOp.TRIM,
}


class DriverMod(LabMod):
    """Common plumbing: find the device, decode the blk request."""

    mod_type = "driver"
    accepts = ("blk.",)
    emits = ()
    device_kinds: tuple[str, ...] = ()  # acceptable device names; () = any

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        dev_name = ctx.attrs.get("device")
        if dev_name is None:
            if len(ctx.devices) == 1:
                dev_name = next(iter(ctx.devices))
            else:
                raise LabStorError(f"{uuid}: 'device' attr required with multiple devices")
        try:
            self.device: BlockDevice = ctx.devices[dev_name]
        except KeyError:
            raise LabStorError(f"{uuid}: unknown device {dev_name!r}") from None
        if self.device_kinds and self.device.profile.name not in self.device_kinds:
            raise LabStorError(
                f"{uuid}: driver requires device in {self.device_kinds}, got "
                f"{self.device.profile.name!r}"
            )
        self.ios = 0

    @staticmethod
    def _decode(req) -> tuple[IoOp, int, int, bytes | None, int]:
        try:
            op = _OPS[req.op]
        except KeyError:
            raise LabStorError(f"driver got non-blk request {req.op!r}") from None
        p = req.payload
        return op, p["offset"], p.get("size", len(p.get("data", b""))), p.get("data"), p.get("hctx", 0)

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.driver_submit_ns + self.ctx.cost.driver_poll_ns

    def est_total_time(self, req) -> int:
        p = req.payload
        op = _OPS.get(req.op, IoOp.READ)
        size = p.get("size", len(p.get("data", b"")))
        return self.est_processing_time(req) + self.device.profile.service_ns(op, size)


class KernelDriverMod(DriverMod):
    """submit_io_to_hctx / submit_io_to_blk / poll_completions."""

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        #: "hctx" = direct hardware-queue dispatch; "blk" = full kernel path
        self.io_path = ctx.attrs.get("io_path", "hctx")
        if self.io_path not in ("hctx", "blk"):
            raise LabStorError(f"{uuid}: io_path must be 'hctx' or 'blk'")
        self._blk = BlockLayer(ctx.env, self.device, ctx.cost) if self.io_path == "blk" else None

    def handle(self, req, x: ExecContext):
        op, offset, size, data, hctx = self._decode(req)
        cost = self.ctx.cost
        self.ios += 1
        self.processed += 1
        parts = req.payload.get("parts")
        if self._blk is not None:
            # submit_io_to_blk: inherit the kernel block layer's policies
            # (a merged request is serviced as one bio — kernel semantics)
            yield from x.work(cost.driver_submit_ns, span="driver")
            breq = yield from self._blk.submit_bio(op, offset, size, data, hctx=hctx)
            return breq.result
        if parts is not None and len(parts) > 1 and op in (IoOp.READ, IoOp.WRITE):
            return (yield from self._submit_parts(op, offset, data, parts, hctx, x))
        # submit_io_to_hctx: straight into the hardware dispatch queue
        yield from x.work(cost.driver_submit_ns, span="driver")
        breq = BlockRequest(op=op, offset=offset, size=size, data=data,
                            hctx=hctx % self.device.nqueues)
        done = self.device.submit(breq)
        yield from x.wait(done, span="device_io")
        # poll_completions: reap without an interrupt
        yield from x.work(cost.driver_poll_ns, span="driver")
        return breq.result

    def _submit_parts(self, op: IoOp, offset: int, data: bytes | None,
                      parts: list, hctx: int, x: ExecContext):
        """Submit a scheduler-merged request as per-part hardware commands.

        One ``driver_submit_ns`` covers the merged command; each extra part
        pays only the marginal ``batch_op_ns``.  The parts land on the hctx
        back-to-back so the device's coalescing window fuses them — while
        keeping per-part fault isolation: the fault engine rolls for every
        constituent BlockRequest separately.

        Returns per-part ``(result, error, submit_ns, complete_ns)`` tuples
        in parts order (offset-sorted, as the scheduler built them).
        """
        cost = self.ctx.cost
        yield from x.work(cost.driver_submit_ns, span="driver")
        yield from x.work(cost.batch_op_ns * (len(parts) - 1), span="driver")
        breqs = []
        for poff, psize in parts:
            pdata = None
            if data is not None:
                lo = poff - offset
                pdata = data[lo:lo + psize]
            breqs.append(BlockRequest(op=op, offset=poff, size=psize, data=pdata,
                                      hctx=hctx % self.device.nqueues))
        for breq in breqs:
            self.device.submit(breq)
        self.ios += len(parts) - 1
        outcomes = []
        for breq in breqs:
            try:
                yield from x.wait(breq.done, span="device_io")
            except Interrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - per-part fault surface
                outcomes.append((None, exc, breq.submit_ns, breq.complete_ns))
            else:
                outcomes.append((breq.result, None, breq.submit_ns, breq.complete_ns))
        # poll_completions: one reap pass covers the whole run
        yield from x.work(cost.driver_poll_ns, span="driver")
        return outcomes


class SpdkDriverMod(DriverMod):
    """Userspace NVMe driver over the mapped PCI BAR (NVMe only)."""

    device_kinds = ("nvme",)

    def handle(self, req, x: ExecContext):
        op, offset, size, data, hctx = self._decode(req)
        cost = self.ctx.cost
        self.ios += 1
        self.processed += 1
        yield from x.work(cost.spdk_submit_ns, span="driver")
        breq = BlockRequest(op=op, offset=offset, size=size, data=data,
                            hctx=hctx % self.device.nqueues)
        done = self.device.submit(breq)
        yield from x.wait(done, span="device_io")
        yield from x.work(cost.spdk_poll_ns, span="driver")
        return breq.result

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.spdk_submit_ns + self.ctx.cost.spdk_poll_ns


class DaxDriverMod(DriverMod):
    """PMEM load/store access (DAX): no queues, no commands."""

    device_kinds = ("pmem",)

    def handle(self, req, x: ExecContext):
        op, offset, size, data, _hctx = self._decode(req)
        dev: Pmem = self.device  # type: ignore[assignment]
        cost = self.ctx.cost
        self.ios += 1
        self.processed += 1
        yield from x.work(cost.dax_map_ns, span="driver")
        if op is IoOp.WRITE:
            assert data is not None
            yield from x.wait(self.ctx.env.process(dev.dax_store(offset, data)), span="device_io")
            return None
        if op is IoOp.READ:
            result = yield from x.wait(
                self.ctx.env.process(dev.dax_load(offset, size)), span="device_io"
            )
            return result
        if op is IoOp.FLUSH:
            yield from x.work(dev.profile.flush_lat_ns, span="device_io")
            return None
        raise LabStorError(f"DAX driver cannot service {req.op!r}")

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.dax_map_ns
