"""Driver LabMods: the storage hardware APIs at the bottom of every stack.

Three drivers matching Section III-F:

- :class:`KernelDriverMod` — exposes the kernel's multi-queue driver
  hardware queues directly (``submit_io_to_hctx``), bypassing the block
  layer's alloc/sched/dispatch bookkeeping; or rides the standard block
  layer (``submit_io_to_blk``) to inherit kernel policies.  Completion is
  reaped with ``poll_completions`` (no IRQ, no context switch).
- :class:`SpdkDriverMod` — userspace NVMe: builds the NVMe command
  directly in the mapped BAR, cheaper than the kernel driver's structure
  allocation (the +12% of Fig 6).
- :class:`DaxDriverMod` — PMEM as byte-addressable memory: I/O is a
  load/store memcpy.

All drivers are terminal LabMods accepting ``blk.*`` requests with
payload ``{offset, size, data?, hctx?}``; reads return the bytes.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..devices.base import BlockDevice, BlockRequest, IoOp
from ..devices.pmem import Pmem
from ..errors import LabStorError
from ..kernel.block_layer import BlockLayer

__all__ = ["DriverMod", "KernelDriverMod", "SpdkDriverMod", "DaxDriverMod"]

_OPS = {
    "blk.read": IoOp.READ,
    "blk.write": IoOp.WRITE,
    "blk.flush": IoOp.FLUSH,
    "blk.trim": IoOp.TRIM,
}


class DriverMod(LabMod):
    """Common plumbing: find the device, decode the blk request."""

    mod_type = "driver"
    accepts = ("blk.",)
    emits = ()
    device_kinds: tuple[str, ...] = ()  # acceptable device names; () = any

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        dev_name = ctx.attrs.get("device")
        if dev_name is None:
            if len(ctx.devices) == 1:
                dev_name = next(iter(ctx.devices))
            else:
                raise LabStorError(f"{uuid}: 'device' attr required with multiple devices")
        try:
            self.device: BlockDevice = ctx.devices[dev_name]
        except KeyError:
            raise LabStorError(f"{uuid}: unknown device {dev_name!r}") from None
        if self.device_kinds and self.device.profile.name not in self.device_kinds:
            raise LabStorError(
                f"{uuid}: driver requires device in {self.device_kinds}, got "
                f"{self.device.profile.name!r}"
            )
        self.ios = 0

    @staticmethod
    def _decode(req) -> tuple[IoOp, int, int, bytes | None, int]:
        try:
            op = _OPS[req.op]
        except KeyError:
            raise LabStorError(f"driver got non-blk request {req.op!r}") from None
        p = req.payload
        return op, p["offset"], p.get("size", len(p.get("data", b""))), p.get("data"), p.get("hctx", 0)

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.driver_submit_ns + self.ctx.cost.driver_poll_ns

    def est_total_time(self, req) -> int:
        p = req.payload
        op = _OPS.get(req.op, IoOp.READ)
        size = p.get("size", len(p.get("data", b"")))
        return self.est_processing_time(req) + self.device.profile.service_ns(op, size)


class KernelDriverMod(DriverMod):
    """submit_io_to_hctx / submit_io_to_blk / poll_completions."""

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        #: "hctx" = direct hardware-queue dispatch; "blk" = full kernel path
        self.io_path = ctx.attrs.get("io_path", "hctx")
        if self.io_path not in ("hctx", "blk"):
            raise LabStorError(f"{uuid}: io_path must be 'hctx' or 'blk'")
        self._blk = BlockLayer(ctx.env, self.device, ctx.cost) if self.io_path == "blk" else None

    def handle(self, req, x: ExecContext):
        op, offset, size, data, hctx = self._decode(req)
        cost = self.ctx.cost
        self.ios += 1
        self.processed += 1
        if self._blk is not None:
            # submit_io_to_blk: inherit the kernel block layer's policies
            yield from x.work(cost.driver_submit_ns, span="driver")
            breq = yield from self._blk.submit_bio(op, offset, size, data, hctx=hctx)
            return breq.result
        # submit_io_to_hctx: straight into the hardware dispatch queue
        yield from x.work(cost.driver_submit_ns, span="driver")
        breq = BlockRequest(op=op, offset=offset, size=size, data=data,
                            hctx=hctx % self.device.nqueues)
        done = self.device.submit(breq)
        yield from x.wait(done, span="device_io")
        # poll_completions: reap without an interrupt
        yield from x.work(cost.driver_poll_ns, span="driver")
        return breq.result


class SpdkDriverMod(DriverMod):
    """Userspace NVMe driver over the mapped PCI BAR (NVMe only)."""

    device_kinds = ("nvme",)

    def handle(self, req, x: ExecContext):
        op, offset, size, data, hctx = self._decode(req)
        cost = self.ctx.cost
        self.ios += 1
        self.processed += 1
        yield from x.work(cost.spdk_submit_ns, span="driver")
        breq = BlockRequest(op=op, offset=offset, size=size, data=data,
                            hctx=hctx % self.device.nqueues)
        done = self.device.submit(breq)
        yield from x.wait(done, span="device_io")
        yield from x.work(cost.spdk_poll_ns, span="driver")
        return breq.result

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.spdk_submit_ns + self.ctx.cost.spdk_poll_ns


class DaxDriverMod(DriverMod):
    """PMEM load/store access (DAX): no queues, no commands."""

    device_kinds = ("pmem",)

    def handle(self, req, x: ExecContext):
        op, offset, size, data, _hctx = self._decode(req)
        dev: Pmem = self.device  # type: ignore[assignment]
        cost = self.ctx.cost
        self.ios += 1
        self.processed += 1
        yield from x.work(cost.dax_map_ns, span="driver")
        if op is IoOp.WRITE:
            assert data is not None
            yield from x.wait(self.ctx.env.process(dev.dax_store(offset, data)), span="device_io")
            return None
        if op is IoOp.READ:
            result = yield from x.wait(
                self.ctx.env.process(dev.dax_load(offset, size)), span="device_io"
            )
            return result
        if op is IoOp.FLUSH:
            yield from x.work(dev.profile.flush_lat_ns, span="device_io")
            return None
        raise LabStorError(f"DAX driver cannot service {req.op!r}")

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.dax_map_ns
