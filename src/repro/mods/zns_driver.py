"""ZNS Driver LabMod: a zoned-namespace hardware API at the stack bottom.

Beyond the block set, it accepts:

- ``blk.append``  (payload: zone, data)   -> assigned device offset
- ``blk.reset_zone`` (payload: zone)

Plain ``blk.read`` works anywhere; plain ``blk.write`` is validated by
the device's sequential-write rule — stacks built for ZNS should append.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, ModContext
from ..devices.zns import ZnsNvme
from ..errors import LabStorError
from .drivers import DriverMod

__all__ = ["ZnsDriverMod"]


class ZnsDriverMod(DriverMod):
    accepts = ("blk.",)
    emits = ()
    device_kinds = ("zns",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        if not isinstance(self.device, ZnsNvme):
            raise LabStorError(f"{uuid}: ZnsDriverMod needs a ZnsNvme device")

    def handle(self, req, x: ExecContext):
        cost = self.ctx.cost
        p = req.payload
        self.ios += 1
        self.processed += 1
        if req.op == "blk.append":
            yield from x.work(cost.spdk_submit_ns, span="driver")
            offset = yield from x.wait(
                self.ctx.env.process(
                    self.device.zone_append(p["zone"], p["data"], hctx=p.get("hctx", 0))
                ),
                span="device_io",
            )
            yield from x.work(cost.spdk_poll_ns, span="driver")
            return offset
        if req.op == "blk.reset_zone":
            yield from x.work(cost.spdk_submit_ns, span="driver")
            yield from x.wait(
                self.ctx.env.process(self.device.zone_reset(p["zone"])), span="device_io"
            )
            return None
        # ordinary block path (reads anywhere; writes validated by the
        # device's sequential-write rule)
        from ..devices.base import BlockRequest

        op, offset, size, data, hctx = self._decode(req)
        yield from x.work(cost.driver_submit_ns, span="driver")
        breq = BlockRequest(op=op, offset=offset, size=size, data=data,
                            hctx=hctx % self.device.nqueues)
        done = self.device.submit(breq)
        yield from x.wait(done, span="device_io")
        yield from x.work(cost.driver_poll_ns, span="driver")
        return breq.result
