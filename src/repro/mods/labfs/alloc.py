"""LabFS's scalable per-worker block allocator (+ the lock baseline).

Device blocks are divided evenly among the worker pool so allocation is
contention-free; a worker that runs out steals from the richest peer.
When workers are decommissioned their blocks are re-assigned; new workers
steal a configurable number of blocks from the others (Section III-E).

:class:`CentralizedBlockAllocator` is the design LabFS *avoids*: one
free list behind one lock, the way kernel filesystems guard their block
bitmaps — kept here as the ablation baseline
(``benchmarks/test_bench_ablation_allocator.py``).
"""

from __future__ import annotations

from ...errors import OutOfSpaceError
from ...sim import Environment, Resource

__all__ = ["PerWorkerBlockAllocator", "CentralizedBlockAllocator"]


class _Shard:
    """One worker's pool: contiguous ranges + a free list of singles."""

    __slots__ = ("ranges", "freed")

    def __init__(self) -> None:
        self.ranges: list[list[int]] = []  # [lo, hi) pairs, mutated in place
        self.freed: list[int] = []

    def count(self) -> int:
        return sum(hi - lo for lo, hi in self.ranges) + len(self.freed)

    def take_one(self) -> int | None:
        if self.freed:
            return self.freed.pop()
        while self.ranges:
            lo, hi = self.ranges[0]
            if lo < hi:
                self.ranges[0][0] = lo + 1
                if lo + 1 == hi:
                    self.ranges.pop(0)
                return lo
            self.ranges.pop(0)
        return None

    def take_bulk(self, n: int) -> tuple[list[list[int]], list[int]]:
        """Remove ~n blocks, preferring whole ranges."""
        got_ranges: list[list[int]] = []
        got = 0
        while self.ranges and got < n:
            lo, hi = self.ranges[-1]
            span = hi - lo
            if span <= n - got:
                got_ranges.append(self.ranges.pop())
                got += span
            else:
                cut = hi - (n - got)
                self.ranges[-1][1] = cut
                got_ranges.append([cut, hi])
                got = n
        singles: list[int] = []
        while self.freed and got < n:
            singles.append(self.freed.pop())
            got += 1
        return got_ranges, singles


class PerWorkerBlockAllocator:
    def __init__(
        self,
        total_blocks: int,
        nworkers: int,
        *,
        base_block: int = 0,
        steal_blocks: int = 1024,
    ) -> None:
        if total_blocks <= 0 or nworkers <= 0:
            raise OutOfSpaceError("allocator needs positive blocks and workers")
        self.total_blocks = total_blocks
        self.base_block = base_block
        self.steal_blocks = steal_blocks
        self._shards: dict[int, _Shard] = {}
        self._allocated: set[int] = set()
        self.steals = 0
        per = total_blocks // nworkers
        cursor = base_block
        for w in range(nworkers):
            shard = _Shard()
            hi = cursor + per if w < nworkers - 1 else base_block + total_blocks
            shard.ranges.append([cursor, hi])
            cursor = hi
            self._shards[w] = shard

    # ------------------------------------------------------------------
    @property
    def nworkers(self) -> int:
        return len(self._shards)

    def _shard_for(self, worker_id: int) -> _Shard:
        if worker_id in self._shards:
            return self._shards[worker_id]
        # unknown worker key (e.g. client-side sync execution): hash onto a shard
        keys = sorted(self._shards)
        return self._shards[keys[worker_id % len(keys)]]

    def alloc(self, worker_id: int | None = 0) -> int:
        """Allocate one block, stealing from peers if this shard is dry."""
        shard = self._shard_for(worker_id or 0)
        block = shard.take_one()
        if block is None:
            self._steal_into(shard)
            block = shard.take_one()
            if block is None:
                raise OutOfSpaceError("LabFS: no free blocks anywhere")
        self._allocated.add(block)
        return block

    def free(self, block: int, worker_id: int | None = 0) -> None:
        if block not in self._allocated:
            raise OutOfSpaceError(f"double free of block {block}")
        self._allocated.discard(block)
        self._shard_for(worker_id or 0).freed.append(block)

    def _steal_into(self, shard: _Shard) -> None:
        victims = [s for s in self._shards.values() if s is not shard and s.count() > 0]
        if not victims:
            return
        victim = max(victims, key=lambda s: s.count())
        want = min(self.steal_blocks, max(1, victim.count() // 2))
        ranges, singles = victim.take_bulk(want)
        shard.ranges.extend(ranges)
        shard.freed.extend(singles)
        self.steals += 1

    # -- worker pool resizing -------------------------------------------------
    def add_worker(self, worker_id: int) -> None:
        """A new worker steals `steal_blocks` from each existing shard."""
        if worker_id in self._shards:
            return
        shard = _Shard()
        for other in list(self._shards.values()):
            ranges, singles = other.take_bulk(self.steal_blocks)
            shard.ranges.extend(ranges)
            shard.freed.extend(singles)
        self._shards[worker_id] = shard

    def remove_worker(self, worker_id: int) -> None:
        """Decommissioned worker's free blocks go to the running workers."""
        shard = self._shards.pop(worker_id, None)
        if shard is None or not self._shards:
            if shard is not None:
                # last worker removed: keep the blocks under a fresh shard 0
                self._shards[0] = shard
            return
        heirs = sorted(self._shards)
        for i, rng in enumerate(shard.ranges):
            self._shards[heirs[i % len(heirs)]].ranges.append(rng)
        for i, blk in enumerate(shard.freed):
            self._shards[heirs[i % len(heirs)]].freed.append(blk)

    # -- introspection ----------------------------------------------------
    def free_count(self, worker_id: int | None = None) -> int:
        if worker_id is not None:
            return self._shard_for(worker_id).count()
        return sum(s.count() for s in self._shards.values())

    def allocated_count(self) -> int:
        return len(self._allocated)

    # -- snapshot support -------------------------------------------------
    def export_state(self) -> dict:
        """Plain-data capture (sorted containers: deterministic digests)."""
        return {
            "kind": "per_worker",
            "total_blocks": self.total_blocks,
            "base_block": self.base_block,
            "steal_blocks": self.steal_blocks,
            "steals": self.steals,
            "allocated": sorted(self._allocated),
            "shards": {
                wid: {
                    "ranges": [list(r) for r in shard.ranges],
                    "freed": list(shard.freed),
                }
                for wid, shard in sorted(self._shards.items())
            },
        }

    def install_state(self, state: dict) -> None:
        self.total_blocks = state["total_blocks"]
        self.base_block = state["base_block"]
        self.steal_blocks = state["steal_blocks"]
        self.steals = state["steals"]
        self._allocated = set(state["allocated"])
        self._shards = {}
        for wid, data in state["shards"].items():
            shard = _Shard()
            shard.ranges = [list(r) for r in data["ranges"]]
            shard.freed = list(data["freed"])
            self._shards[int(wid)] = shard

    # -- uniform (generator) allocation API --------------------------------
    def alloc_block(self, worker_id: int | None, x):
        """Generator form of :meth:`alloc` — contention-free, zero waits."""
        return self.alloc(worker_id)
        yield  # pragma: no cover - makes this a generator


class CentralizedBlockAllocator:
    """One free list, one lock: the baseline LabFS's design replaces.

    Every allocation serializes on the lock for ``lock_hold_ns`` —
    under concurrent metadata load this is the bitmap-lock bottleneck
    kernel filesystems exhibit in Fig 7.
    """

    def __init__(
        self,
        env: Environment,
        total_blocks: int,
        *,
        base_block: int = 0,
        lock_hold_ns: int = 900,
    ) -> None:
        if total_blocks <= 0:
            raise OutOfSpaceError("allocator needs positive blocks")
        self.env = env
        self.lock = Resource(env, capacity=1)
        self.lock_hold_ns = lock_hold_ns
        self._next = base_block
        self._end = base_block + total_blocks
        self._freed: list[int] = []
        self._allocated: set[int] = set()
        self.steals = 0  # interface parity; a central pool never steals

    def _take(self) -> int:
        if self._freed:
            block = self._freed.pop()
        elif self._next < self._end:
            block = self._next
            self._next += 1
        else:
            raise OutOfSpaceError("centralized allocator: no free blocks")
        self._allocated.add(block)
        return block

    def alloc_block(self, worker_id: int | None, x):
        """Generator: serialize on the global lock, then allocate."""
        with self.lock.request() as grant:
            yield grant
            yield self.env.timeout(self.lock_hold_ns)
            return self._take()

    def alloc(self, worker_id: int | None = 0) -> int:
        """Non-blocking variant for tests (skips the lock wait)."""
        return self._take()

    def free(self, block: int, worker_id: int | None = 0) -> None:
        if block not in self._allocated:
            raise OutOfSpaceError(f"double free of block {block}")
        self._allocated.discard(block)
        self._freed.append(block)

    def free_count(self, worker_id: int | None = None) -> int:
        return (self._end - self._next) + len(self._freed)

    def allocated_count(self) -> int:
        return len(self._allocated)

    def add_worker(self, worker_id: int) -> None:  # interface parity
        pass

    def remove_worker(self, worker_id: int) -> None:
        pass

    # -- snapshot support -------------------------------------------------
    def export_state(self) -> dict:
        """Plain data only — the env/lock stay with the deployment."""
        return {
            "kind": "centralized",
            "next": self._next,
            "end": self._end,
            "freed": list(self._freed),
            "allocated": sorted(self._allocated),
        }

    def install_state(self, state: dict) -> None:
        self._next = state["next"]
        self._end = state["end"]
        self._freed = list(state["freed"])
        self._allocated = set(state["allocated"])
