"""LabFS: log-structured POSIX filesystem LabMod."""

from .alloc import PerWorkerBlockAllocator
from .fs import LabFs, LabFsInode
from .log import LogRecord, MetadataLog, replay

__all__ = ["LabFs", "LabFsInode", "PerWorkerBlockAllocator", "MetadataLog", "LogRecord", "replay"]
