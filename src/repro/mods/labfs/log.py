"""LabFS metadata log.

LabFS does not keep inodes or bitmaps on disk.  Every metadata mutation
(create, unlink, rename, size change, block mapping) appends a record to
a per-worker log; the in-memory inode hashmap is a pure function of the
merged logs, replayable after a crash (``StateRepair``) or at mount.
Records carry a global sequence number so per-worker logs merge into a
single total order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["LogRecord", "MetadataLog", "replay", "ensure_seq_above"]

_seq = itertools.count(1)


def ensure_seq_above(max_seq: int) -> None:
    """Advance the global sequence counter past ``max_seq``.

    Called when a snapshot installs pre-assigned records into a fresh
    process: new appends must sort after every installed record for the
    merged total order to stay a replay prefix.  Consumes exactly one
    tick so the effect is identical whether the counter is fresh or
    already past ``max_seq`` (determinism across cold/warm paths).
    """
    global _seq
    current = next(_seq)
    _seq = itertools.count(max(current, max_seq + 1))

# record kinds
CREATE = "create"
MKDIR = "mkdir"
UNLINK = "unlink"
RENAME = "rename"
SET_SIZE = "set_size"
MAP_BLOCK = "map_block"


@dataclass(frozen=True)
class LogRecord:
    seq: int
    kind: str
    ino: int
    a: Any = None   # kind-specific: path / new path / size / page_no
    b: Any = None   # kind-specific: block offset


class MetadataLog:
    """Per-worker append-only logs with a merged total-order view."""

    def __init__(self) -> None:
        self._logs: dict[int, list[LogRecord]] = {}

    def append(self, worker_id: int | None, kind: str, ino: int, a: Any = None, b: Any = None) -> LogRecord:
        rec = LogRecord(next(_seq), kind, ino, a, b)
        self._logs.setdefault(worker_id or 0, []).append(rec)
        return rec

    def merged(self) -> Iterator[LogRecord]:
        all_recs = [r for log in self._logs.values() for r in log]
        all_recs.sort(key=lambda r: r.seq)
        return iter(all_recs)

    def record_count(self) -> int:
        return sum(len(log) for log in self._logs.values())

    def worker_ids(self) -> list[int]:
        return sorted(self._logs)

    def export_state(self) -> dict:
        """Plain-data snapshot of every per-worker log (picklable)."""
        return {
            "logs": {
                wid: [(r.seq, r.kind, r.ino, r.a, r.b) for r in log]
                for wid, log in sorted(self._logs.items())
            }
        }

    def install_state(self, state: dict) -> None:
        """Replace contents with an exported snapshot and bump the global
        sequence counter past every installed record."""
        self._logs = {
            int(wid): [LogRecord(*rec) for rec in recs]
            for wid, recs in state["logs"].items()
        }
        max_seq = max(
            (r.seq for log in self._logs.values() for r in log), default=0
        )
        ensure_seq_above(max_seq)

    def compact(self, live_inos: set[int]) -> int:
        """Drop records for inodes that no longer exist; returns #dropped."""
        dropped = 0
        for wid, log in self._logs.items():
            kept = [r for r in log if r.ino in live_inos or r.kind in (UNLINK,)]
            # an UNLINK of a dead inode is only needed if earlier records survive
            kept = [r for r in kept if not (r.kind == UNLINK and r.ino not in live_inos)]
            dropped += len(log) - len(kept)
            self._logs[wid] = kept
        return dropped


def replay(log: MetadataLog) -> dict[int, dict]:
    """Rebuild the inode table from the merged log.

    Returns ``{ino: {"path": str, "size": int, "blocks": {page: offset},
    "dir": bool}}``.
    """
    inodes: dict[int, dict] = {}
    for rec in log.merged():
        if rec.kind == CREATE:
            inodes[rec.ino] = {"path": rec.a, "size": 0, "blocks": {}, "dir": False}
        elif rec.kind == MKDIR:
            inodes[rec.ino] = {"path": rec.a, "size": 0, "blocks": {}, "dir": True}
        elif rec.kind == UNLINK:
            inodes.pop(rec.ino, None)
        elif rec.kind == RENAME:
            if rec.ino in inodes:
                inodes[rec.ino]["path"] = rec.a
        elif rec.kind == SET_SIZE:
            if rec.ino in inodes:
                inodes[rec.ino]["size"] = rec.a
        elif rec.kind == MAP_BLOCK:
            if rec.ino in inodes:
                inodes[rec.ino]["blocks"][rec.a] = rec.b
    return inodes
