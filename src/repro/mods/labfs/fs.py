"""LabFS: the paper's log-structured, crash-consistent POSIX filesystem.

Design (Section III-E):

- a scalable **per-worker block allocator** (``alloc.py``) that divides
  device blocks among the worker pool, with stealing;
- a **per-worker metadata log** (``log.py``) instead of on-disk inodes
  and bitmaps; the inode table is an in-memory hashmap rebuilt by log
  replay (this is both the crash-consistency story and why metadata ops
  scale — hashmap insert/rename/delete have minimal contention);
- data I/O is emitted downstream as ``blk.*`` requests, so caching,
  scheduling, compression and the driver are whatever the LabStack says.

Accepted operations (payload fields):

========== ==========================================
fs.open     path, create?  -> ino
fs.create   path           -> ino
fs.write    ino, offset, data -> bytes written
fs.read     ino, offset, size -> bytes
fs.unlink   path
fs.rename   path, new_path
fs.mkdir    path           -> ino
fs.readdir  path           -> sorted child names
fs.rmdir    path           (ENOTEMPTY if occupied)
fs.stat     path           -> {ino, size, is_dir}
fs.fsync    ino
fs.close    ino            (server-side no-op)
========== ==========================================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ...core.labmod import ExecContext, LabMod, ModContext
from ...core.requests import LabRequest
from ...errors import FsError
from . import log as mdlog
from .alloc import CentralizedBlockAllocator, PerWorkerBlockAllocator

__all__ = ["LabFs", "LabFsInode"]

BLOCK = 4096


@dataclass
class LabFsInode:
    ino: int
    path: str
    size: int = 0
    blocks: dict[int, int] = field(default_factory=dict)  # page_no -> device offset
    is_dir: bool = False
    children: set[str] = field(default_factory=set)       # names, dirs only


def _parent_of(path: str) -> str:
    head, _, _ = path.rstrip("/").rpartition("/")
    return head or "/"


def _name_of(path: str) -> str:
    return path.rstrip("/").rpartition("/")[2]


class LabFs(LabMod):
    mod_type = "filesystem"
    accepts = ("fs.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        total_bytes = int(ctx.attrs.get("capacity_bytes", 1 << 30))
        nworkers = int(ctx.attrs.get("nworkers", 8))
        base_block = int(ctx.attrs.get("base_block", 1))  # block 0 = superblock
        nblocks = total_bytes // BLOCK - base_block
        # "centralized" is the single-lock ablation baseline; per-worker is
        # the paper's contention-free design
        if ctx.attrs.get("allocator", "perworker") == "centralized":
            self.allocator = CentralizedBlockAllocator(ctx.env, nblocks, base_block=base_block)
        else:
            self.allocator = PerWorkerBlockAllocator(nblocks, nworkers, base_block=base_block)
        self.log = mdlog.MetadataLog()
        self.inodes: dict[int, LabFsInode] = {}
        self.by_path: dict[str, int] = {}
        self._ino = itertools.count(1)
        self.repairs = 0
        #: strict POSIX parents: create fails with ENOENT if the parent
        #: directory is missing; the default auto-creates intermediates
        self.strict_paths = bool(ctx.attrs.get("strict_paths", False))
        self._mkdir_root()

    def _mkdir_root(self) -> None:
        root = LabFsInode(ino=0, path="/", is_dir=True)
        self.inodes[0] = root
        self.by_path["/"] = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, req: LabRequest, x: ExecContext):
        op = req.op
        p = req.payload
        self.processed += 1
        if op == "fs.open":
            return (yield from self._open(p, x))
        if op == "fs.create":
            return (yield from self._create(p["path"], x))
        if op == "fs.write":
            return (yield from self._write(req, x))
        if op == "fs.read":
            return (yield from self._read(req, x))
        if op == "fs.unlink":
            return (yield from self._unlink(p["path"], x))
        if op == "fs.mkdir":
            return (yield from self._mkdir(p["path"], x))
        if op == "fs.readdir":
            return (yield from self._readdir(p["path"], x))
        if op == "fs.rmdir":
            return (yield from self._rmdir(p["path"], x))
        if op == "fs.rename":
            return (yield from self._rename(p["path"], p["new_path"], x))
        if op == "fs.stat":
            return (yield from self._stat(p["path"], x))
        if op == "fs.fsync":
            return (yield from self._fsync(req, x))
        if op == "fs.close":
            yield from x.work(100, span="fs_meta")
            return None
        raise FsError("EINVAL", f"LabFS cannot handle {op!r}")

    # ------------------------------------------------------------------
    # metadata operations
    # ------------------------------------------------------------------
    def _lookup(self, path: str) -> LabFsInode:
        ino = self.by_path.get(path)
        if ino is None:
            raise FsError("ENOENT", path)
        return self.inodes[ino]

    def _open(self, p, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_meta_ns, span="fs_meta")
        ino = self.by_path.get(p["path"])
        if ino is not None:
            return ino
        if not p.get("create"):
            raise FsError("ENOENT", p["path"])
        return (yield from self._create(p["path"], x))

    def _dir_inode(self, path: str) -> LabFsInode:
        ino = self.by_path.get(path)
        if ino is None:
            raise FsError("ENOENT", path)
        inode = self.inodes[ino]
        if not inode.is_dir:
            raise FsError("ENOTDIR", path)
        return inode

    def _ensure_parent(self, path: str, x: ExecContext) -> LabFsInode:
        """Return the parent directory, auto-creating intermediates unless
        the LabMod was mounted with strict_paths."""
        parent = _parent_of(path)
        ino = self.by_path.get(parent)
        if ino is not None:
            inode = self.inodes[ino]
            if not inode.is_dir:
                raise FsError("ENOTDIR", parent)
            return inode
        if self.strict_paths:
            raise FsError("ENOENT", f"parent of {path}")
        return self._mkdir_now(parent, x)

    def _mkdir_now(self, path: str, x: ExecContext) -> LabFsInode:
        if path == "/":
            # "/" is its own parent: recreate the root directly rather
            # than recursing into _ensure_parent forever
            self._mkdir_root()
            return self.inodes[self.by_path["/"]]
        parent = self._ensure_parent(path, x)
        ino = next(self._ino)
        inode = LabFsInode(ino=ino, path=path, is_dir=True)
        self.inodes[ino] = inode
        self.by_path[path] = ino
        parent.children.add(_name_of(path))
        self.log.append(x.worker_id, mdlog.MKDIR, ino, path)
        return inode

    def _mkdir(self, path: str, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_create_ns, span="fs_meta")
        if path in self.by_path:
            raise FsError("EEXIST", path)
        return self._mkdir_now(path, x).ino

    def _readdir(self, path: str, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_meta_ns, span="fs_meta")
        return sorted(self._dir_inode(path).children)

    def _rmdir(self, path: str, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_create_ns // 2, span="fs_meta")
        if path == "/":
            raise FsError("EBUSY", "cannot remove the root")
        inode = self._dir_inode(path)
        if inode.children:
            raise FsError("ENOTEMPTY", path)
        del self.by_path[path]
        del self.inodes[inode.ino]
        self.inodes[self.by_path[_parent_of(path)]].children.discard(_name_of(path))
        self.log.append(x.worker_id, mdlog.UNLINK, inode.ino)
        return None

    def _create(self, path: str, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_create_ns, span="fs_meta")
        if path in self.by_path:
            raise FsError("EEXIST", path)
        parent = self._ensure_parent(path, x)
        ino = next(self._ino)
        inode = LabFsInode(ino=ino, path=path)
        self.inodes[ino] = inode
        self.by_path[path] = ino
        parent.children.add(_name_of(path))
        self.log.append(x.worker_id, mdlog.CREATE, ino, path)
        return ino

    def _drop_from_parent(self, path: str) -> None:
        parent_ino = self.by_path.get(_parent_of(path))
        if parent_ino is not None:
            self.inodes[parent_ino].children.discard(_name_of(path))

    def _unlink(self, path: str, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_create_ns // 2, span="fs_meta")
        inode = self._lookup(path)
        if inode.is_dir:
            raise FsError("EISDIR", path)
        del self.by_path[path]
        del self.inodes[inode.ino]
        self._drop_from_parent(path)
        self.log.append(x.worker_id, mdlog.UNLINK, inode.ino)
        for dev_off in inode.blocks.values():
            self.allocator.free(dev_off // BLOCK, x.worker_id)
        return None

    def _rename(self, path: str, new_path: str, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_create_ns // 2, span="fs_meta")
        inode = self._lookup(path)
        new_parent = self._ensure_parent(new_path, x)
        del self.by_path[path]
        self._drop_from_parent(path)
        inode.path = new_path
        self.by_path[new_path] = inode.ino
        new_parent.children.add(_name_of(new_path))
        self.log.append(x.worker_id, mdlog.RENAME, inode.ino, new_path)
        return None

    def _stat(self, path: str, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_meta_ns, span="fs_meta")
        inode = self._lookup(path)
        return {"ino": inode.ino, "size": inode.size, "is_dir": inode.is_dir}

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _inode_by_ino(self, ino: int) -> LabFsInode:
        inode = self.inodes.get(ino)
        if inode is None:
            raise FsError("EBADF", f"ino {ino}")
        return inode

    def _blk(self, req: LabRequest, op: str, payload: dict) -> LabRequest:
        return LabRequest(
            op=op,
            payload=payload,
            stack_id=req.stack_id,
            client_pid=req.client_pid,
            priority=req.priority,
        )

    def _extents(self, inode: LabFsInode, first_page: int, npages: int, x: ExecContext,
                 allocate: bool):
        """Generator returning (device_offset, page_count) extents,
        allocating as needed; contiguous blocks coalesce into single
        extents.  Allocation may wait (the centralized-allocator baseline
        serializes on its lock; the per-worker design never waits)."""
        runs: list[list[int]] = []  # [dev_offset, npages]
        for page in range(first_page, first_page + npages):
            off = inode.blocks.get(page)
            if off is None:
                if not allocate:
                    raise FsError("EIO", f"hole at page {page} of {inode.path}")
                block = yield from self.allocator.alloc_block(x.worker_id, x)
                off = block * BLOCK
                inode.blocks[page] = off
                self.log.append(x.worker_id, mdlog.MAP_BLOCK, inode.ino, page, off)
            if runs and runs[-1][0] + runs[-1][1] * BLOCK == off:
                runs[-1][1] += 1
            else:
                runs.append([off, 1])
        return [(off, n) for off, n in runs]

    def _write(self, req: LabRequest, x: ExecContext):
        p = req.payload
        inode = self._inode_by_ino(p["ino"])
        offset, data = p["offset"], p["data"]
        yield from x.work(self.ctx.cost.labfs_meta_ns, span="fs_meta")
        head = offset % BLOCK
        tail = (offset + len(data)) % BLOCK
        first_page = offset // BLOCK
        last_page = (offset + len(data) - 1) // BLOCK
        npages = last_page - first_page + 1

        buf = bytearray(npages * BLOCK)
        # read-modify-write for partially covered edge pages that already exist
        first_partial = head != 0 or (npages == 1 and tail != 0)
        if first_partial and inode.blocks.get(first_page) is not None:
            existing = yield from self._read_extent(req, x, inode.blocks[first_page], BLOCK)
            buf[:BLOCK] = existing
        if tail and npages > 1 and inode.blocks.get(last_page) is not None:
            existing = yield from self._read_extent(req, x, inode.blocks[last_page], BLOCK)
            buf[(npages - 1) * BLOCK :] = existing
        buf[head : head + len(data)] = data

        extents = yield from self._extents(inode, first_page, npages, x, allocate=True)
        pos = 0
        for dev_off, n in extents:
            chunk = bytes(buf[pos : pos + n * BLOCK])
            sub = self._blk(req, "blk.write", {
                "offset": dev_off, "size": len(chunk), "data": chunk,
                "origin_core": req.client_pid or 0,
            })
            yield from self.forward(sub, x)
            pos += n * BLOCK
        if offset + len(data) > inode.size:
            inode.size = offset + len(data)
            self.log.append(x.worker_id, mdlog.SET_SIZE, inode.ino, inode.size)
        return len(data)

    def _read_extent(self, req: LabRequest, x: ExecContext, dev_off: int, size: int):
        sub = self._blk(req, "blk.read", {
            "offset": dev_off, "size": size, "origin_core": req.client_pid or 0,
        })
        return (yield from self.forward(sub, x))

    def _read(self, req: LabRequest, x: ExecContext):
        p = req.payload
        inode = self._inode_by_ino(p["ino"])
        offset = p["offset"]
        size = max(0, min(p["size"], inode.size - offset))
        yield from x.work(self.ctx.cost.labfs_meta_ns, span="fs_meta")
        if size == 0:
            return b""
        first_page = offset // BLOCK
        last_page = (offset + size - 1) // BLOCK
        npages = last_page - first_page + 1
        buf = bytearray(npages * BLOCK)
        # coalesce pages whose device blocks are contiguous into one read
        runs: list[tuple[int, int, int]] = []  # (buf_pos, dev_off, nblocks)
        for page in range(first_page, first_page + npages):
            dev_off = inode.blocks.get(page)
            if dev_off is None:
                continue  # hole: stays zero
            if runs and runs[-1][1] + runs[-1][2] * BLOCK == dev_off and (
                runs[-1][0] + runs[-1][2] * BLOCK == (page - first_page) * BLOCK
            ):
                runs[-1] = (runs[-1][0], runs[-1][1], runs[-1][2] + 1)
            else:
                runs.append(((page - first_page) * BLOCK, dev_off, 1))
        for buf_pos, dev_off, nblocks in runs:
            data = yield from self._read_extent(req, x, dev_off, nblocks * BLOCK)
            buf[buf_pos : buf_pos + nblocks * BLOCK] = data
        head = offset % BLOCK
        return bytes(buf[head : head + size])

    def _fsync(self, req: LabRequest, x: ExecContext):
        yield from x.work(self.ctx.cost.labfs_meta_ns, span="fs_meta")
        sub = self._blk(req, "blk.flush", {"offset": 0, "size": 0,
                                           "origin_core": req.client_pid or 0})
        yield from self.forward(sub, x)
        return None

    # ------------------------------------------------------------------
    # estimates / upgrade / repair
    # ------------------------------------------------------------------
    def est_processing_time(self, req: LabRequest) -> int:
        if req.op in ("fs.create", "fs.open"):
            return self.ctx.cost.labfs_create_ns
        size = req.payload.get("size", len(req.payload.get("data", b"")))
        return self.ctx.cost.labfs_meta_ns + self.ctx.cost.copy_ns(size)

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, LabFs):
            self.allocator = old.allocator
            self.log = old.log
            self.inodes = old.inodes
            self.by_path = old.by_path
            self._ino = old._ino

    def on_crash(self) -> None:
        """Runtime died: the in-memory inode hashmap and path map are
        volatile and vanish with it.  The metadata log and the allocator's
        committed extents are durable; :meth:`state_repair` rebuilds the
        volatile side from them at restart.  The root is implicit in mkfs
        and survives (requests still draining through dying workers must
        not find a rootless namespace)."""
        self.inodes = {}
        self.by_path = {}
        self._mkdir_root()

    def on_snapshot(self) -> dict:
        """Durable state only: the metadata log and the allocator (the
        inode hashmap is a pure function of the log, rebuilt on restore)."""
        state = super().on_snapshot()
        state["log"] = self.log.export_state()
        state["allocator"] = self.allocator.export_state()
        state["repairs"] = self.repairs
        return state

    def on_restore(self, state: dict) -> None:
        super().on_restore(state)
        self.log.install_state(state["log"])
        self.allocator.install_state(state["allocator"])
        self.repairs = state.get("repairs", 0)
        self.state_repair()
        self.repairs -= 1  # restore is a rebuild, not a crash repair
        max_ino = max(self.inodes, default=0)
        for rec in self.log.merged():
            max_ino = max(max_ino, rec.ino)
        self._ino = itertools.count(max_ino + 1)

    def state_repair(self) -> None:
        """Crash recovery: rebuild the inode hashmap (and the directory
        tree) from the log."""
        table = mdlog.replay(self.log)
        self.inodes = {
            ino: LabFsInode(ino=ino, path=rec["path"], size=rec["size"],
                            blocks=dict(rec["blocks"]), is_dir=rec.get("dir", False))
            for ino, rec in table.items()
        }
        self.by_path = {inode.path: ino for ino, inode in self.inodes.items()}
        if "/" not in self.by_path:
            self._mkdir_root()
        # rebuild directory membership from the flat path map
        for inode in list(self.inodes.values()):
            if inode.path == "/":
                continue
            parent_ino = self.by_path.get(_parent_of(inode.path))
            if parent_ino is not None:
                self.inodes[parent_ino].children.add(_name_of(inode.path))
        self.repairs += 1
