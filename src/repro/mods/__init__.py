"""The LabMod library shipped with the platform.

``STANDARD_REPO`` is the plug-in repo mounted by default deployments:
every LabMod class here, keyed by its class name (the ``mod`` field of a
LabStack spec node).
"""

from .cache_lru import LruCacheMod
from .compression import CompressionMod
from .consistency import ConsistencyMod
from .drivers import DaxDriverMod, DriverMod, KernelDriverMod, SpdkDriverMod
from .dummy import DummyMod, DummyModV2
from .generic_fs import GenericFS
from .generic_kvs import GenericKVS
from .iostats import IoStatsMod
from .labfs import LabFs, MetadataLog, PerWorkerBlockAllocator
from .labfs.alloc import CentralizedBlockAllocator
from .labkvs import LabKvs
from .permissions import PermissionsMod
from .prefetch import PrefetchMod
from .sched_batch import BatchSchedMod
from .sched_blkswitch import BlkSwitchSchedMod
from .sched_noop import NoOpSchedMod
from .zns_driver import ZnsDriverMod

STANDARD_REPO = {
    cls.__name__: cls
    for cls in (
        LabFs,
        LabKvs,
        LruCacheMod,
        PermissionsMod,
        CompressionMod,
        ConsistencyMod,
        IoStatsMod,
        PrefetchMod,
        NoOpSchedMod,
        BatchSchedMod,
        BlkSwitchSchedMod,
        KernelDriverMod,
        SpdkDriverMod,
        DaxDriverMod,
        ZnsDriverMod,
        DummyMod,
        DummyModV2,
    )
}

__all__ = [
    "LabFs",
    "LabKvs",
    "LruCacheMod",
    "PermissionsMod",
    "CompressionMod",
    "ConsistencyMod",
    "IoStatsMod",
    "PrefetchMod",
    "CentralizedBlockAllocator",
    "NoOpSchedMod",
    "BatchSchedMod",
    "BlkSwitchSchedMod",
    "DriverMod",
    "KernelDriverMod",
    "SpdkDriverMod",
    "DaxDriverMod",
    "ZnsDriverMod",
    "DummyMod",
    "DummyModV2",
    "GenericFS",
    "GenericKVS",
    "PerWorkerBlockAllocator",
    "MetadataLog",
    "STANDARD_REPO",
]
