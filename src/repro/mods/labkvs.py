"""LabKVS: the paper's key-value store LabMod.

Same bones as LabFS but a put/get/remove API: one request does what the
POSIX path needs open-seek-write-close for (the Fig 9(b) LABIOS result).
Values are stored in device blocks allocated from the same per-worker
allocator design; the key table is an in-memory hashmap backed by the
metadata log for crash recovery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.labmod import ExecContext, LabMod, ModContext
from ..core.requests import LabRequest
from ..errors import FsError
from .labfs import log as mdlog
from .labfs.alloc import CentralizedBlockAllocator, PerWorkerBlockAllocator

__all__ = ["LabKvs", "LabKvsV2"]

BLOCK = 4096


@dataclass
class _Value:
    ino: int
    size: int
    blocks: list[int] = field(default_factory=list)  # device offsets, in order


class LabKvs(LabMod):
    mod_type = "kvs"
    accepts = ("kvs.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        total_bytes = int(ctx.attrs.get("capacity_bytes", 1 << 30))
        nworkers = int(ctx.attrs.get("nworkers", 8))
        base_block = int(ctx.attrs.get("base_block", 1))
        nblocks = total_bytes // BLOCK - base_block
        if ctx.attrs.get("allocator", "perworker") == "centralized":
            self.allocator = CentralizedBlockAllocator(ctx.env, nblocks, base_block=base_block)
        else:
            self.allocator = PerWorkerBlockAllocator(nblocks, nworkers, base_block=base_block)
        self.table: dict[str, _Value] = {}
        self.log = mdlog.MetadataLog()
        self._ino = itertools.count(1)

    # ------------------------------------------------------------------
    def handle(self, req: LabRequest, x: ExecContext):
        p = req.payload
        self.processed += 1
        yield from x.work(self.ctx.cost.labkvs_op_ns, span="kvs")
        if req.op == "kvs.put":
            return (yield from self._put(req, p["key"], p["value"], x))
        if req.op == "kvs.get":
            return (yield from self._get(req, p["key"], x))
        if req.op == "kvs.remove":
            return self._remove(p["key"], x)
        if req.op == "kvs.exists":
            return p["key"] in self.table
        raise FsError("EINVAL", f"LabKVS cannot handle {req.op!r}")

    def _blk(self, req: LabRequest, op: str, payload: dict) -> LabRequest:
        payload.setdefault("origin_core", req.client_pid or 0)
        return LabRequest(op=op, payload=payload, stack_id=req.stack_id,
                          client_pid=req.client_pid, priority=req.priority)

    def _put(self, req: LabRequest, key: str, value: bytes, x: ExecContext):
        old = self.table.get(key)
        if old is not None:
            self._free_value(old, x)
        nblocks = max(1, -(-len(value) // BLOCK))
        blocks = []
        for _ in range(nblocks):
            block = yield from self.allocator.alloc_block(x.worker_id, x)
            blocks.append(block * BLOCK)
        ino = next(self._ino)
        val = _Value(ino=ino, size=len(value), blocks=blocks)
        self.table[key] = val
        self.log.append(x.worker_id, mdlog.CREATE, ino, key)
        self.log.append(x.worker_id, mdlog.SET_SIZE, ino, len(value))
        for i, off in enumerate(blocks):
            self.log.append(x.worker_id, mdlog.MAP_BLOCK, ino, i, off)
        # coalesce contiguous blocks into single writes
        pos = 0
        i = 0
        while i < nblocks:
            j = i
            while j + 1 < nblocks and blocks[j + 1] == blocks[j] + BLOCK:
                j += 1
            span = (j - i + 1) * BLOCK
            chunk = value[pos : pos + span]
            if len(chunk) < span:
                chunk = chunk + b"\x00" * (span - len(chunk))
            sub = self._blk(req, "blk.write", {"offset": blocks[i], "size": span, "data": chunk})
            yield from self.forward(sub, x)
            pos += span
            i = j + 1
        return len(value)

    def _get(self, req: LabRequest, key: str, x: ExecContext):
        val = self.table.get(key)
        if val is None:
            raise FsError("ENOENT", f"key {key!r}")
        out = bytearray()
        i = 0
        while i < len(val.blocks):
            j = i
            while j + 1 < len(val.blocks) and val.blocks[j + 1] == val.blocks[j] + BLOCK:
                j += 1
            span = (j - i + 1) * BLOCK
            sub = self._blk(req, "blk.read", {"offset": val.blocks[i], "size": span})
            data = yield from self.forward(sub, x)
            out.extend(data)
            i = j + 1
        return bytes(out[: val.size])

    def _remove(self, key: str, x: ExecContext):
        val = self.table.pop(key, None)
        if val is None:
            raise FsError("ENOENT", f"key {key!r}")
        self.log.append(x.worker_id, mdlog.UNLINK, val.ino)
        self._free_value(val, x)
        return None

    def _free_value(self, val: _Value, x: ExecContext) -> None:
        for off in val.blocks:
            self.allocator.free(off // BLOCK, x.worker_id)

    # ------------------------------------------------------------------
    def est_processing_time(self, req: LabRequest) -> int:
        size = len(req.payload.get("value", b""))
        return self.ctx.cost.labkvs_op_ns + self.ctx.cost.copy_ns(size)

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, LabKvs):
            self.allocator = old.allocator
            self.table = old.table
            self.log = old.log
            self._ino = old._ino

    def on_snapshot(self) -> dict:
        """Durable state: log + allocator (the key table replays from the
        log, exactly as :meth:`state_repair` does after a crash)."""
        state = super().on_snapshot()
        state["log"] = self.log.export_state()
        state["allocator"] = self.allocator.export_state()
        return state

    def on_restore(self, state: dict) -> None:
        super().on_restore(state)
        self.log.install_state(state["log"])
        self.allocator.install_state(state["allocator"])
        self.state_repair()
        max_ino = 0
        for rec in self.log.merged():
            max_ino = max(max_ino, rec.ino)
        self._ino = itertools.count(max_ino + 1)

    def state_repair(self) -> None:
        """Rebuild the key table from the metadata log after a crash."""
        replayed = mdlog.replay(self.log)
        table: dict[str, _Value] = {}
        for ino, rec in replayed.items():
            blocks = [rec["blocks"][i] for i in sorted(rec["blocks"])]
            table[rec["path"]] = _Value(ino=ino, size=rec["size"], blocks=blocks)
        self.table = table


class LabKvsV2(LabKvs):
    """The "next release" of LabKVS for live-upgrade experiments (E2).

    Functionally identical — the point is the state transfer: hot-swap
    moves the allocator, key table, log and ino counter over while
    in-flight requests keep completing (``state_update`` in the base
    class does the move; ``generation`` proves the new code is running).
    """

    generation = 2
