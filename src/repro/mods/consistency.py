"""Tunable consistency LabMod (the paper's "configurable consistency").

Section III-B: LabStacks can impose semantics dynamically; one of the
shipped LabMods provides "tunable consistency guarantees".  This module
implements three policies over the block stream:

- ``strict``   — every write is made durable immediately: a ``blk.flush``
  is issued downstream after each ``blk.write`` (write-through +
  device-flush; what a database WAL would want).
- ``standard`` — pass-through: writes go downstream unmodified; only
  explicit ``blk.flush`` requests (fs.fsync) flush (the default POSIX
  contract).
- ``relaxed``  — flushes are absorbed: ``blk.flush`` is acknowledged
  without touching the device (the "not always required" guarantees the
  paper argues end-users should be able to trade away).

Because it is just a LabMod, the guarantee can be hot-swapped at runtime
(dynamic semantics imposition) — see ``state_update``.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..core.requests import LabRequest
from ..errors import LabStorError

__all__ = ["ConsistencyMod", "POLICIES"]

POLICIES = ("strict", "standard", "relaxed")


class ConsistencyMod(LabMod):
    mod_type = "consistency"
    accepts = ("blk.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.policy = ctx.attrs.get("policy", "standard")
        if self.policy not in POLICIES:
            raise LabStorError(f"{uuid}: policy must be one of {POLICIES}")
        self.flushes_issued = 0
        self.flushes_absorbed = 0

    def set_policy(self, policy: str) -> None:
        """Retune the guarantee live (dynamic semantics imposition)."""
        if policy not in POLICIES:
            raise LabStorError(f"policy must be one of {POLICIES}")
        self.policy = policy

    def handle(self, req: LabRequest, x: ExecContext):
        yield from x.work(120, span="consistency")  # policy check
        self.processed += 1
        if req.op == "blk.flush" and self.policy == "relaxed":
            self.flushes_absorbed += 1
            return None
        result = yield from self.forward(req, x)
        if req.op == "blk.write" and self.policy == "strict":
            flush = LabRequest(
                op="blk.flush",
                payload={"offset": 0, "size": 0,
                         "origin_core": req.payload.get("origin_core", 0)},
                stack_id=req.stack_id,
                client_pid=req.client_pid,
            )
            self.flushes_issued += 1
            yield from self.forward(flush, x)
        return result

    def est_processing_time(self, req: LabRequest) -> int:
        return 120

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, ConsistencyMod):
            self.policy = old.policy
            self.flushes_issued = old.flushes_issued
            self.flushes_absorbed = old.flushes_absorbed
