"""IoStatsMod: in-stack performance counters.

Section III-C: "Workers also periodically monitor LabMods to get
performance metrics, useful to work orchestration policies."  This LabMod
is the measurement point: it records per-op-type latency and throughput
of everything downstream of it, and exposes a *learned*
``EstProcessingTime`` (EWMA of observed downstream latency per op kind)
that the Work Orchestrator's queue classifier can consume instead of
static estimates.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..core.requests import LabRequest
from ..sim import LatencyRecorder

__all__ = ["IoStatsMod"]


class IoStatsMod(LabMod):
    mod_type = "telemetry"
    accepts = ("*",)
    emits = ("fs.", "kvs.", "blk.", "msg.")

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.per_op: dict[str, LatencyRecorder] = {}
        self.bytes_moved = 0
        self._ewma: dict[str, float] = {}
        self.alpha = float(ctx.attrs.get("alpha", 0.2))

    def handle(self, req: LabRequest, x: ExecContext):
        yield from x.work(90, span="telemetry")  # counter update
        start = self.ctx.env.now
        self.processed += 1
        result = yield from self.forward(req, x)
        elapsed = self.ctx.env.now - start
        rec = self.per_op.get(req.op)
        if rec is None:
            rec = self.per_op[req.op] = LatencyRecorder(reservoir=4096)
        rec.add(elapsed)
        prev = self._ewma.get(req.op, float(elapsed))
        self._ewma[req.op] = (1 - self.alpha) * prev + self.alpha * elapsed
        size = req.payload.get("size", len(req.payload.get("data", b"")))
        self.bytes_moved += size
        return result

    # -- the performance-counter APIs ------------------------------------
    def est_processing_time(self, req: LabRequest) -> int:
        """Learned estimate: EWMA of observed downstream latency."""
        est = self._ewma.get(req.op)
        if est is None:
            return 1000
        return int(est)

    def est_total_time(self, req: LabRequest) -> int:
        return self.est_processing_time(req)

    def report(self) -> dict[str, dict]:
        """Snapshot for monitoring/orchestration."""
        return {
            op: {**rec.summary(), "ewma_ns": self._ewma.get(op, 0.0)}
            for op, rec in self.per_op.items()
        }

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, IoStatsMod):
            self.per_op = old.per_op
            self._ewma = old._ewma
            self.bytes_moved = old.bytes_moved
