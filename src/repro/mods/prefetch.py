"""Prefetcher LabMod: predictive read-ahead as a pluggable stack stage.

The paper (Driver LabMods discussion): "time series analysis can be used
to predict characteristics of future I/O requests to reduce seek
penalties on HDDs or decide which pages to evict from the page cache."
This LabMod is the simplest useful instance of that idea: it watches the
``blk.read`` stream for sequential runs and, once a stream looks
sequential, asynchronously reads ahead ``window`` bytes so the cache
below it is warm before the application asks.

Place it *above* a cache LabMod (``... -> PrefetchMod -> LruCacheMod ->
driver``): the prefetch reads flow through the cache, which retains them.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext
from ..core.requests import LabRequest

__all__ = ["PrefetchMod"]


class PrefetchMod(LabMod):
    mod_type = "prefetch"
    accepts = ("blk.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        #: bytes to read ahead once a sequential stream is detected
        self.window = int(ctx.attrs.get("window", 128 * 1024))
        #: consecutive sequential reads before prefetching starts
        self.trigger = int(ctx.attrs.get("trigger", 2))
        self._next_expected: int | None = None
        self._run_length = 0
        self._inflight: set[int] = set()   # offsets being prefetched
        self.prefetches = 0
        self.prefetched_bytes = 0

    def _observe(self, offset: int, size: int) -> bool:
        """Update the stream detector; True if the stream is sequential."""
        sequential = self._next_expected is not None and offset == self._next_expected
        self._run_length = self._run_length + 1 if sequential else 0
        self._next_expected = offset + size
        return self._run_length >= self.trigger

    def _prefetch_proc(self, req: LabRequest, offset: int, size: int):
        """Background read-ahead: off the worker core, fire and forget."""
        x = ExecContext(self.ctx.env, self.ctx.tracer, core_resource=None)
        sub = LabRequest(
            op="blk.read",
            payload={"offset": offset, "size": size,
                     "origin_core": req.payload.get("origin_core", 0)},
            stack_id=req.stack_id,
            client_pid=req.client_pid,
        )
        try:
            yield from self.forward(sub, x)
        finally:
            self._inflight.discard(offset)

    def handle(self, req: LabRequest, x: ExecContext):
        yield from x.work(200, span="prefetch")  # stream-table update
        self.processed += 1
        if req.op != "blk.read":
            return (yield from self.forward(req, x))
        offset = req.payload.get("offset", 0)
        size = req.payload.get("size", 0)
        hot = self._observe(offset, size)
        result = yield from self.forward(req, x)
        if hot:
            ahead = offset + size
            if ahead not in self._inflight:
                self._inflight.add(ahead)
                self.prefetches += 1
                self.prefetched_bytes += self.window
                self.ctx.env.process(
                    self._prefetch_proc(req, ahead, self.window),
                    name=f"{self.uuid}.prefetch",
                )
        return result

    def est_processing_time(self, req: LabRequest) -> int:
        return 200

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, PrefetchMod):
            self.window = old.window
            self.trigger = old.trigger
            self.prefetches = old.prefetches
            self.prefetched_bytes = old.prefetched_bytes

    def state_repair(self) -> None:
        # stream state is advisory; start cold after a crash
        self._next_expected = None
        self._run_length = 0
        self._inflight.clear()
