"""No-Op I/O scheduler LabMod.

Keys a request to a hardware queue based on the core (here: client pid)
it originated from, then forwards — exactly the "only keys a request to a
hardware queue" behaviour the paper prices at ~5% of a 4KB write.
"""

from __future__ import annotations

from ..core.labmod import ExecContext, LabMod, ModContext

__all__ = ["NoOpSchedMod"]


class NoOpSchedMod(LabMod):
    mod_type = "sched"
    accepts = ("blk.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.nqueues = int(ctx.attrs.get("nqueues", 8))

    def handle(self, req, x: ExecContext):
        yield from x.work(self.ctx.cost.noop_sched_ns, span="sched")
        origin = req.payload.get("origin_core")
        if origin is None:
            origin = req.client_pid or 0
        req.payload["hctx"] = origin % self.nqueues
        self.processed += 1
        return (yield from self.forward(req, x))

    def est_processing_time(self, req) -> int:
        return self.ctx.cost.noop_sched_ns
