"""GenericKVS: the client-side key-value connector (a Generic LabMod).

Routes put/get/remove to the KVS LabStack owning the key's namespace —
the non-file interface the paper uses to untether I/O systems from the
POSIX abstraction (one syscall-equivalent per op instead of
open-modify-close).
"""

from __future__ import annotations

from ..core.client import LabStorClient
from ..core.requests import LabRequest

__all__ = ["GenericKVS"]


class GenericKVS:
    """``retry`` (a :class:`repro.faults.RetryPolicy`) adds bounded,
    deterministic retries with backoff around every routed request."""

    def __init__(self, client: LabStorClient, mount: str, retry=None) -> None:
        self.client = client
        self.env = client.env
        self.cost = client.runtime.cost
        self.mount = mount
        self.retry = retry
        self.intercepted = 0

    def _stack(self):
        stack, _ = self.client.runtime.namespace.resolve(self.mount)
        return stack

    def _intercept(self):
        self.intercepted += 1
        yield self.env.timeout(self.cost.generic_fs_ns)

    def _call(self, op: str, payload: dict):
        """One routed request; fresh LabRequest per retry attempt."""
        retry = self.retry
        if retry is None:
            return (yield from self.client.call(self._stack(), LabRequest(op=op, payload=payload)))

        def attempt(_n):
            return self.client.call(
                self._stack(),
                LabRequest(op=op, payload=dict(payload)),
                timeout_ns=retry.timeout_ns,
            )

        return (yield from retry.run(self.env, attempt))

    def put(self, key: str, value: bytes):
        yield from self._intercept()
        return (yield from self._call("kvs.put", {"key": key, "value": value}))

    def get(self, key: str):
        yield from self._intercept()
        return (yield from self._call("kvs.get", {"key": key}))

    def remove(self, key: str):
        yield from self._intercept()
        return (yield from self._call("kvs.remove", {"key": key}))

    def exists(self, key: str):
        yield from self._intercept()
        return (yield from self._call("kvs.exists", {"key": key}))
