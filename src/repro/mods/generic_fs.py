"""GenericFS: the client-side POSIX connector (a Generic LabMod).

Loaded into clients via LD_PRELOAD in the paper, GenericFS intercepts
POSIX calls, allocates file descriptors, resolves paths through the
LabStack Namespace (exact match, then parent prefixes, as in Fig 3), and
routes requests to the filesystem implementation of the owning stack —
the VFS-like state that is *common among I/O systems of a type*.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.client import LabStorClient
from ..core.requests import LabRequest
from ..errors import LabStorError

__all__ = ["GenericFS"]


@dataclass
class _FdEntry:
    stack_id: int
    ino: int
    pos: int
    path: str


class GenericFS:
    """POSIX facade over mounted filesystem LabStacks.

    ``retry`` (a :class:`repro.faults.RetryPolicy`) makes every routed
    request resilient: transient failures — injected media errors, queue
    backpressure, worker crashes, op timeouts — are retried with
    deterministic backoff before surfacing to the application.
    """

    def __init__(self, client: LabStorClient, retry=None) -> None:
        self.client = client
        self.env = client.env
        self.cost = client.runtime.cost
        self.retry = retry
        self._fds: dict[int, _FdEntry] = {}
        self.intercepted = 0

    # -- plumbing ---------------------------------------------------------
    def _intercept(self):
        self.intercepted += 1
        yield self.env.timeout(self.cost.generic_fs_ns)

    def _call(self, stack, op: str, payload: dict):
        """Route one request through the client, applying the retry
        policy.  Each attempt builds a fresh LabRequest: an abandoned
        (timed-out) request id must never be reused."""
        retry = self.retry
        if retry is None:
            return (yield from self.client.call(stack, LabRequest(op=op, payload=payload)))

        def attempt(_n):
            return self.client.call(
                stack,
                LabRequest(op=op, payload=dict(payload)),
                timeout_ns=retry.timeout_ns,
            )

        return (yield from retry.run(self.env, attempt))

    def _entry(self, fd: int) -> _FdEntry:
        try:
            return self._fds[fd]
        except KeyError:
            raise LabStorError(f"GenericFS: unknown fd {fd}") from None

    def _stack_for(self, fd: int):
        return self.client.runtime.namespace.get_by_id(self._entry(fd).stack_id)

    # -- the POSIX surface (process generators) ------------------------------
    def open(self, path: str, create: bool = False):
        """Resolve, route fs.open, allocate a client-side fd."""
        yield from self._intercept()
        stack, remainder = self.client.runtime.namespace.resolve(path)
        ino = yield from self._call(stack, "fs.open", {"path": remainder, "create": create})
        fd = self.client.alloc_fd(stack.stack_id)
        self._fds[fd] = _FdEntry(stack_id=stack.stack_id, ino=ino, pos=0, path=remainder)
        return fd

    def creat(self, path: str):
        return (yield from self.open(path, create=True))

    def close(self, fd: int):
        yield from self._intercept()
        entry = self._fds.pop(fd, None)
        if entry is None:
            raise LabStorError(f"GenericFS: unknown fd {fd}")
        self.client.release_fd(fd)
        stack = self.client.runtime.namespace.get_by_id(entry.stack_id)
        yield from self._call(stack, "fs.close", {"ino": entry.ino})

    def write(self, fd: int, data: bytes, offset: int | None = None):
        yield from self._intercept()
        entry = self._entry(fd)
        pos = entry.pos if offset is None else offset
        stack = self._stack_for(fd)
        n = yield from self._call(
            stack, "fs.write", {"ino": entry.ino, "offset": pos, "data": data}
        )
        if offset is None:
            entry.pos = pos + n
        return n

    def read(self, fd: int, size: int, offset: int | None = None):
        yield from self._intercept()
        entry = self._entry(fd)
        pos = entry.pos if offset is None else offset
        stack = self._stack_for(fd)
        data = yield from self._call(
            stack, "fs.read", {"ino": entry.ino, "offset": pos, "size": size}
        )
        if offset is None:
            entry.pos = pos + len(data)
        return data

    def writev(self, fd: int, bufs: list, offset: int | None = None):
        """Vectored write: the buffers land at consecutive offsets and ride
        one batched submission (a single doorbell; see Client.submit_batch).

        Returns per-buffer byte counts in order.  Any failed constituent
        raises its error after the whole batch settles — batch-mates'
        writes are not rolled back (matching ``pwritev`` semantics where
        a short/failed vector leaves earlier ones durable).  Vectored ops
        bypass the retry policy: a partial batch retry would double-apply
        the already-persisted constituents.
        """
        yield from self._intercept()
        entry = self._entry(fd)
        pos = entry.pos if offset is None else offset
        stack = self._stack_for(fd)
        reqs = []
        at = pos
        for data in bufs:
            reqs.append(LabRequest(
                op="fs.write", payload={"ino": entry.ino, "offset": at, "data": data}
            ))
            at += len(data)
        comps = yield from self.client.submit_batch(stack, reqs)
        counts = []
        first_error = None
        for comp in comps:
            if comp.error is not None:
                if first_error is None:
                    first_error = comp.error
                counts.append(0)
            else:
                counts.append(comp.value)
        if first_error is not None:
            raise first_error
        if offset is None:
            entry.pos = pos + sum(counts)
        return counts

    def readv(self, fd: int, sizes: list, offset: int | None = None):
        """Vectored read of consecutive extents via one batched submission.
        Returns the per-extent byte strings in order; like :meth:`writev`,
        raises the first constituent error after the batch settles."""
        yield from self._intercept()
        entry = self._entry(fd)
        pos = entry.pos if offset is None else offset
        stack = self._stack_for(fd)
        reqs = []
        at = pos
        for size in sizes:
            reqs.append(LabRequest(
                op="fs.read", payload={"ino": entry.ino, "offset": at, "size": size}
            ))
            at += size
        comps = yield from self.client.submit_batch(stack, reqs)
        chunks = []
        first_error = None
        for comp in comps:
            if comp.error is not None:
                if first_error is None:
                    first_error = comp.error
                chunks.append(b"")
            else:
                chunks.append(comp.value)
        if first_error is not None:
            raise first_error
        if offset is None:
            entry.pos = pos + sum(len(c) for c in chunks)
        return chunks

    def seek(self, fd: int, pos: int):
        yield from self._intercept()
        self._entry(fd).pos = pos

    def fsync(self, fd: int):
        yield from self._intercept()
        entry = self._entry(fd)
        yield from self._call(self._stack_for(fd), "fs.fsync", {"ino": entry.ino})

    def unlink(self, path: str):
        yield from self._intercept()
        stack, remainder = self.client.runtime.namespace.resolve(path)
        yield from self._call(stack, "fs.unlink", {"path": remainder})

    def rename(self, path: str, new_path: str):
        yield from self._intercept()
        stack, remainder = self.client.runtime.namespace.resolve(path)
        _stack2, new_remainder = self.client.runtime.namespace.resolve(new_path)
        yield from self._call(
            stack, "fs.rename", {"path": remainder, "new_path": new_remainder}
        )

    def stat(self, path: str):
        yield from self._intercept()
        stack, remainder = self.client.runtime.namespace.resolve(path)
        return (yield from self._call(stack, "fs.stat", {"path": remainder}))

    def mkdir(self, path: str):
        yield from self._intercept()
        stack, remainder = self.client.runtime.namespace.resolve(path)
        return (yield from self._call(stack, "fs.mkdir", {"path": remainder}))

    def readdir(self, path: str):
        yield from self._intercept()
        stack, remainder = self.client.runtime.namespace.resolve(path)
        return (yield from self._call(stack, "fs.readdir", {"path": remainder}))

    def rmdir(self, path: str):
        yield from self._intercept()
        stack, remainder = self.client.runtime.namespace.resolve(path)
        yield from self._call(stack, "fs.rmdir", {"path": remainder})

    # convenience ----------------------------------------------------------
    def write_file(self, path: str, data: bytes):
        fd = yield from self.open(path, create=True)
        yield from self.write(fd, data, offset=0)
        yield from self.close(fd)

    def read_file(self, path: str):
        fd = yield from self.open(path)
        st = yield from self.stat(path)
        data = yield from self.read(fd, st["size"], offset=0)
        yield from self.close(fd)
        return data
