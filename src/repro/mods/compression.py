"""Compression LabMod: transparent active-storage compression.

Payloads small enough to compress for real go through :mod:`zlib`
(so tests can verify round-trips); large payloads use the calibrated
throughput model (the paper's C-LabStack compresses a 32MB request in
~20ms, i.e. ~0.6 ns/byte) and a synthetic ratio.  Reads decompress.
"""

from __future__ import annotations

import zlib

from ..core.labmod import ExecContext, LabMod, ModContext

__all__ = ["CompressionMod"]

_REAL_LIMIT = 256 * 1024  # compress for real below this size

_MAGIC = b"LZRP"  # marks really-compressed payloads


class CompressionMod(LabMod):
    mod_type = "compression"
    accepts = ("blk.",)
    emits = ("blk.",)

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        super().__init__(uuid, ctx)
        self.level = int(ctx.attrs.get("level", 6))
        #: assumed compressibility for the synthetic (large-payload) path
        self.synthetic_ratio = float(ctx.attrs.get("ratio", 0.5))
        self.bytes_in = 0
        self.bytes_out = 0

    def _cost(self, size: int) -> int:
        return max(1000, round(self.ctx.cost.compress_ns_per_byte * size))

    def handle(self, req, x: ExecContext):
        p = req.payload
        self.processed += 1
        if req.op == "blk.write":
            data = p["data"]
            yield from x.work(self._cost(len(data)), span="compression")
            self.bytes_in += len(data)
            if len(data) <= _REAL_LIMIT:
                comp = _MAGIC + zlib.compress(data, self.level)
                if len(comp) >= len(data):
                    comp = data  # incompressible: store raw
            else:
                comp = data[: max(1, int(len(data) * self.synthetic_ratio))]
            self.bytes_out += len(comp)
            p["data"] = comp
            p["size"] = len(comp)
            p["orig_size"] = len(data)
            return (yield from self.forward(req, x))

        if req.op == "blk.read":
            result = yield from self.forward(req, x)
            if result is not None:
                yield from x.work(self._cost(len(result)) // 3, span="compression")
                if result[:4] == _MAGIC:
                    result = zlib.decompress(bytes(result[4:]))
            return result

        return (yield from self.forward(req, x))

    def est_processing_time(self, req) -> int:
        size = req.payload.get("size", len(req.payload.get("data", b"")))
        return self._cost(size)

    def state_update(self, old: "LabMod") -> None:
        super().state_update(old)
        if isinstance(old, CompressionMod):
            self.bytes_in = old.bytes_in
            self.bytes_out = old.bytes_out
