"""Filebench personalities: varmail, webserver, webproxy, fileserver.

Faithful-in-shape ports of the four default Filebench workloads the
paper's Fig 9(c) runs, parameterized to simulation scale.  Each
personality is an operation mix over a pre-created fileset, driven
through the uniform FsApi adapter so the same code measures ext4/xfs/f2fs
and every LabStor variant.

Default mixes (from the filebench-1.4.9.1 definitions, scaled):

- **varmail**: mail-server — create+append+fsync, read+append+fsync,
  whole-file read, delete; 16KB mean I/O.
- **webserver**: open+read whole file (x10) then append 16KB to a log.
- **webproxy**: create+write, delete, then 5 whole-file reads.
- **fileserver**: create+write 128KB appends, whole-file read, delete;
  1MB files — bandwidth-bound (the case where LabStor gains little).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import Environment
from ..units import KiB, MiB, sec

__all__ = ["FilebenchResult", "run_personality", "PERSONALITIES"]


@dataclass
class PersonalityDef:
    name: str
    nfiles: int
    mean_file_size: int
    io_size: int
    ops_per_loop: int  # accounting: filebench counts each op


@dataclass
class FilebenchResult:
    name: str
    ops: int
    elapsed_ns: int
    bytes_moved: int

    @property
    def ops_per_sec(self) -> float:
        return self.ops / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0

    @property
    def throughput_MBps(self) -> float:
        return self.bytes_moved / 1e6 / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0


PERSONALITIES = {
    "varmail": PersonalityDef("varmail", nfiles=64, mean_file_size=16 * KiB,
                              io_size=16 * KiB, ops_per_loop=16),
    "webserver": PersonalityDef("webserver", nfiles=64, mean_file_size=16 * KiB,
                                io_size=16 * KiB, ops_per_loop=21),
    "webproxy": PersonalityDef("webproxy", nfiles=64, mean_file_size=16 * KiB,
                               io_size=16 * KiB, ops_per_loop=13),
    "fileserver": PersonalityDef("fileserver", nfiles=16, mean_file_size=1 * MiB,
                                 io_size=128 * KiB, ops_per_loop=10),
}


def _payload(size: int, rng: np.random.Generator) -> bytes:
    return bytes(rng.integers(0, 64, size, dtype=np.uint8) + 32)


def _prefill(env: Environment, api, pdef: PersonalityDef, tid: int, rng) -> list[str]:
    files = []

    def fill():
        for i in range(pdef.nfiles):
            path = f"/fb{tid}/p{i}"
            fd = yield from api.open(path, create=True)
            yield from api.write(fd, _payload(pdef.mean_file_size, rng), offset=0)
            yield from api.close(fd)
            files.append(path)

    env.run(env.process(fill()))
    return files


def _varmail_loop(api, pdef, tid, i, files, rng, stats):
    # delete + create/append/fsync + read/append/fsync + whole read
    victim = files[i % len(files)]
    yield from api.unlink(victim)
    stats["ops"] += 1
    fd = yield from api.open(victim, create=True)
    data = _payload(pdef.io_size, rng)
    yield from api.write(fd, data)
    yield from api.fsync(fd)
    yield from api.close(fd)
    stats["ops"] += 4
    stats["bytes"] += len(data)
    fd = yield from api.open(victim)
    got = yield from api.read(fd, pdef.io_size, offset=0)
    yield from api.write(fd, _payload(pdef.io_size, rng))
    yield from api.fsync(fd)
    yield from api.close(fd)
    stats["ops"] += 5
    stats["bytes"] += len(got) + pdef.io_size
    fd = yield from api.open(victim)
    got = yield from api.read(fd, 2 * pdef.io_size, offset=0)
    yield from api.close(fd)
    stats["ops"] += 3
    stats["bytes"] += len(got)


def _webserver_loop(api, pdef, tid, i, files, rng, stats):
    for k in range(10):
        path = files[(i * 10 + k) % len(files)]
        fd = yield from api.open(path)
        got = yield from api.read(fd, pdef.mean_file_size, offset=0)
        yield from api.close(fd)
        stats["ops"] += 2
        stats["bytes"] += len(got)
    logfd = yield from api.open(f"/fb{tid}/weblog", create=True)
    data = _payload(pdef.io_size, rng)
    yield from api.write(logfd, data)
    yield from api.close(logfd)
    stats["ops"] += 1
    stats["bytes"] += len(data)


def _webproxy_loop(api, pdef, tid, i, files, rng, stats):
    victim = files[i % len(files)]
    yield from api.unlink(victim)
    fd = yield from api.open(victim, create=True)
    data = _payload(pdef.io_size, rng)
    yield from api.write(fd, data)
    yield from api.close(fd)
    stats["ops"] += 5
    stats["bytes"] += len(data)
    for k in range(5):
        path = files[(i * 5 + k) % len(files)]
        fd = yield from api.open(path)
        got = yield from api.read(fd, pdef.mean_file_size, offset=0)
        yield from api.close(fd)
        stats["ops"] += 2
        stats["bytes"] += len(got)


def _fileserver_loop(api, pdef, tid, i, files, rng, stats):
    path = f"/fb{tid}/new{i}"
    fd = yield from api.open(path, create=True)
    written = 0
    while written < pdef.mean_file_size:
        data = _payload(pdef.io_size, rng)
        yield from api.write(fd, data)
        written += len(data)
        stats["ops"] += 1
    yield from api.close(fd)
    stats["bytes"] += written
    victim = files[i % len(files)]
    fd = yield from api.open(victim)
    got = yield from api.read(fd, pdef.mean_file_size, offset=0)
    yield from api.close(fd)
    stats["ops"] += 4
    stats["bytes"] += len(got)
    yield from api.unlink(path)
    stats["ops"] += 1


_LOOPS = {
    "varmail": _varmail_loop,
    "webserver": _webserver_loop,
    "webproxy": _webproxy_loop,
    "fileserver": _fileserver_loop,
}


def run_personality(
    env: Environment,
    api_factory,
    name: str,
    *,
    nthreads: int = 4,
    loops: int = 8,
    seed: int = 0,
) -> FilebenchResult:
    """Run a personality; ``api_factory(tid)`` builds each thread's FsApi."""
    pdef = PERSONALITIES[name]
    loop_fn = _LOOPS[name]
    rng = np.random.default_rng(seed)
    apis = [api_factory(t) for t in range(nthreads)]
    filesets = [_prefill(env, api, pdef, t, rng) for t, api in enumerate(apis)]
    stats = {"ops": 0, "bytes": 0}

    def worker(tid, api, files):
        thread_rng = np.random.default_rng(seed * 7919 + tid)
        for i in range(loops):
            yield from loop_fn(api, pdef, tid, i, files, thread_rng, stats)

    start = env.now
    procs = [env.process(worker(t, api, fs)) for t, (api, fs) in enumerate(zip(apis, filesets))]
    env.run(env.all_of(procs))
    return FilebenchResult(name=name, ops=stats["ops"], elapsed_ns=env.now - start,
                           bytes_moved=stats["bytes"])
