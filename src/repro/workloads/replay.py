"""Record and replay file-API traces.

A downstream user evaluating a LabStack wants to drive it with *their*
application's I/O, not a synthetic mix.  This module provides:

- :class:`RecordingApi` — wraps any FsApi; every operation is captured as
  a :class:`TraceOp` while passing through unchanged.
- ``save_trace`` / ``load_trace`` — JSON-lines serialization (payloads are
  stored as sizes; replay regenerates deterministic bytes).
- ``replay_trace`` — drives any FsApi with a recorded trace, preserving
  per-thread ordering, and reports latency statistics.

Recorded traces are portable across backends: record against ext4, replay
against a LabStack (or vice versa) to compare stacks on identical op
streams.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..sim import Environment, LatencyRecorder
from ..units import sec

__all__ = ["TraceOp", "RecordingApi", "save_trace", "load_trace", "replay_trace", "ReplayResult"]


@dataclass(frozen=True)
class TraceOp:
    kind: str                 # open/create/close/read/write/seek/fsync/unlink/stat/mkdir
    tid: int = 0              # logical thread: replay preserves per-tid order
    path: str | None = None
    handle: int | None = None  # logical fd id (trace-local)
    offset: int | None = None
    size: int = 0
    create: bool = False

    def to_json(self) -> str:
        # drop only fields at their dataclass defaults that from_json restores
        d = {k: v for k, v in self.__dict__.items() if v is not None}
        if not d.get("create"):
            d.pop("create", None)
        if d.get("size") == 0:
            d.pop("size", None)
        return json.dumps(d, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceOp":
        return cls(**json.loads(line))


class RecordingApi:
    """FsApi wrapper capturing every call into ``self.ops``."""

    def __init__(self, inner, tid: int = 0) -> None:
        self.inner = inner
        self.tid = tid
        self.ops: list[TraceOp] = []
        self._fd_ids: dict[Any, int] = {}
        self._next_handle = 0

    def _handle_for(self, fd) -> int:
        if fd not in self._fd_ids:
            self._fd_ids[fd] = self._next_handle
            self._next_handle += 1
        return self._fd_ids[fd]

    def open(self, path: str, create: bool = False):
        fd = yield from self.inner.open(path, create=create)
        self.ops.append(TraceOp(kind="open", tid=self.tid, path=path,
                                handle=self._handle_for(fd), create=create))
        return fd

    def close(self, fd):
        self.ops.append(TraceOp(kind="close", tid=self.tid, handle=self._handle_for(fd)))
        yield from self.inner.close(fd)

    def write(self, fd, data: bytes, offset: int | None = None):
        self.ops.append(TraceOp(kind="write", tid=self.tid, handle=self._handle_for(fd),
                                offset=offset, size=len(data)))
        return (yield from self.inner.write(fd, data, offset=offset))

    def read(self, fd, size: int, offset: int | None = None):
        self.ops.append(TraceOp(kind="read", tid=self.tid, handle=self._handle_for(fd),
                                offset=offset, size=size))
        return (yield from self.inner.read(fd, size, offset=offset))

    def seek(self, fd, pos: int):
        self.ops.append(TraceOp(kind="seek", tid=self.tid, handle=self._handle_for(fd),
                                offset=pos))
        yield from self.inner.seek(fd, pos)

    def fsync(self, fd):
        self.ops.append(TraceOp(kind="fsync", tid=self.tid, handle=self._handle_for(fd)))
        yield from self.inner.fsync(fd)

    def unlink(self, path: str):
        self.ops.append(TraceOp(kind="unlink", tid=self.tid, path=path))
        yield from self.inner.unlink(path)

    def stat(self, path: str):
        self.ops.append(TraceOp(kind="stat", tid=self.tid, path=path))
        return (yield from self.inner.stat(path))


def save_trace(ops: list[TraceOp]) -> str:
    """Serialize to JSON lines."""
    return "\n".join(op.to_json() for op in ops)


def load_trace(text: str) -> list[TraceOp]:
    return [TraceOp.from_json(line) for line in text.splitlines() if line.strip()]


@dataclass
class ReplayResult:
    ops: int
    elapsed_ns: int
    latency: LatencyRecorder = field(default_factory=lambda: LatencyRecorder(reservoir=20_000))
    errors: int = 0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0


def replay_trace(env: Environment, api_factory, ops: list[TraceOp],
                 *, seed: int = 0, strict: bool = True) -> ReplayResult:
    """Replay a trace; per-tid op order is preserved, tids run concurrently.

    ``api_factory(tid)`` builds the FsApi each logical thread drives.
    With ``strict=False`` individual op failures (e.g. replaying against a
    tree with different contents) are counted instead of raised.
    """
    by_tid: dict[int, list[TraceOp]] = {}
    for op in ops:
        by_tid.setdefault(op.tid, []).append(op)
    result = ReplayResult(ops=0, elapsed_ns=0)
    rng = np.random.default_rng(seed)
    payload_pool = bytes(rng.integers(32, 127, 1 << 20, dtype=np.uint8))

    def payload(size: int) -> bytes:
        if size <= len(payload_pool):
            return payload_pool[:size]
        return (payload_pool * (size // len(payload_pool) + 1))[:size]

    def thread(tid: int, tops: list[TraceOp]):
        api = api_factory(tid)
        fds: dict[int, Any] = {}
        for op in tops:
            start = env.now
            try:
                if op.kind == "open":
                    fds[op.handle] = yield from api.open(op.path, create=op.create)
                elif op.kind == "close":
                    yield from api.close(fds.pop(op.handle))
                elif op.kind == "write":
                    yield from api.write(fds[op.handle], payload(op.size), offset=op.offset)
                elif op.kind == "read":
                    yield from api.read(fds[op.handle], op.size, offset=op.offset)
                elif op.kind == "seek":
                    yield from api.seek(fds[op.handle], op.offset or 0)
                elif op.kind == "fsync":
                    yield from api.fsync(fds[op.handle])
                elif op.kind == "unlink":
                    yield from api.unlink(op.path)
                elif op.kind == "stat":
                    yield from api.stat(op.path)
                else:
                    raise ValueError(f"unknown trace op kind {op.kind!r}")
            except ValueError:
                raise
            except Exception:
                if strict:
                    raise
                result.errors += 1
                continue
            result.latency.add(env.now - start)
            result.ops += 1

    start = env.now
    procs = [env.process(thread(tid, tops)) for tid, tops in sorted(by_tid.items())]
    env.run(env.all_of(procs))
    result.elapsed_ns = env.now - start
    return result
