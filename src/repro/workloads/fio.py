"""FIO-style synthetic I/O workload generator.

Drives any *block engine* — a kernel I/O interface (posix / libaio /
io_uring / posix_aio) against a raw device file, or a LabStor LabStack —
with the classic FIO knobs: block size, read/write mix, random/sequential
offsets, I/O depth, and job (thread) count.  Reports IOPS, bandwidth and
latency percentiles, matching the measurements of the paper's Fig 6 /
Fig 5(a) / Fig 8 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..core.client import LabStorClient
from ..core.labstack import LabStack
from ..core.requests import LabRequest
from ..devices.base import IoOp
from ..kernel.interfaces import IoInterface
from ..sim import Environment, LatencyRecorder
from ..units import sec

__all__ = ["BlockEngine", "RawDeviceEngine", "LabStackEngine", "FioJob", "FioResult", "run_fio"]


class BlockEngine(Protocol):
    """Anything that can service one block I/O as a process generator."""

    def submit(self, op: IoOp, offset: int, size: int, data: bytes | None, core: int):
        ...

    @property
    def capacity_bytes(self) -> int:
        ...


class RawDeviceEngine:
    """O_DIRECT to a device file through a kernel interface."""

    def __init__(self, interface: IoInterface) -> None:
        self.interface = interface

    @property
    def capacity_bytes(self) -> int:
        return self.interface.device.profile.capacity_bytes

    def submit(self, op: IoOp, offset: int, size: int, data: bytes | None, core: int):
        return self.interface.submit(op, offset, size, data, core=core)


class LabStackEngine:
    """Block I/O through a mounted LabStack (driver-only or full stacks)."""

    def __init__(self, client: LabStorClient, stack: LabStack, device) -> None:
        self.client = client
        self.stack = stack
        self.device = device

    @property
    def capacity_bytes(self) -> int:
        return self.device.profile.capacity_bytes

    def submit(self, op: IoOp, offset: int, size: int, data: bytes | None, core: int):
        payload = {"offset": offset, "size": size, "origin_core": core}
        if data is not None:
            payload["data"] = data
        req = LabRequest(op=f"blk.{op.value}", payload=payload)
        return self.client.call(self.stack, req)


@dataclass
class FioJob:
    """One fio job definition (the paper's per-thread workload)."""

    rw: str = "randwrite"        # randwrite | randread | write | read
    bs: int = 4096               # block size
    nops: int = 1000             # I/Os per job
    iodepth: int = 1
    core: int = 0                # originating core (NoOp scheduler key)
    region_offset: int = 0       # restrict I/O to [offset, offset+region_size)
    region_size: int | None = None

    def offsets(self, capacity: int, rng: np.random.Generator):
        region = self.region_size or (capacity - self.region_offset)
        nblocks = max(1, region // self.bs)
        if self.rw.startswith("rand"):
            idx = rng.integers(0, nblocks, size=self.nops)
        else:
            idx = np.arange(self.nops) % nblocks
        return self.region_offset + idx * self.bs

    @property
    def is_write(self) -> bool:
        return "write" in self.rw


@dataclass
class FioResult:
    ops: int = 0
    bytes_moved: int = 0
    elapsed_ns: int = 0
    latency: LatencyRecorder = field(default_factory=lambda: LatencyRecorder(reservoir=20_000))

    @property
    def iops(self) -> float:
        return self.ops / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0

    @property
    def bandwidth(self) -> float:
        """bytes/second"""
        return self.bytes_moved / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0

    def summary(self) -> dict:
        lat = self.latency.summary()
        return {
            "iops": self.iops,
            "bw_MBps": self.bandwidth / 1e6,
            "lat_mean_us": lat["mean"] / 1000,
            "lat_p99_us": lat["p99"] / 1000,
            "ops": self.ops,
        }


def one(env: Environment, gen, start: int, result: "FioResult", bs: int):
    """Wrap one engine.submit generator to record completion latency.

    Named ``one`` (not ``_one_io``): the generator's __name__ becomes the
    process name, which the audit digest hashes via ``san.step`` — renaming
    it would shift every recorded digest.
    """
    yield from gen
    result.latency.add(env._now - start)
    result.ops += 1
    result.bytes_moved += bs


def _job_proc(env: Environment, engine: BlockEngine, job: FioJob,
              rng: np.random.Generator, result: FioResult, payload: bytes):
    # tolist() up front: iterating the ndarray itself boxes one np.int64
    # per element on the hot submit loop
    offsets = job.offsets(engine.capacity_bytes, rng).tolist()
    op = IoOp.WRITE if job.is_write else IoOp.READ
    bs = job.bs
    data = payload if job.is_write else None
    core = job.core
    iodepth = job.iodepth
    inflight: list = []
    for off in offsets:
        gen = engine.submit(op, off, bs, data, core)
        inflight.append(env.process(one(env, gen, env._now, result, bs)))
        if len(inflight) >= iodepth:
            # qd semantics: wait for the oldest outstanding I/O.  Popped
            # inline so this frame drops its reference before the yield —
            # a finished process can then go back to the free list.
            yield inflight.pop(0)
    while inflight:
        yield inflight.pop(0)


def run_fio(env: Environment, engine: BlockEngine, jobs: list[FioJob],
            seed: int = 0) -> FioResult:
    """Run all jobs to completion; returns the aggregate result.

    The caller drives the environment: this schedules the job processes
    and runs the env until they finish.
    """
    result = FioResult()
    rng = np.random.default_rng(seed)
    start = env.now
    procs = []
    for i, job in enumerate(jobs):
        payload = ((np.arange(job.bs) + i) % 251).astype(np.uint8).tobytes() if job.is_write else b""
        job_rng = np.random.default_rng(rng.integers(0, 2**63))
        procs.append(env.process(_job_proc(env, engine, job, job_rng, result, payload)))
    env.run(env.all_of(procs))
    result.elapsed_ns = env.now - start
    return result
