"""Workload generators reproducing the paper's evaluation drivers."""

from .filebench import PERSONALITIES, FilebenchResult, run_personality
from .fio import FioJob, FioResult, LabStackEngine, RawDeviceEngine, run_fio
from .fsapi import FsApi, GenericFsAdapter, KernelFsAdapter
from .fxmark import FxmarkResult, run_create, run_rename, run_unlink
from .labios import LabiosResult, run_labios_fs, run_labios_kvs
from .replay import (
    RecordingApi,
    ReplayResult,
    TraceOp,
    load_trace,
    replay_trace,
    save_trace,
)
from .vpic import VpicConfig, run_bdcats, run_vpic

__all__ = [
    "FioJob",
    "FioResult",
    "RawDeviceEngine",
    "LabStackEngine",
    "run_fio",
    "FsApi",
    "KernelFsAdapter",
    "GenericFsAdapter",
    "FxmarkResult",
    "run_create",
    "run_unlink",
    "run_rename",
    "FilebenchResult",
    "PERSONALITIES",
    "run_personality",
    "LabiosResult",
    "run_labios_fs",
    "run_labios_kvs",
    "TraceOp",
    "RecordingApi",
    "ReplayResult",
    "save_trace",
    "load_trace",
    "replay_trace",
    "VpicConfig",
    "run_vpic",
    "run_bdcats",
]
