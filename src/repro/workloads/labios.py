"""LABIOS worker I/O patterns (paper Fig 9(b)).

LABIOS is a distributed object store whose workers persist *labels*.
On a filesystem backend each label write costs the POSIX sequence
fopen + fseek + fwrite + fclose (4 syscalls); on LabKVS it is a single
put.  This module generates the label stream and drives either backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mods.generic_kvs import GenericKVS
from ..sim import Environment
from ..units import sec

__all__ = ["LabiosResult", "run_labios_fs", "run_labios_kvs"]


@dataclass
class LabiosResult:
    labels: int
    bytes_moved: int
    elapsed_ns: int

    @property
    def throughput_MBps(self) -> float:
        return self.bytes_moved / 1e6 / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0

    @property
    def labels_per_sec(self) -> float:
        return self.labels / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0


def _label_payload(size: int, rng: np.random.Generator) -> bytes:
    return bytes(rng.integers(0, 96, size, dtype=np.uint8) + 32)


def run_labios_fs(env: Environment, api, *, nlabels: int, label_size: int = 8192,
                  nfiles: int = 64, seed: int = 0) -> LabiosResult:
    """Labels translated to UNIX files.

    LABIOS overwrites label files in place — each label write triggers the
    fopen/fseek/fwrite(+persist)/fclose sequence on an existing file (the
    paper: "Each label write triggers a sequence of POSIX calls").  The
    fileset is pre-created outside the measured window.
    """
    rng = np.random.default_rng(seed)

    def prefill():
        for i in range(nfiles):
            fd = yield from api.open(f"/labios/label_{i}", create=True)
            yield from api.write(fd, b"\x00" * label_size, offset=0)
            yield from api.fsync(fd)
            yield from api.close(fd)

    env.run(env.process(prefill()))

    def worker():
        for i in range(nlabels):
            payload = _label_payload(label_size, rng)
            fd = yield from api.open(f"/labios/label_{i % nfiles}")
            yield from api.seek(fd, 0)
            yield from api.write(fd, payload)
            yield from api.fsync(fd)  # the worker acks durable labels
            yield from api.close(fd)

    start = env.now
    env.run(env.process(worker()))
    return LabiosResult(labels=nlabels, bytes_moved=nlabels * label_size,
                        elapsed_ns=env.now - start)


def run_labios_kvs(env: Environment, kvs: GenericKVS, *, nlabels: int,
                   label_size: int = 8192, seed: int = 0) -> LabiosResult:
    """Labels stored natively: one put per label."""
    rng = np.random.default_rng(seed)

    def worker():
        for i in range(nlabels):
            payload = _label_payload(label_size, rng)
            yield from kvs.put(f"label_{i}", payload)

    start = env.now
    env.run(env.process(worker()))
    return LabiosResult(labels=nlabels, bytes_moved=nlabels * label_size,
                        elapsed_ns=env.now - start)
