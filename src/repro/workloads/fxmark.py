"""FxMark-style filesystem scalability microbenchmarks.

The paper's Fig 7 uses FxMark's file-creation stress (each thread creates
files in a private directory) to expose metadata-path scaling.  We
implement the same MWCL-style pattern plus a rename and an unlink
variant, over the uniform :mod:`repro.workloads.fsapi` adapter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment
from ..units import sec

__all__ = ["FxmarkResult", "run_create", "run_unlink", "run_rename"]


@dataclass
class FxmarkResult:
    ops: int
    elapsed_ns: int
    nthreads: int

    @property
    def ops_per_sec(self) -> float:
        return self.ops / (self.elapsed_ns / sec(1)) if self.elapsed_ns else 0.0


def run_create(env: Environment, fsapi_factory, nthreads: int, files_per_thread: int) -> FxmarkResult:
    """MWCL: every thread creates files in its own directory.

    ``fsapi_factory(tid)`` returns the FsApi the thread drives (LabStor
    needs one client per thread; kernel FS can share).
    """
    total = nthreads * files_per_thread

    def worker(tid: int, api):
        for i in range(files_per_thread):
            fd = yield from api.open(f"/t{tid}/f{i}", create=True)
            yield from api.close(fd)

    start = env.now
    procs = [env.process(worker(t, fsapi_factory(t))) for t in range(nthreads)]
    env.run(env.all_of(procs))
    return FxmarkResult(ops=total, elapsed_ns=env.now - start, nthreads=nthreads)


def run_unlink(env: Environment, fsapi_factory, nthreads: int, files_per_thread: int) -> FxmarkResult:
    """Create then unlink; the reported window covers only the unlinks."""
    apis = [fsapi_factory(t) for t in range(nthreads)]

    def creator(tid: int, api):
        for i in range(files_per_thread):
            fd = yield from api.open(f"/u{tid}/f{i}", create=True)
            yield from api.close(fd)

    procs = [env.process(creator(t, api)) for t, api in enumerate(apis)]
    env.run(env.all_of(procs))

    def remover(tid: int, api):
        for i in range(files_per_thread):
            yield from api.unlink(f"/u{tid}/f{i}")

    start = env.now
    procs = [env.process(remover(t, api)) for t, api in enumerate(apis)]
    env.run(env.all_of(procs))
    return FxmarkResult(ops=nthreads * files_per_thread, elapsed_ns=env.now - start,
                        nthreads=nthreads)


def run_rename(env: Environment, fsapi_factory, nthreads: int, files_per_thread: int) -> FxmarkResult:
    """Create then rename within the private directory."""
    apis = [fsapi_factory(t) for t in range(nthreads)]

    def creator(tid: int, api):
        for i in range(files_per_thread):
            fd = yield from api.open(f"/r{tid}/f{i}", create=True)
            yield from api.close(fd)

    procs = [env.process(creator(t, api)) for t, api in enumerate(apis)]
    env.run(env.all_of(procs))

    def renamer(tid: int, api):
        for i in range(files_per_thread):
            # both adapters expose rename through the underlying object
            if hasattr(api, "gfs"):
                yield from api.gfs.rename(api._p(f"/r{tid}/f{i}"), api._p(f"/r{tid}/g{i}"))
            else:
                yield api.env.process(api.fs.rename(f"/r{tid}/f{i}", f"/r{tid}/g{i}"))

    start = env.now
    procs = [env.process(renamer(t, api)) for t, api in enumerate(apis)]
    env.run(env.all_of(procs))
    return FxmarkResult(ops=nthreads * files_per_thread, elapsed_ns=env.now - start,
                        nthreads=nthreads)
