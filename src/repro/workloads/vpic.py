"""VPIC and BD-CATS workload models (paper Fig 9(a)).

VPIC is a particle-in-cell simulation: at every time step each rank
writes its particle buffer (particles x 8 float32) to the PFS.  BD-CATS
is the companion analytics code that reads all particle data back for
parallel clustering.  The paper runs 640 ranks x 16 steps x 8M particles
(165GB); we keep the access pattern and scale the sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pfs.orangefs import OrangeFs, PfsResult
from ..sim import Environment

__all__ = ["VpicConfig", "run_vpic", "run_bdcats"]


@dataclass(frozen=True)
class VpicConfig:
    nprocs: int = 8
    timesteps: int = 4
    particles_per_proc: int = 4096
    floats_per_particle: int = 8

    @property
    def bytes_per_rank_step(self) -> int:
        return self.particles_per_proc * self.floats_per_particle * 4

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_rank_step * self.nprocs * self.timesteps


def _particles(cfg: VpicConfig, rank: int, step: int) -> bytes:
    rng = np.random.default_rng(rank * 1000 + step)
    arr = rng.random(cfg.particles_per_proc * cfg.floats_per_particle, dtype=np.float32)
    return arr.tobytes()


def run_vpic(env: Environment, pfs: OrangeFs, cfg: VpicConfig) -> PfsResult:
    """All ranks write their particle buffers for every time step."""

    def rank_proc(rank: int):
        for step in range(cfg.timesteps):
            data = _particles(cfg, rank, step)
            yield from pfs.write_file(f"/vpic/r{rank}_t{step}", data)

    start = env.now
    meta0 = pfs.metadata_ops
    procs = [env.process(rank_proc(r)) for r in range(cfg.nprocs)]
    env.run(env.all_of(procs))
    return PfsResult(bytes_moved=cfg.total_bytes, metadata_ops=pfs.metadata_ops - meta0,
                     elapsed_ns=env.now - start)


def run_bdcats(env: Environment, pfs: OrangeFs, cfg: VpicConfig) -> PfsResult:
    """All ranks read back the particle data (clustering input)."""

    def rank_proc(rank: int):
        for step in range(cfg.timesteps):
            data = yield from pfs.read_file(f"/vpic/r{rank}_t{step}")
            assert len(data) == cfg.bytes_per_rank_step

    start = env.now
    meta0 = pfs.metadata_ops
    procs = [env.process(rank_proc(r)) for r in range(cfg.nprocs)]
    env.run(env.all_of(procs))
    return PfsResult(bytes_moved=cfg.total_bytes, metadata_ops=pfs.metadata_ops - meta0,
                     elapsed_ns=env.now - start)
