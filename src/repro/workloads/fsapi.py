"""A uniform file-API adapter so workloads can drive any filesystem.

FxMark / Filebench / LABIOS / VPIC run identically over:

- :class:`KernelFsAdapter` — the ext4/xfs/f2fs baselines, and
- :class:`GenericFsAdapter` — LabStor's GenericFS over any LabFS stack.

All methods are process generators.
"""

from __future__ import annotations

from typing import Protocol

from ..kernel.filesystems.base import KernelFilesystem
from ..mods.generic_fs import GenericFS

__all__ = ["FsApi", "KernelFsAdapter", "GenericFsAdapter"]


class FsApi(Protocol):
    def open(self, path: str, create: bool = False): ...
    def close(self, fd): ...
    def write(self, fd, data: bytes, offset: int | None = None): ...
    def read(self, fd, size: int, offset: int | None = None): ...
    def seek(self, fd, pos: int): ...
    def fsync(self, fd): ...
    def unlink(self, path: str): ...
    def stat(self, path: str): ...


class KernelFsAdapter:
    """Kernel filesystem baseline behind the uniform API."""

    def __init__(self, fs: KernelFilesystem) -> None:
        self.fs = fs
        self.env = fs.env

    def open(self, path: str, create: bool = False):
        return (yield self.env.process(self.fs.open(path, create=create)))

    def close(self, fd):
        yield self.env.process(self.fs.close(fd))

    def write(self, fd, data: bytes, offset: int | None = None):
        return (yield self.env.process(self.fs.write(fd, data, offset=offset)))

    def read(self, fd, size: int, offset: int | None = None):
        return (yield self.env.process(self.fs.read(fd, size, offset=offset)))

    def seek(self, fd, pos: int):
        yield self.env.process(self.fs.seek(fd, pos))

    def fsync(self, fd):
        yield self.env.process(self.fs.fsync(fd))

    def unlink(self, path: str):
        yield self.env.process(self.fs.unlink(path))

    def stat(self, path: str):
        return (yield self.env.process(self.fs.stat(path)))


class GenericFsAdapter:
    """LabStor GenericFS behind the uniform API.

    ``prefix`` maps workload-relative paths under the stack's mount point
    (e.g. prefix="fs::/t" turns "/f1" into "fs::/t/f1").
    """

    def __init__(self, gfs: GenericFS, prefix: str) -> None:
        self.gfs = gfs
        self.env = gfs.env
        self.prefix = prefix.rstrip("/")

    def _p(self, path: str) -> str:
        return self.prefix + path

    def open(self, path: str, create: bool = False):
        return (yield from self.gfs.open(self._p(path), create=create))

    def close(self, fd):
        yield from self.gfs.close(fd)

    def write(self, fd, data: bytes, offset: int | None = None):
        return (yield from self.gfs.write(fd, data, offset=offset))

    def read(self, fd, size: int, offset: int | None = None):
        return (yield from self.gfs.read(fd, size, offset=offset))

    def seek(self, fd, pos: int):
        yield from self.gfs.seek(fd, pos)

    def fsync(self, fd):
        yield from self.gfs.fsync(fd)

    def unlink(self, path: str):
        yield from self.gfs.unlink(self._p(path))

    def stat(self, path: str):
        return (yield from self.gfs.stat(self._p(path)))
