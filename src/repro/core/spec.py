"""A tiny YAML-subset parser for LabStack / Runtime specification files.

The paper defines LabStacks and the Runtime configuration in YAML.  To
stay dependency-free, this module implements the (small) subset those
files need: nested mappings, block lists of scalars or mappings, scalar
typing (int / float / bool / null / quoted or bare strings), and ``#``
comments.  Indentation must be consistent spaces (no tabs).

This is not a general YAML implementation — anchors, flow style beyond
inline ``[]``/``{}`` on scalars, and multi-line strings are rejected.
"""

from __future__ import annotations

from typing import Any

from ..errors import LabStorError

__all__ = ["parse_spec", "dump_spec", "SpecParseError"]


class SpecParseError(LabStorError):
    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text in ("null", "~", ""):
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if (text.startswith('"') and text.endswith('"')) or (
        text.startswith("'") and text.endswith("'")
    ):
        return text[1:-1]
    if text == "{}":
        return {}
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        return [] if not inner else [_parse_scalar(p) for p in inner.split(",")]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _is_mapping_line(content: str) -> bool:
    """YAML mapping keys require ': ' or a line-ending ':' — a bare colon
    inside a scalar like ``fs::/b`` does not start a mapping."""
    return ": " in content or content.endswith(":")


class _Line:
    __slots__ = ("indent", "content", "lineno")

    def __init__(self, indent: int, content: str, lineno: int) -> None:
        self.indent = indent
        self.content = content
        self.lineno = lineno


def _scan(text: str) -> list[_Line]:
    lines = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise SpecParseError(lineno, "tabs are not allowed in indentation")
        if raw.lstrip().startswith("#"):
            continue
        # a comment starts at ' #' (YAML requires whitespace before '#')
        stripped = raw.split(" #", 1)[0].rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip())
        lines.append(_Line(indent, stripped.strip(), lineno))
    return lines


def _parse_block(lines: list[_Line], pos: int, indent: int) -> tuple[Any, int]:
    """Parse the block starting at lines[pos] with exactly ``indent``."""
    if pos >= len(lines):
        return None, pos
    if lines[pos].content.startswith("- ") or lines[pos].content == "-":
        return _parse_list(lines, pos, indent)
    return _parse_map(lines, pos, indent)


def _parse_map(lines: list[_Line], pos: int, indent: int) -> tuple[dict, int]:
    result: dict[str, Any] = {}
    while pos < len(lines) and lines[pos].indent == indent:
        line = lines[pos]
        if line.content.startswith("- ") or line.content == "-":
            break
        if not _is_mapping_line(line.content):
            raise SpecParseError(line.lineno, f"expected 'key: value', got {line.content!r}")
        key, _, rest = line.content.partition(":")
        key = key.strip()
        rest = rest.strip()
        if rest:
            result[key] = _parse_scalar(rest)
            pos += 1
        else:
            pos += 1
            if pos < len(lines) and lines[pos].indent > indent:
                value, pos = _parse_block(lines, pos, lines[pos].indent)
                result[key] = value
            else:
                result[key] = None
    if pos < len(lines) and lines[pos].indent > indent:
        raise SpecParseError(lines[pos].lineno, "unexpected indentation")
    return result, pos


def _parse_list(lines: list[_Line], pos: int, indent: int) -> tuple[list, int]:
    result: list[Any] = []
    while (
        pos < len(lines)
        and lines[pos].indent == indent
        and (lines[pos].content.startswith("- ") or lines[pos].content == "-")
    ):
        line = lines[pos]
        item_text = line.content[2:].strip() if line.content != "-" else ""
        if not item_text:
            pos += 1
            if pos < len(lines) and lines[pos].indent > indent:
                value, pos = _parse_block(lines, pos, lines[pos].indent)
                result.append(value)
            else:
                result.append(None)
        elif _is_mapping_line(item_text) and not item_text.startswith(('"', "'")):
            # inline start of a mapping item: "- key: value"
            key, _, rest = item_text.partition(":")
            item: dict[str, Any] = {}
            if rest.strip():
                item[key.strip()] = _parse_scalar(rest)
            else:
                item[key.strip()] = None
            pos += 1
            # continuation keys are indented deeper than the dash
            if pos < len(lines) and lines[pos].indent > indent:
                more, pos = _parse_map(lines, pos, lines[pos].indent)
                item.update(more)
            result.append(item)
        else:
            result.append(_parse_scalar(item_text))
            pos += 1
    return result, pos


def parse_spec(text: str) -> Any:
    """Parse a YAML-subset document into dicts/lists/scalars."""
    lines = _scan(text)
    if not lines:
        return {}
    value, pos = _parse_block(lines, 0, lines[0].indent)
    if pos != len(lines):
        raise SpecParseError(lines[pos].lineno, "trailing content outside the root block")
    return value


def dump_spec(value: Any, indent: int = 0) -> str:
    """Serialize dicts/lists/scalars back to the YAML subset."""
    pad = " " * indent
    if isinstance(value, dict):
        out = []
        for k, v in value.items():
            if isinstance(v, (dict, list)) and v:
                out.append(f"{pad}{k}:")
                out.append(dump_spec(v, indent + 2))
            else:
                out.append(f"{pad}{k}: {_dump_scalar(v)}")
        return "\n".join(out)
    if isinstance(value, list):
        out = []
        for item in value:
            if isinstance(item, dict) and item:
                # a block mapping under a bare dash round-trips unambiguously
                out.append(f"{pad}-")
                out.append(dump_spec(item, indent + 2))
            else:
                out.append(f"{pad}- {_dump_scalar(item)}")
        return "\n".join(out)
    return f"{pad}{_dump_scalar(value)}"


def _dump_scalar(v: Any) -> str:
    if v is None:
        return "null"
    if isinstance(v, dict):
        if v:
            raise LabStorError("non-empty dict cannot be dumped inline")
        return "{}"
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, (int, float)):
        return str(v)
    if isinstance(v, list):
        return "[" + ", ".join(_dump_scalar(x) for x in v) + "]"
    text = str(v)
    if any(c in text for c in ":#[]{},") or text != text.strip():
        return f'"{text}"'
    return text
