"""Runtime Workers: queue-polling execution engines.

A Worker polls the queue pairs the Work Orchestrator assigned to it,
pops requests, and executes the LabStack DAG for each.  Key behaviours
from Section III-C:

- CPU segments of request execution serialize on the worker's core;
  device waits release the core, so a worker keeps processing other
  requests while I/O is in flight (asynchronous message passing).
- Ordered queues are drained one-request-at-a-time; unordered queues may
  have several requests in flight.
- With ``batch_max > 1`` a wakeup drains up to ``batch_max`` SQEs from one
  queue in a single pop (blk-mq-style batch dequeue): the cross-core hop
  and a fixed ``batch_doorbell_ns`` are paid once per batch, each member
  only the marginal ``batch_op_ns``, and the members execute concurrently.
  An ordered queue admits intra-batch concurrency — the batch was popped
  as one unit — but no second batch until the first fully completes.
- A worker that has seen no work for ``idle_sleep_ns`` stops busy-waiting
  and sleeps until one of its queues becomes non-empty (the paper's
  configurable idle threshold that lets a worker "avoid busy waiting for
  an entire WO epoch").
- Workers acknowledge UPDATE_PENDING flags on primary queues and stop
  popping them until the Module Manager completes the upgrade.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..errors import WorkerCrashed
from ..ipc.queue_pair import Completion, QueueFlag, QueuePair
from ..kernel.cpu import Cpu
from ..sim import Environment, Interrupt
from .labmod import ExecContext
from .requests import LabRequest

__all__ = ["Worker"]

# Executor signature: (request, exec_context) -> generator returning a value
Executor = Callable[[LabRequest, ExecContext], Generator]


class Worker:
    def __init__(
        self,
        env: Environment,
        worker_id: int,
        cpu: Cpu,
        executor: Executor,
        tracer=None,
        core_id: int | None = None,
        poll_quantum_ns: int = 2_000,
        idle_sleep_ns: int = 50_000,
        max_inflight: int = 64,
        batch_max: int = 1,
    ) -> None:
        self.env = env
        self.worker_id = worker_id
        self.cpu = cpu
        self.executor = executor
        self.tracer = tracer if tracer is not None else env.tracer
        self.core_id = core_id if core_id is not None else cpu.pin()
        self.core = cpu.cores[self.core_id]
        self.poll_quantum_ns = poll_quantum_ns
        self.idle_sleep_ns = idle_sleep_ns
        self.max_inflight = max_inflight
        self.batch_max = max(1, batch_max)

        self.queues: list[QueuePair] = []
        self.running = True
        self.crashed = False
        self.processed = 0
        self.failed = 0
        self.batch_pops = 0      # wakeups that drained >= 2 SQEs at once
        self.batch_pop_ops = 0   # SQEs drained by those batch pops
        self.inflight = 0
        self._inflight_per_qp: dict[int, int] = {}
        self._active: dict[int, object] = {}  # req_id -> request process
        self._rr = 0
        self._last_work_ns = env.now
        # awake-time accounting (CPU a busy-polling worker burns)
        self.awake_ns = 0
        self._awake_since: int | None = env.now
        self._wake_event = env.event()
        self._sleeping = False
        self.proc = env.process(self._loop(), name=f"worker{worker_id}", daemon=True)

    # ------------------------------------------------------------------
    # queue assignment (driven by the Work Orchestrator)
    # ------------------------------------------------------------------
    def assign(self, qp: QueuePair) -> None:
        if qp not in self.queues:
            self.queues.append(qp)
            self.kick()

    def unassign(self, qp: QueuePair) -> None:
        if qp in self.queues:
            self.queues.remove(qp)

    def assigned_qids(self) -> list[int]:
        return [qp.qid for qp in self.queues]

    def kick(self) -> None:
        """Re-arm the scan loop (new queue / new work / completion / stop)."""
        wake = self._wake_event
        if not wake._triggered:
            wake.succeed()

    def decommission(self) -> None:
        """Stop after finishing in-flight work (orchestrator scale-down)."""
        self.running = False
        self.kick()

    def crash(self, cause: str = "worker crash") -> None:
        """Die *now*: in-flight requests are interrupted and complete with
        :class:`~repro.errors.WorkerCrashed` errors rather than vanishing,
        so the queue-pair conservation invariant keeps holding."""
        self.crashed = True
        self.running = False
        self.kick()
        for proc in list(self._active.values()):
            if proc.is_alive:
                proc.interrupt(cause)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _go_to_sleep_accounting(self) -> None:
        if self._awake_since is not None:
            self.awake_ns += self.env._now - self._awake_since
            self._awake_since = None

    def _wake_accounting(self) -> None:
        if self._awake_since is None:
            self._awake_since = self.env._now

    def awake_time(self) -> int:
        total = self.awake_ns
        if self._awake_since is not None:
            total += self.env._now - self._awake_since
        return total

    def reset_accounting(self) -> None:
        self.awake_ns = 0
        if self._awake_since is not None:
            self._awake_since = self.env.now

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _scan_once(self) -> bool:
        """Try to pop one request from the assigned queues (round-robin).
        Returns True if work was started."""
        queues = self.queues
        inflight_per_qp = self._inflight_per_qp
        n = len(queues)
        rr = self._rr
        for i in range(n):
            qp = queues[(rr + i) % n]
            if qp.primary and qp.flag is QueueFlag.UPDATE_PENDING:
                qp.ack_update()
                continue
            if qp.flag is QueueFlag.UPDATE_ACKED:
                continue  # paused for upgrade
            if qp.ordered and inflight_per_qp.get(qp.qid, 0) > 0:
                continue
            req = qp.try_pop_request()
            if req is not None:
                self._rr = (self._rr + i + 1) % n
                batch = [req]
                limit = min(self.batch_max, self.max_inflight - self.inflight)
                while len(batch) < limit:
                    nxt = qp.try_pop_request()
                    if nxt is None:
                        break
                    batch.append(nxt)
                if len(batch) > 1:
                    self.batch_pops += 1
                    self.batch_pop_ops += len(batch)
                # account in-flight synchronously so the ordered-queue gate
                # holds before the request processes get their first step
                self.inflight += len(batch)
                inflight_per_qp[qp.qid] = inflight_per_qp.get(qp.qid, 0) + len(batch)
                for idx, r in enumerate(batch):
                    proc = self.env.process(
                        self._run_request(qp, r, lead=(idx == 0), batch_n=len(batch)),
                        name=f"w{self.worker_id}.req{r.req_id}",
                    )
                    self._active[r.req_id] = proc
                return True
        return False

    def _poppable_when_filled(self, qp: QueuePair) -> bool:
        """Would _scan_once be able to act on this queue if a request
        arrived?  Mirrors the skip conditions in _scan_once so the loop
        never arms an event it cannot make progress on (spin guard)."""
        if qp.flag is QueueFlag.UPDATE_ACKED:
            return False
        if qp.ordered and self._inflight_per_qp.get(qp.qid, 0) > 0:
            return False
        return True

    def _loop(self):
        env = self.env
        while self.running:
            if self.queues and self.inflight < self.max_inflight and self._scan_once():
                self._last_work_ns = env._now
                continue
            # no poppable work: a polling worker discovers new submissions
            # immediately (sub-mus), so wait event-driven; the idle window
            # only controls when the worker stops burning its core.
            self._wake_event = env.event()
            waits = [self._wake_event]
            if self.inflight < self.max_inflight:
                waits += [qp.sq_nonempty() for qp in self.queues
                          if self._poppable_when_filled(qp)]
            idle_for = env._now - self._last_work_ns
            if self.inflight > 0 or (self.queues and idle_for < self.idle_sleep_ns):
                # busy-polling: stay awake; give up after the idle window
                waits.append(env.timeout(max(self.poll_quantum_ns,
                                             self.idle_sleep_ns - idle_for)))
                yield env.any_of(waits)
                continue
            # nothing to do for a while: sleep until kicked or work arrives
            self._go_to_sleep_accounting()
            self._sleeping = True
            yield env.any_of(waits)
            self._sleeping = False
            self._wake_accounting()
            self._last_work_ns = env._now
        self._go_to_sleep_accounting()

    def _run_request(self, qp: QueuePair, req: LabRequest, lead: bool = True,
                     batch_n: int = 1):
        # in-flight counters were bumped by _scan_once at pop time
        x = ExecContext(self.env, self.tracer, core_resource=self.core, worker_id=self.worker_id)
        sc = req.obs
        if sc is not None:
            sc.mark_pop(self.env._now)
            x.sc = sc
        error = None
        value = None
        try:
            if batch_n > 1:
                # batch pop: the cross-core hop + batch-descriptor walk are
                # paid once by the lead entry; every member pays only the
                # marginal decode cost — the fixed-vs-marginal split that
                # makes doorbell amortization explicit in the cost model
                if lead:
                    yield from x.work(qp.pop_cost_ns, span="ipc")
                    yield from x.work(self.cpu.cost.batch_doorbell_ns, span="runtime")
                yield from x.work(self.cpu.cost.batch_op_ns, span="runtime")
            else:
                # the cross-core pop of the request payload
                yield from x.work(qp.pop_cost_ns, span="ipc")
                # request handling: parse, namespace/registry lookups, bookkeeping
                yield from x.work(self.cpu.cost.runtime_request_ns, span="runtime")
            try:
                value = yield from self.executor(req, x)
            except Interrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - module bug: report, don't die
                error = exc
                self.failed += 1
        except Interrupt as intr:
            if not self.crashed:
                raise
            # dying mid-request: convert the interrupt into an error
            # completion so ``submitted == completed + inflight`` keeps
            # holding on the queue pair
            error = WorkerCrashed(
                f"worker {self.worker_id} crashed mid-request: {intr.cause}"
            )
            self.failed += 1
        finally:
            self._active.pop(req.req_id, None)
        now = self.env._now
        req.complete_ns = now
        if sc is not None:
            sc.mark_complete(now)
        self.processed += 1
        self.inflight -= 1
        self._inflight_per_qp[qp.qid] -= 1
        self._last_work_ns = now
        if self.env._audit:
            self.env.tracer.emit(now, "san.worker", worker=self, qp=qp)
        qp.complete(Completion(req, value=value, error=error))
        # a completion can unblock an ordered queue or the inflight cap
        self.kick()
