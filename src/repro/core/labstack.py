"""LabStacks: user-defined DAGs of LabMods forming a complete I/O stack.

A :class:`StackSpec` is the human-readable specification (Section III-B):
a mount point, governing rules (execution method, priority, authorized
users), and a DAG of LabMod vertices, each carrying the LabMod name, a
UUID naming the *instance*, init attributes and output edges.

Mounting validates the spec (acyclic, type-compatible edges, length
limit), instantiates missing LabMods through the Module Registry, wires
the DAG, and registers the stack in the LabStack Namespace.
``modify`` applies insert/remove operations to a live stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import StackValidationError
from .labmod import LabMod
from .registry import ModuleRegistry

__all__ = ["NodeSpec", "StackRules", "StackSpec", "LabStack"]

_stack_ids = itertools.count(1)

EXEC_MODES = ("async", "sync")


@dataclass
class NodeSpec:
    mod_name: str                 # LabMod class name, resolved via repos
    uuid: str                     # instance UUID (shared across stacks!)
    attrs: dict[str, Any] = field(default_factory=dict)
    outputs: list[str] = field(default_factory=list)  # downstream uuids

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "NodeSpec":
        return cls(
            mod_name=d["mod"],
            uuid=d["uuid"],
            attrs=dict(d.get("attrs", {})),
            outputs=list(d.get("outputs", [])),
        )


@dataclass
class StackRules:
    exec_mode: str = "async"      # "async": in the Runtime; "sync": in the client
    priority: int = 0             # hint for the Work Orchestrator
    admins: list[str] = field(default_factory=list)  # users allowed to modify

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "StackRules":
        return cls(
            exec_mode=d.get("exec_mode", "async"),
            priority=int(d.get("priority", 0)),
            admins=list(d.get("admins", [])),
        )


@dataclass
class StackSpec:
    mount: str
    nodes: list[NodeSpec]
    rules: StackRules = field(default_factory=StackRules)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "StackSpec":
        return cls(
            mount=d["mount"],
            nodes=[NodeSpec.from_dict(n) for n in d.get("labmods", [])],
            rules=StackRules.from_dict(d.get("rules", {})),
        )

    @classmethod
    def linear(cls, mount: str, chain: list[tuple[str, str]], **rule_kw) -> "StackSpec":
        """Convenience: build a simple pipeline spec.

        ``chain`` is ``[(mod_name, uuid), ...]`` head first; each node's
        output is the next node.
        """
        nodes = []
        for i, (mod_name, uuid) in enumerate(chain):
            outputs = [chain[i + 1][1]] if i + 1 < len(chain) else []
            nodes.append(NodeSpec(mod_name=mod_name, uuid=uuid, outputs=outputs))
        return cls(mount=mount, nodes=nodes, rules=StackRules(**rule_kw))


class LabStack:
    """A mounted, validated, executable LabMod DAG."""

    MAX_LENGTH = 16  # configurable maximum stack length (deployment model)

    def __init__(self, spec: StackSpec, registry: ModuleRegistry) -> None:
        self.spec = spec
        self.registry = registry
        self.stack_id = next(_stack_ids)
        self.mods: dict[str, LabMod] = {}
        # entry-root memo: the DAG scan is per-spec, not per-request
        self._entry_spec: StackSpec | None = None
        self._entry_root: str | None = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        spec = self.spec
        if spec.rules.exec_mode not in EXEC_MODES:
            raise StackValidationError(f"bad exec_mode {spec.rules.exec_mode!r}")
        if not spec.nodes:
            raise StackValidationError("stack has no LabMods")
        if len(spec.nodes) > self.MAX_LENGTH:
            raise StackValidationError(f"stack exceeds max length {self.MAX_LENGTH}")
        uuids = [n.uuid for n in spec.nodes]
        if len(set(uuids)) != len(uuids):
            raise StackValidationError("duplicate LabMod uuid in stack spec")
        by_uuid = {n.uuid: n for n in spec.nodes}
        for node in spec.nodes:
            for out in node.outputs:
                if out not in by_uuid:
                    raise StackValidationError(f"{node.uuid} outputs to unknown uuid {out!r}")
        self._check_acyclic(by_uuid)

        # instantiate (or reuse) each LabMod via the registry
        for node in spec.nodes:
            self.mods[node.uuid] = self.registry.instantiate(node.mod_name, node.uuid, node.attrs)
        # wire DAG edges
        for node in spec.nodes:
            mod = self.mods[node.uuid]
            mod.next = [self.mods[out] for out in node.outputs]
        self._check_compat()

    @staticmethod
    def _check_acyclic(by_uuid: dict[str, NodeSpec]) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        color = {u: WHITE for u in by_uuid}

        def visit(u: str) -> None:
            color[u] = GREY
            for v in by_uuid[u].outputs:
                if color[v] == GREY:
                    raise StackValidationError(f"cycle through {u} -> {v}")
                if color[v] == WHITE:
                    visit(v)
            color[u] = BLACK

        for u in by_uuid:
            if color[u] == WHITE:
                visit(u)

    def _check_compat(self) -> None:
        from .labmod import check_edge_compat

        for node in self.spec.nodes:
            up = self.mods[node.uuid]
            for out in node.outputs:
                down = self.mods[out]
                if not check_edge_compat(up, down):
                    raise StackValidationError(
                        f"incompatible edge {up.uuid}({up.mod_type}, emits {up.emits}) -> "
                        f"{down.uuid}({down.mod_type}, accepts {down.accepts})"
                    )

    # ------------------------------------------------------------------
    @property
    def mount(self) -> str:
        return self.spec.mount

    @property
    def exec_mode(self) -> str:
        return self.spec.rules.exec_mode

    @property
    def entry(self) -> LabMod:
        """The DAG root: the unique node with no incoming edges."""
        spec = self.spec
        if self._entry_spec is not spec:
            targets = {out for n in spec.nodes for out in n.outputs}
            roots = [n.uuid for n in spec.nodes if n.uuid not in targets]
            if len(roots) != 1:
                raise StackValidationError(
                    f"stack must have exactly one entry, found {roots}"
                )
            self._entry_root = roots[0]
            self._entry_spec = spec
        return self.mods[self._entry_root]

    def mod_uuids(self) -> list[str]:
        return [n.uuid for n in self.spec.nodes]

    # -- dynamic modification (modify_stack) --------------------------------
    def insert_after(self, anchor_uuid: str, node: NodeSpec) -> None:
        """Splice a new vertex between ``anchor`` and its current outputs."""
        anchor = next((n for n in self.spec.nodes if n.uuid == anchor_uuid), None)
        if anchor is None:
            raise StackValidationError(f"anchor {anchor_uuid!r} not in stack")
        node.outputs = list(anchor.outputs)
        anchor.outputs = [node.uuid]
        self.spec.nodes.insert(self.spec.nodes.index(anchor) + 1, node)
        self.mods = {}
        self._build()

    def remove_node(self, uuid: str) -> None:
        """Remove a vertex, reconnecting its parents to its outputs."""
        node = next((n for n in self.spec.nodes if n.uuid == uuid), None)
        if node is None:
            raise StackValidationError(f"{uuid!r} not in stack")
        for other in self.spec.nodes:
            if uuid in other.outputs:
                other.outputs = [o for o in other.outputs if o != uuid] + [
                    o for o in node.outputs if o not in other.outputs
                ]
        self.spec.nodes.remove(node)
        if not self.spec.nodes:
            raise StackValidationError("cannot remove the last LabMod")
        self.mods = {}
        self._build()

    def __repr__(self) -> str:
        chain = "->".join(n.uuid for n in self.spec.nodes)
        return f"<LabStack #{self.stack_id} {self.mount!r} [{chain}] {self.exec_mode}>"
