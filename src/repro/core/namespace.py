"""The LabStack Namespace: mount-point resolution for LabStacks.

A semantic key-value store mapping mount points (e.g. ``fs::/b``) to
mounted LabStacks.  Resolution follows the Fig 3 walkthrough: an exact
match is tried first, then successively shorter parent prefixes — so
``fs::/b/hi.txt`` resolves to the stack mounted at ``fs::/b``.
"""

from __future__ import annotations

from ..errors import LabStorError
from .labstack import LabStack

__all__ = ["StackNamespace"]


class StackNamespace:
    def __init__(self) -> None:
        self._by_mount: dict[str, LabStack] = {}
        self._by_id: dict[int, LabStack] = {}

    def register(self, stack: LabStack) -> int:
        if stack.mount in self._by_mount:
            raise LabStorError(f"mount point {stack.mount!r} already in namespace")
        self._by_mount[stack.mount] = stack
        self._by_id[stack.stack_id] = stack
        return stack.stack_id

    def unregister(self, mount: str) -> None:
        stack = self._by_mount.pop(mount, None)
        if stack is not None:
            self._by_id.pop(stack.stack_id, None)

    def get_by_id(self, stack_id: int) -> LabStack:
        try:
            return self._by_id[stack_id]
        except KeyError:
            raise LabStorError(f"no stack with id {stack_id}") from None

    def get_by_mount(self, mount: str) -> LabStack | None:
        return self._by_mount.get(mount)

    def resolve(self, path: str) -> tuple[LabStack, str]:
        """Longest-prefix match: returns (stack, path remainder).

        ``resolve("fs::/b/hi.txt")`` with a stack at ``fs::/b`` returns
        that stack and ``"/hi.txt"``.
        """
        candidate = path
        while candidate:
            stack = self._by_mount.get(candidate)
            if stack is not None:
                remainder = path[len(candidate):] or "/"
                return stack, remainder
            if "/" not in candidate.strip("/"):
                # peel the last component; stop at the namespace root
                head, _, _ = candidate.rpartition("/")
                candidate = head
            else:
                candidate, _, _ = candidate.rpartition("/")
        raise LabStorError(f"no LabStack mounted for path {path!r}")

    def stacks(self) -> list[LabStack]:
        return list(self._by_mount.values())

    def __len__(self) -> int:
        return len(self._by_mount)

    def __contains__(self, mount: str) -> bool:
        return mount in self._by_mount
