"""The LabStor Runtime: warehouse and execution engine of LabStacks.

Wires together the IPC Manager, Module Manager (+ Registry), LabStack
Namespace, Workers and Work Orchestrator, and the KO Manager (Fig 2 of
the paper), plus the admin thread that polls the upgrade queue and the
crash/restart machinery of Section III-C3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..devices.base import BlockDevice
from ..errors import LabStorError
from ..ipc.manager import IpcManager
from ..kernel.cpu import DEFAULT_COST, CostModel, Cpu
from ..sim import Environment, Interrupt
from ..units import msec
from .komgr import KernelOpsManager
from .labmod import ExecContext, ModContext
from .labstack import LabStack, StackSpec
from .module_manager import ModuleManager, UpgradeRequest
from .namespace import StackNamespace
from .orchestrator import DynamicPolicy, OrchestratorPolicy, RoundRobinPolicy, WorkOrchestrator
from .registry import ModuleRegistry
from .requests import LabRequest
from .spec import parse_spec

__all__ = ["RuntimeConfig", "LabStorRuntime"]


@dataclass
class RuntimeConfig:
    """The Runtime configuration YAML, as a dataclass."""

    ncores: int = 24
    nworkers: int = 1
    policy: str | OrchestratorPolicy = "rr"     # "rr" | "dynamic" | instance
    min_workers: int = 1
    max_workers: int = 16
    orchestrator_interval_ns: int = msec(1.0)   # rebalance every t ms
    admin_poll_ns: int = msec(1.0)              # upgrade-queue poll every t ms
    worker_idle_sleep_ns: int = 50_000          # busy-wait window before sleeping
    worker_poll_quantum_ns: int = 2_000
    worker_batch_max: int = 1                   # SQEs a worker drains per wakeup
    worker_auto_respawn: bool = True            # replace crashed workers inline
    restart_wait_ns: int = msec(100.0)          # client Wait crash patience
    trace: bool = False

    def make_policy(self) -> OrchestratorPolicy:
        if isinstance(self.policy, OrchestratorPolicy):
            return self.policy
        if self.policy == "rr":
            return RoundRobinPolicy()
        if self.policy == "dynamic":
            return DynamicPolicy()
        raise LabStorError(f"unknown orchestration policy {self.policy!r}")

    @classmethod
    def from_yaml(cls, text: str) -> "RuntimeConfig":
        d = parse_spec(text) or {}
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


class LabStorRuntime:
    def __init__(
        self,
        env: Environment,
        devices: dict[str, BlockDevice] | None = None,
        cost: CostModel = DEFAULT_COST,
        config: RuntimeConfig | None = None,
    ) -> None:
        self.env = env
        self.cost = cost
        self.config = config or RuntimeConfig()
        self.devices = devices or {}
        # Share the environment's tracer so sim-kernel audit hooks and
        # runtime span emission ride one pub/sub seam.
        self.tracer = env.tracer
        if self.config.trace:
            self.tracer.enabled = True
        self.cpu = Cpu(env, ncores=self.config.ncores, cost=cost)
        self.ipc = IpcManager(env, cost=cost)
        self.mod_ctx = ModContext(env, cost, self.tracer, self.devices)
        self.registry = ModuleRegistry(self.mod_ctx)
        self.namespace = StackNamespace()
        self.komgr = KernelOpsManager(env)
        for name, dev in self.devices.items():
            self.komgr.register_device(name, dev)
        self.orchestrator = WorkOrchestrator(
            env,
            self.cpu,
            self._execute,
            policy=self.config.make_policy(),
            nworkers=self.config.nworkers,
            min_workers=self.config.min_workers,
            max_workers=self.config.max_workers,
            interval_ns=self.config.orchestrator_interval_ns,
            tracer=self.tracer,
            auto_respawn=self.config.worker_auto_respawn,
            worker_kw={
                "idle_sleep_ns": self.config.worker_idle_sleep_ns,
                "poll_quantum_ns": self.config.worker_poll_quantum_ns,
                "batch_max": self.config.worker_batch_max,
            },
        )
        self.module_manager = ModuleManager(
            env,
            self.registry,
            self.ipc,
            module_device=self.devices.get("nvme"),
            cost=cost,
            orchestrator=self.orchestrator,
        )
        self.ipc.on_connect(self.orchestrator.on_client_connect)
        self.online = True
        self.crashes = 0
        self._crash_ns: int | None = None
        self._online_waiters: list = []
        self._restart_callbacks: list = []
        self._admin = env.process(self._admin_loop(), name="runtime-admin", daemon=True)

    # ------------------------------------------------------------------
    # deployment API (mount.repo / mount.stack / modify.*)
    # ------------------------------------------------------------------
    def mount_repo(self, name: str, mods: dict[str, type], owner_uid: int = 0) -> None:
        self.registry.mount_repo(name, mods, owner_uid)

    def unmount_repo(self, name: str) -> None:
        self.registry.unmount_repo(name)

    def mount_stack(self, spec: StackSpec | dict | str) -> LabStack:
        """The overloaded ``mount`` command: validate + instantiate + register."""
        if isinstance(spec, str):
            spec = StackSpec.from_dict(parse_spec(spec))
        elif isinstance(spec, dict):
            spec = StackSpec.from_dict(spec)
        stack = LabStack(spec, self.registry)
        self.namespace.register(stack)
        return stack

    def unmount_stack(self, mount: str) -> None:
        self.namespace.unregister(mount)

    def modify_mods(self, upgrade: UpgradeRequest) -> None:
        """Queue a live upgrade (picked up by the admin thread)."""
        self.module_manager.request_upgrade(upgrade)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, req: LabRequest, x: ExecContext):
        """Executor installed into every Worker: run the request's stack."""
        if req.mod_uuid is not None:
            entry = self.registry.get(req.mod_uuid)
        elif req.stack_id is not None:
            entry = self.namespace.get_by_id(req.stack_id).entry
        else:
            raise LabStorError(f"request {req.req_id} has no routing information")
        sc = x.sc
        if sc is None:
            return (yield from entry.handle(req, x))
        frame = sc.enter_mod(entry.uuid, type(entry).__name__, self.env.now)
        try:
            return (yield from entry.handle(req, x))
        finally:
            sc.exit_mod(frame, self.env.now)

    def execute_sync(self, req: LabRequest):
        """Process generator: run a stack synchronously (client-side),
        bypassing the Runtime's queues and workers entirely."""
        x = ExecContext(self.env, self.tracer, core_resource=None)
        if req.obs is not None:
            x.sc = req.obs
        # File/KV ops pay the client library's namespace+fd bookkeeping;
        # raw block ops go through a pre-resolved stack handle (the
        # decentralized data-path design of Section III-B).
        if req.op.startswith("blk."):
            yield from x.work(300, span="runtime")
        else:
            yield from x.work(self.cost.client_dispatch_ns, span="runtime")
        return (yield from self._execute(req, x))

    # ------------------------------------------------------------------
    # admin thread: upgrade-queue polling
    # ------------------------------------------------------------------
    def _admin_loop(self):
        try:
            while True:
                yield self.env.timeout(self.config.admin_poll_ns)
                if self.online and self.module_manager.pending():
                    yield self.env.process(self.module_manager.process_upgrades())
        except Interrupt:
            return  # runtime shut down

    def shutdown(self) -> None:
        """Stop the Runtime's daemon processes (admin poller, orchestrator
        epoch loop, workers).  The Runtime is not restartable afterwards;
        use :meth:`crash`/:meth:`restart` to model failures instead."""
        if self._admin is not None and self._admin.is_alive:
            self._admin.interrupt("runtime shutdown")
        self.online = False
        self.orchestrator.shutdown()

    # ------------------------------------------------------------------
    # crash / restart (Section III-C3)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the Runtime: workers die; shared-memory queues survive.
        Every mounted LabMod loses its volatile state via ``on_crash``
        (durable structures — metadata logs, allocators, device contents —
        survive and seed :meth:`state_repair` at restart)."""
        if not self.online:
            raise LabStorError("runtime already offline")
        self.online = False
        self.crashes += 1
        self._crash_ns = self.env.now
        self.orchestrator.paused = True
        for w in list(self.orchestrator.workers):
            self.orchestrator.decommission_worker(w)
        for uuid in self.registry.uuids():
            self.registry.get(uuid).on_crash()
        t = self.tracer
        if t.enabled:
            t.emit(self.env.now, "fault.runtime", action="crash", crashes=self.crashes)

    def restart(self):
        """Process generator: bring the Runtime back; queues reattach and
        every LabMod gets a StateRepair call."""
        if self.online:
            raise LabStorError("runtime is not offline")
        yield self.env.timeout(msec(5.0))  # exec + re-attach shared memory
        self.orchestrator.paused = False
        self.orchestrator.dead_workers = 0  # the fresh pool covers old crashes
        for _ in range(self.config.nworkers):
            self.orchestrator.spawn_worker()
        for uuid in self.registry.uuids():
            self.registry.get(uuid).state_repair()
        self.online = True
        self.orchestrator.rebalance()
        t = self.tracer
        if t.enabled:
            recovery = self.env.now - self._crash_ns if self._crash_ns is not None else 0
            t.emit(self.env.now, "fault.runtime", action="restart", recovery_ns=recovery)
        waiters, self._online_waiters = self._online_waiters, []
        for ev in waiters:
            ev.succeed()
        for cb in self._restart_callbacks:
            cb()

    def online_event(self):
        """Event firing when the Runtime (re)comes online."""
        ev = self.env.event()
        if self.online:
            ev.succeed()
        else:
            self._online_waiters.append(ev)
        return ev

    def on_restart(self, fn) -> None:
        self._restart_callbacks.append(fn)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "workers": self.orchestrator.worker_count(),
            "stacks": len(self.namespace),
            "mods": len(self.registry.uuids()),
            "clients": len(self.ipc.conns),
            "upgrades": self.module_manager.upgrades_done,
            "crashes": self.crashes,
        }
