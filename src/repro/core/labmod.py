"""The LabMod: LabStor's unit of I/O functionality.

A LabMod is a single-purpose, self-contained code object with four
elements (Section III-A):

- **type** — the API set it implements (``mod_type`` + ``accepts``).
- **operation** — :meth:`handle`, a process generator taking a request
  and an :class:`ExecContext`, producing output requests for the next
  LabMods in the stack.
- **state** — instance attributes, transferable across live upgrades via
  :meth:`state_update` and repairable after a Runtime crash via
  :meth:`state_repair`.
- **connector** — client-side glue that builds :class:`LabRequest`s;
  provided by Generic LabMods (see :mod:`repro.mods.generic_fs`).

Stackability: at mount time the LabStack wires ``self.next`` to the
downstream LabMod instances of the DAG.  ``forward`` passes a request on,
charging the inter-LabMod hop cost.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Optional

from ..errors import LabStorError
from ..kernel.cpu import CostModel
from ..sim import Environment, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from .requests import LabRequest

__all__ = ["LabMod", "ExecContext", "ModContext"]


class ModContext:
    """Everything a LabMod instance may touch: env, costs, devices, tracing."""

    def __init__(
        self,
        env: Environment,
        cost: CostModel,
        tracer: Tracer | None = None,
        devices: dict[str, Any] | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.env = env
        self.cost = cost
        self.tracer = tracer or Tracer()
        self.devices = devices or {}
        self.attrs = attrs or {}


class ExecContext:
    """Per-request execution context.

    ``work(ns, span)`` charges CPU — occupying the executing worker's core
    when the stack runs inside the Runtime, or just elapsing time when the
    stack executes synchronously in the client.  ``wait(event, span)``
    parks the request on an event (e.g. device completion) *without*
    holding the core, which is how a LabStor worker keeps processing other
    requests while I/O is in flight.
    """

    __slots__ = ("env", "tracer", "core", "worker_id", "sc")

    def __init__(self, env: Environment, tracer: Tracer, core_resource=None,
                 worker_id: int | None = None) -> None:
        self.env = env
        self.tracer = tracer
        self.core = core_resource  # sim Resource of the worker core, or None
        self.worker_id = worker_id  # shard key for per-worker structures
        #: telemetry span of the request being executed (set by the worker
        #: or the sync-execution path only when telemetry is armed).  Rides
        #: the ExecContext rather than the request because LabMods spawn
        #: sub-requests (LabFS block I/O, cache write-back) that must bill
        #: into the originating request's span.
        self.sc = None

    def work(self, ns: int, span: str | None = None):
        """Process generator: consume ``ns`` of CPU."""
        env = self.env
        start = env._now
        core = self.core
        if core is not None:
            # Open-coded version of `with core.request() as grant`: the
            # try/finally covers both yields, so an Interrupt thrown while
            # waiting for the grant still releases (= cancels) the claim.
            grant = core.request()
            try:
                yield grant
                yield env.timeout(ns)
            finally:
                core.release(grant)
        else:
            yield env.timeout(ns)
        if span:
            now = env._now
            if env._trace:
                self.tracer.emit(now, "span", name=span, dur_ns=now - start)
            sc = self.sc
            if sc is not None:
                sc.add_cat(span, now - start)

    def wait(self, event, span: str | None = None):
        """Process generator: wait off-core for ``event``."""
        env = self.env
        start = env._now
        value = yield event
        if span:
            now = env._now
            if env._trace:
                self.tracer.emit(now, "span", name=span, dur_ns=now - start)
            sc = self.sc
            if sc is not None:
                sc.add_cat(span, now - start)
                if span == "device_io":
                    sc.add_device_window(start, now)
        return value

    def span(self, name: str, dur_ns: int) -> None:
        """Record a span without elapsing time (bookkeeping attribution)."""
        env = self.env
        if env._trace:
            self.tracer.emit(env._now, "span", name=name, dur_ns=dur_ns)
        sc = self.sc
        if sc is not None:
            sc.add_cat(name, dur_ns)


class LabMod(abc.ABC):
    """Base class for all LabMods."""

    #: the API type this LabMod implements ("filesystem", "kvs", "cache",
    #: "sched", "driver", "permissions", "compression", "generic", ...)
    mod_type: str = "generic"
    #: request-kind prefixes this LabMod accepts ("fs.", "kvs.", "blk.", "*")
    accepts: tuple[str, ...] = ("*",)
    #: request-kind prefixes it emits downstream (() for terminal mods)
    emits: tuple[str, ...] = ()

    def __init__(self, uuid: str, ctx: ModContext) -> None:
        self.uuid = uuid
        self.ctx = ctx
        self.version = 1
        self.next: list["LabMod"] = []   # wired by the LabStack at mount
        self.processed = 0

    # ------------------------------------------------------------------
    # the operation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def handle(self, req: "LabRequest", x: ExecContext):
        """Process generator implementing the LabMod operation."""

    def forward(self, req: "LabRequest", x: ExecContext, fanout: int | None = None):
        """Pass ``req`` to downstream LabMods (charging the hop cost)."""
        targets = self.next if fanout is None else self.next[:fanout]
        result = None
        sc = x.sc
        for nxt in targets:
            yield from x.work(self.ctx.cost.labmod_hop_ns)
            if sc is not None:
                frame = sc.enter_mod(nxt.uuid, type(nxt).__name__, x.env.now)
                try:
                    result = yield from nxt.handle(req, x)
                finally:
                    sc.exit_mod(frame, x.env.now)
            else:
                result = yield from nxt.handle(req, x)
        return result

    def accepts_op(self, op: str) -> bool:
        return any(p == "*" or op.startswith(p) for p in self.accepts)

    # ------------------------------------------------------------------
    # upgrade / recovery / monitoring APIs (Section III-A)
    # ------------------------------------------------------------------
    def state_update(self, old: "LabMod") -> None:
        """Copy state from the previous version (live upgrade).

        The default transfers nothing beyond counters; stateful LabMods
        override this (e.g. LabFS moves its allocator, log and inode map).
        """
        self.processed = old.processed
        self.version = old.version + 1

    def on_crash(self) -> None:
        """The Runtime just died: drop volatile (in-memory) state.

        Durable structures — metadata logs, allocators, device contents —
        must survive; :meth:`state_repair` rebuilds the volatile side from
        them at restart.  Default: stateless, nothing to lose.
        """

    def state_repair(self) -> None:
        """Repair state after a Runtime crash (default: nothing to do)."""

    def on_snapshot(self) -> dict:
        """Export durable state as plain picklable data (no env refs).

        Mirrors :meth:`on_crash`: what survives a power cut is exactly
        what belongs in a snapshot.  Stateful LabMods override this to
        export metadata logs / allocators; the default captures only the
        generic counters.
        """
        return {"processed": self.processed, "version": self.version}

    def on_restore(self, state: dict) -> None:
        """Install state captured by :meth:`on_snapshot` into this
        (freshly built) LabMod, rebuilding volatile structures the same
        way :meth:`state_repair` does after a crash."""
        self.processed = state.get("processed", 0)
        self.version = state.get("version", self.version)

    def est_processing_time(self, req: "LabRequest") -> int:
        """EstProcessingTime: expected CPU ns to process ``req``."""
        return 1000

    def est_total_time(self, req: "LabRequest") -> int:
        """EstTotalTime: expected end-to-end ns including device time."""
        return self.est_processing_time(req)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} uuid={self.uuid!r} v{self.version}>"


def check_edge_compat(upstream: LabMod, downstream: LabMod) -> bool:
    """An edge is valid if something the upstream emits is accepted below."""
    if not upstream.emits:
        return False
    return any(
        p == "*" or any(e.startswith(p) or p.startswith(e) for e in upstream.emits)
        for p in downstream.accepts
    )
