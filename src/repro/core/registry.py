"""The Module Registry: every instantiated LabMod, addressable by UUID.

Mirrors the paper's shared-memory hashmap: keys are human-readable LabMod
UUIDs, values are live instances.  LabMod *repos* (directories of plug-ins
in the paper) are modelled as named dicts mapping LabMod names to classes;
`mount_repo` / `unmount_repo` adjust the available set at runtime.
"""

from __future__ import annotations

from typing import Any, Type

from ..errors import LabStorError, ModuleNotFound
from .labmod import LabMod, ModContext

__all__ = ["ModuleRegistry"]


class ModuleRegistry:
    def __init__(self, ctx: ModContext, max_repos_per_user: int = 8) -> None:
        self.ctx = ctx
        self.max_repos_per_user = max_repos_per_user
        self._repos: dict[str, dict[str, Type[LabMod]]] = {}
        self._repo_owner: dict[str, int] = {}
        self._mods: dict[str, LabMod] = {}
        self.upgrades_applied = 0

    # -- repos (plug-in discovery) ----------------------------------------
    def mount_repo(self, name: str, mods: dict[str, Type[LabMod]], owner_uid: int = 0) -> None:
        if name in self._repos:
            raise LabStorError(f"repo {name!r} already mounted")
        owned = sum(1 for o in self._repo_owner.values() if o == owner_uid)
        if owned >= self.max_repos_per_user:
            raise LabStorError(f"uid {owner_uid} exceeded max repos ({self.max_repos_per_user})")
        self._repos[name] = dict(mods)
        self._repo_owner[name] = owner_uid

    def unmount_repo(self, name: str) -> None:
        self._repos.pop(name, None)
        self._repo_owner.pop(name, None)

    def resolve_class(self, mod_name: str) -> Type[LabMod]:
        """Search mounted repos (insertion order) for a LabMod class."""
        for repo in self._repos.values():
            if mod_name in repo:
                return repo[mod_name]
        raise ModuleNotFound(f"no mounted repo provides LabMod {mod_name!r}")

    # -- instances ------------------------------------------------------------
    def instantiate(self, mod_name: str, uuid: str, attrs: dict[str, Any] | None = None) -> LabMod:
        """Create the LabMod for ``uuid`` unless one already exists.

        Matches mount-time semantics: "a LabMod is only instantiated if
        its UUID did not exist in the registry".
        """
        existing = self._mods.get(uuid)
        if existing is not None:
            return existing
        cls = self.resolve_class(mod_name)
        ctx = self.ctx
        if attrs:
            ctx = ModContext(self.ctx.env, self.ctx.cost, self.ctx.tracer, self.ctx.devices, attrs)
        mod = cls(uuid, ctx)
        self._mods[uuid] = mod
        return mod

    def get(self, uuid: str) -> LabMod:
        try:
            return self._mods[uuid]
        except KeyError:
            raise ModuleNotFound(f"LabMod uuid {uuid!r} not in registry") from None

    def __contains__(self, uuid: str) -> bool:
        return uuid in self._mods

    def uuids(self) -> list[str]:
        return list(self._mods)

    def instances_of(self, mod_name_cls: Type[LabMod]) -> list[LabMod]:
        return [m for m in self._mods.values() if isinstance(m, mod_name_cls)]

    # -- hot swap -----------------------------------------------------------
    def hot_swap(self, uuid: str, new_cls: Type[LabMod], attrs: dict[str, Any] | None = None) -> LabMod:
        """Replace the instance behind ``uuid``; wiring is preserved and
        state is carried over via the StateUpdate API."""
        old = self.get(uuid)
        ctx = self.ctx
        if attrs:
            ctx = ModContext(self.ctx.env, self.ctx.cost, self.ctx.tracer, self.ctx.devices, attrs)
        new = new_cls(uuid, ctx)
        new.next = old.next
        new.state_update(old)
        self._mods[uuid] = new
        # re-point every upstream that forwarded to the old instance
        for mod in self._mods.values():
            mod.next = [new if n is old else n for n in mod.next]
        self.upgrades_applied += 1
        return new

    def remove(self, uuid: str) -> None:
        self._mods.pop(uuid, None)
