"""The Work Orchestrator: queue→worker assignment and CPU scaling.

A userspace process/thread scheduling framework (Section III-C4, in the
spirit of FlexSC).  ``rebalance(n queues, m workers)`` runs when a new
client connects and every ``interval_ns``.  The policy seam is modular:

- :class:`RoundRobinPolicy` — queues dealt evenly over a fixed worker
  pool (the Fig 5(b) baseline: best bandwidth, terrible tail latency for
  latency-sensitive apps that land behind long compressions).
- :class:`DynamicPolicy` — LabStor's policy: queues are classified into
  latency-sensitive (LQ) and computational (CQ) groups using the LabMods'
  EstProcessingTime and queue depth; the groups are partitioned onto
  *disjoint* worker subsets by solving a balanced multi-knapsack
  (greedy LPT), and the worker count scales with measured load so the
  fewest cores are used within a performance-loss threshold.
"""

from __future__ import annotations

import abc
from typing import Callable

from ..errors import LabStorError
from ..ipc.queue_pair import QueuePair
from ..kernel.cpu import Cpu
from ..sim import Environment, Interrupt
from ..units import msec
from .workers import Worker

__all__ = ["OrchestratorPolicy", "RoundRobinPolicy", "DynamicPolicy", "WorkOrchestrator"]


def _lpt_partition(queues: list[QueuePair], nbins: int) -> list[list[QueuePair]]:
    """Longest-processing-time-first greedy bin packing: heaviest queue to
    the lightest bin — the classic approximation for equal-weight sacks."""
    bins: list[list[QueuePair]] = [[] for _ in range(nbins)]
    weights = [0.0] * nbins

    def load(qp: QueuePair) -> float:
        return qp.est_queued_ns + qp.est_ewma_ns + 1.0

    for qp in sorted(queues, key=lambda q: -load(q)):
        i = min(range(nbins), key=lambda b: (weights[b], b))
        bins[i].append(qp)
        weights[i] += load(qp)
    return bins


class OrchestratorPolicy(abc.ABC):
    name = "abstract"

    @abc.abstractmethod
    def assign(self, queues: list[QueuePair], workers: list[Worker]) -> dict[int, list[QueuePair]]:
        """Return worker_id -> queues. Every queue must be assigned."""

    def target_workers(self, current: int, demand_cores: float, backlog: int,
                       min_workers: int, max_workers: int) -> int:
        """How many workers the pool should have (default: keep current)."""
        return current


class RoundRobinPolicy(OrchestratorPolicy):
    """Deal queues over all workers, ignoring load classes."""

    name = "rr"

    def assign(self, queues, workers):
        out: dict[int, list[QueuePair]] = {w.worker_id: [] for w in workers}
        if not workers:
            return out
        ids = [w.worker_id for w in workers]
        for i, qp in enumerate(sorted(queues, key=lambda q: q.qid)):
            out[ids[i % len(ids)]].append(qp)
        return out


class DynamicPolicy(OrchestratorPolicy):
    """LabStor's dynamic policy: LQ/CQ separation + load-driven scaling."""

    name = "dynamic"

    def __init__(
        self,
        lq_threshold_ns: int = 200_000,
        target_util: float = 0.5,
        loss_threshold: float = 0.25,
    ) -> None:
        #: a queue whose per-request estimate exceeds this is computational
        self.lq_threshold_ns = lq_threshold_ns
        self.target_util = target_util
        self.loss_threshold = loss_threshold

    def classify(self, queues: list[QueuePair]) -> tuple[list[QueuePair], list[QueuePair]]:
        lqs, cqs = [], []
        for qp in queues:
            depth = max(1, qp.sq_depth)
            instantaneous = qp.est_queued_ns / depth if qp.sq_depth else 0.0
            per_req = max(instantaneous, qp.est_ewma_ns)
            (cqs if per_req > self.lq_threshold_ns else lqs).append(qp)
        return lqs, cqs

    def assign(self, queues, workers):
        out: dict[int, list[QueuePair]] = {w.worker_id: [] for w in workers}
        if not workers:
            return out
        lqs, cqs = self.classify(queues)
        ids = [w.worker_id for w in workers]
        if not cqs or not lqs or len(workers) == 1:
            for i, part in enumerate(_lpt_partition(queues, len(workers))):
                out[ids[i]].extend(part)
            return out
        # Dedicate workers to LQs proportionally to their load share, but at
        # least one and at most all-but-one (CQs always keep a worker).
        lq_load = sum(q.est_queued_ns + q.est_ewma_ns for q in lqs) + 1
        cq_load = sum(q.est_queued_ns + q.est_ewma_ns for q in cqs) + 1
        n_lq = round(len(workers) * lq_load / (lq_load + cq_load))
        n_lq = max(1, min(len(workers) - 1, n_lq))
        for i, part in enumerate(_lpt_partition(lqs, n_lq)):
            out[ids[i]].extend(part)
        for i, part in enumerate(_lpt_partition(cqs, len(workers) - n_lq)):
            out[ids[n_lq + i]].extend(part)
        return out

    def target_workers(self, current, demand_cores, backlog, min_workers, max_workers):
        needed = max(min_workers, -(-int(demand_cores * 1000) // int(self.target_util * 1000)))
        if backlog > 64 and needed <= current:
            needed = current + 1  # queues are building up: scale out
        return min(max_workers, needed)


class WorkOrchestrator:
    """Owns the worker pool and drives periodic rebalancing."""

    def __init__(
        self,
        env: Environment,
        cpu: Cpu,
        executor,
        policy: OrchestratorPolicy | None = None,
        *,
        nworkers: int = 1,
        min_workers: int = 1,
        max_workers: int = 16,
        interval_ns: int = msec(1.0),
        tracer=None,
        worker_kw: dict | None = None,
        auto_respawn: bool = True,
    ) -> None:
        self.env = env
        self.cpu = cpu
        self.executor = executor
        self.policy = policy or RoundRobinPolicy()
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.interval_ns = interval_ns
        self.tracer = tracer if tracer is not None else env.tracer
        self.worker_kw = worker_kw or {}
        self.workers: list[Worker] = []
        self.queues: list[QueuePair] = []
        self._next_worker_id = 0
        self._prev_busy: dict[int, int] = {}
        self._epoch_start = env.now
        # busy time burnt this epoch by workers that have since retired
        self._retired_busy_ns = 0
        self.rebalances = 0
        self.paused = False  # set while the Runtime is crashed
        #: replace crashed workers immediately (the built-in reflex).  With
        #: auto_respawn off, a crash only records a dead worker — an
        #: external healer (the repro.ctl control daemon) must respawn.
        self.auto_respawn = auto_respawn
        self.dead_workers = 0  # crashes not yet compensated by a respawn
        for _ in range(nworkers):
            self.spawn_worker()
        self._proc = env.process(self._epoch_loop(), name="orchestrator", daemon=True)

    # -- worker pool ------------------------------------------------------
    def spawn_worker(self) -> Worker:
        if len(self.workers) >= self.max_workers:
            raise LabStorError("worker pool at max_workers")
        w = Worker(
            self.env,
            self._next_worker_id,
            self.cpu,
            self.executor,
            tracer=self.tracer,
            **self.worker_kw,
        )
        self._next_worker_id += 1
        self.workers.append(w)
        self._prev_busy[w.worker_id] = w.core.busy_time()
        return w

    def decommission_worker(self, worker: Worker) -> None:
        """Reassign all the worker's queues, then stop it."""
        self.workers.remove(worker)
        # Fold the retiree's final busy delta into this epoch's measured
        # demand and drop its _prev_busy entry — scale-in must neither
        # under-report demand nor leave stale worker ids behind.
        busy = worker.core.busy_time()
        prev = self._prev_busy.pop(worker.worker_id, busy)
        self._retired_busy_ns += busy - prev
        for qp in list(worker.queues):
            worker.unassign(qp)
        worker.decommission()
        self.cpu.unpin(worker.core_id)
        if self.workers and not self.paused:
            # Immediately hand the retiree's queues to the survivors; waiting
            # for the next epoch would strand them for up to interval_ns.
            self.rebalance()

    def crash_worker(self, worker: Worker, cause: str = "worker crash") -> Worker | None:
        """Kill ``worker`` immediately (fault injection): its in-flight
        requests complete with errors, its queues move to a freshly spawned
        replacement.  Returns the replacement (None while the Runtime is
        down — a crashed system respawns its pool on restart instead — or
        when ``auto_respawn`` is off, where the dead worker waits for an
        external healer)."""
        self.workers.remove(worker)
        busy = worker.core.busy_time()
        prev = self._prev_busy.pop(worker.worker_id, busy)
        self._retired_busy_ns += busy - prev
        for qp in list(worker.queues):
            worker.unassign(qp)
        worker.crash(cause)
        self.cpu.unpin(worker.core_id)
        if self.paused:
            return None
        if not self.auto_respawn:
            self.dead_workers += 1
            if self.workers:
                # survivors adopt the victim's queues; with an empty pool
                # the queues wait for the healer's spawn_worker()
                self.rebalance()
            return None
        replacement = self.spawn_worker()
        self.rebalance()
        return replacement

    def heal_worker(self) -> Worker:
        """Spawn a replacement for a crashed worker and hand it queues
        immediately — the control daemon's liveness actuator when
        ``auto_respawn`` is off."""
        w = self.spawn_worker()
        if self.dead_workers:
            self.dead_workers -= 1
        self.rebalance()
        return w

    # -- queue registration -------------------------------------------------
    def register_queue(self, qp: QueuePair) -> None:
        if qp not in self.queues:
            self.queues.append(qp)
            self.rebalance()

    def unregister_queue(self, qp: QueuePair) -> None:
        if qp in self.queues:
            self.queues.remove(qp)
            for w in self.workers:
                w.unassign(qp)

    def on_client_connect(self, conn) -> None:
        """IpcManager connect callback: adopt the client's primary QP."""
        self.register_queue(conn.qp)

    # -- rebalance ------------------------------------------------------------
    def measured_demand_cores(self) -> float:
        """Cores of CPU the pool consumed in the last epoch."""
        elapsed = max(1, self.env.now - self._epoch_start)
        total = self._retired_busy_ns
        for w in self.workers:
            busy = w.core.busy_time()
            total += busy - self._prev_busy.get(w.worker_id, 0)
        return total / elapsed

    def rebalance(self) -> None:
        self.rebalances += 1
        assignment = self.policy.assign(self.queues, self.workers)
        by_id = {w.worker_id: w for w in self.workers}
        for wid, qps in assignment.items():
            worker = by_id[wid]
            for qp in list(worker.queues):
                if qp not in qps:
                    worker.unassign(qp)
            for qp in qps:
                worker.assign(qp)
        t = self.tracer
        if t.audit:
            t.emit(self.env.now, "san.rebalance", orch=self)

    def _scale(self) -> None:
        demand = self.measured_demand_cores()
        backlog = sum(qp.sq_depth for qp in self.queues)
        target = self.policy.target_workers(
            len(self.workers), demand, backlog, self.min_workers, self.max_workers
        )
        while len(self.workers) < target:
            self.spawn_worker()
        while len(self.workers) > target:
            # retire the worker with the least queued work
            victim = min(self.workers, key=lambda w: sum(q.est_queued_ns for q in w.queues))
            self.decommission_worker(victim)

    def _epoch_loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval_ns)
                if self.paused:
                    continue
                self._scale()
                self.rebalance()
                for w in self.workers:
                    self._prev_busy[w.worker_id] = w.core.busy_time()
                self._retired_busy_ns = 0
                self._epoch_start = self.env.now
        except Interrupt:
            return  # orchestrator shut down

    def shutdown(self) -> None:
        """Stop the epoch loop and retire every worker (system teardown)."""
        self.paused = True  # decommission must not rebalance onto survivors
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("orchestrator shutdown")
        for w in list(self.workers):
            self.decommission_worker(w)

    # -- introspection ----------------------------------------------------
    def worker_count(self) -> int:
        return len(self.workers)

    def assignment_snapshot(self) -> dict[int, list[int]]:
        return {w.worker_id: w.assigned_qids() for w in self.workers}
