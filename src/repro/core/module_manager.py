"""The Module Manager: module registry guardianship and live upgrades.

Implements the two upgrade protocols of Section III-C2:

**Centralized** (updates the Runtime's LabMod instances):

1. the upgrade request lands in the upgrade queue (``modify.mods``);
2. the Runtime admin polls the queue every ``t`` ms;
3. all primary queues are marked UPDATE_PENDING;
4. workers acknowledge by flipping the flag to UPDATE_ACKED and stop
   popping those queues;
5. intermediate queues drain;
6. each upgrade loads the new module image (real chunked reads from the
   module device — the paper found the 1MB-from-NVMe I/O dominates the
   ~5ms upgrade cost), then every registry instance of that LabMod type
   is hot-swapped with StateUpdate;
7. primary queues resume.

**Decentralized** additionally pushes the new image to every connected
client (each client re-maps and relinks it), which is why the paper's
Table I shows it slightly slower per upgrade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Type

from ..devices.base import BlockDevice, BlockRequest, IoOp
from ..errors import UpgradeError
from ..ipc.manager import IpcManager
from ..ipc.queue_pair import QueueFlag
from ..kernel.cpu import CostModel
from ..sim import Environment
from ..units import usec
from .labmod import LabMod
from .registry import ModuleRegistry

__all__ = ["UpgradeRequest", "ModuleManager"]

# module image is read in chunks of this size
_CHUNK = 128 * 1024
# relink/patch cost once the image is in memory (Runtime side)
RELINK_NS = 4_400_000
# per-client re-map + relink on the decentralized path
CLIENT_RELINK_NS = 1_200_000
# per-instance state transfer ("a few bytes of pointers")
STATE_XFER_NS = 2_000


@dataclass
class UpgradeRequest:
    mod_name: str                       # LabMod type to upgrade (class name match)
    new_cls: Type[LabMod]
    module_bytes: int = 1024 * 1024     # size of the new image on the module device
    upgrade_type: str = "centralized"   # or "decentralized"
    image_offset: int = 0               # where the image lives on the module device

    def __post_init__(self) -> None:
        if self.upgrade_type not in ("centralized", "decentralized"):
            raise UpgradeError(f"unknown upgrade type {self.upgrade_type!r}")


@dataclass
class ModuleManager:
    env: Environment
    registry: ModuleRegistry
    ipc: IpcManager
    module_device: BlockDevice | None = None
    cost: CostModel = field(default_factory=CostModel)
    orchestrator: object | None = None  # WorkOrchestrator (kick access)

    def __post_init__(self) -> None:
        self.upgrade_queue: list[UpgradeRequest] = []
        self.upgrades_done = 0

    # -- modify.mods API ----------------------------------------------------
    def request_upgrade(self, upgrade: UpgradeRequest) -> None:
        self.upgrade_queue.append(upgrade)

    def pending(self) -> int:
        return len(self.upgrade_queue)

    # -- protocol -------------------------------------------------------------
    def process_upgrades(self):
        """Process generator: run the full pause/upgrade/resume cycle for
        everything currently queued.  Called by the Runtime admin."""
        if not self.upgrade_queue:
            return 0
        batch, self.upgrade_queue = self.upgrade_queue, []

        primaries = self.ipc.primary_qps()
        for qp in primaries:
            qp.mark_update_pending()
        yield from self._await_acks(primaries)
        for qp in (q for q in self.ipc.qps.values() if not q.primary):
            yield qp.drained()

        for upgrade in batch:
            yield from self._apply(upgrade)
            self.upgrades_done += 1

        for qp in primaries:
            qp.resume()
        self._kick_workers()
        return len(batch)

    def _await_acks(self, primaries):
        spins = 0
        while any(qp.flag is QueueFlag.UPDATE_PENDING for qp in primaries):
            self._kick_workers()
            yield self.env.timeout(usec(10))
            spins += 1
            if spins > 1000:
                # a queue with no live worker can never ack: force it
                for qp in primaries:
                    if qp.flag is QueueFlag.UPDATE_PENDING:
                        qp.ack_update()

    def _kick_workers(self) -> None:
        if self.orchestrator is not None:
            for w in self.orchestrator.workers:
                w.kick()

    def _load_image(self, upgrade: UpgradeRequest):
        """Read the new module image from the module device (chunked)."""
        if self.module_device is None:
            return
        offset = upgrade.image_offset
        remaining = upgrade.module_bytes
        while remaining > 0:
            size = min(_CHUNK, remaining)
            req = BlockRequest(op=IoOp.READ, offset=offset, size=size)
            yield self.module_device.submit(req)
            offset += size
            remaining -= size

    def _apply(self, upgrade: UpgradeRequest):
        yield from self._load_image(upgrade)
        yield self.env.timeout(RELINK_NS)
        swapped = 0
        for uuid in self.registry.uuids():
            inst = self.registry.get(uuid)
            # match the type lineage so repeated upgrades of the same
            # LabMod name keep finding the (already-upgraded) instances
            if any(c.__name__ == upgrade.mod_name for c in type(inst).__mro__):
                yield self.env.timeout(STATE_XFER_NS)
                self.registry.hot_swap(uuid, upgrade.new_cls)
                swapped += 1
        if swapped == 0:
            raise UpgradeError(f"no registry instance of LabMod type {upgrade.mod_name!r}")
        if upgrade.upgrade_type == "decentralized":
            # push the image into every connected client address space
            for _conn in self.ipc.conns.values():
                yield self.env.timeout(CLIENT_RELINK_NS + 2 * self.cost.shm_hop_ns)
