"""Request objects that flow through LabStacks.

A :class:`LabRequest` is what a connector constructs and places on a
queue pair: an operation name, a payload, routing information (stack id /
entry LabMod uuid), and an estimated processing time used by the Work
Orchestrator's queue classification.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["LabRequest"]

_req_ids = itertools.count(1)


@dataclass
class LabRequest:
    op: str                       # e.g. "fs.open", "fs.write", "kvs.put", "io.submit"
    payload: dict[str, Any] = field(default_factory=dict)
    stack_id: Optional[int] = None
    mod_uuid: Optional[str] = None   # entry LabMod (set by the connector)
    client_pid: Optional[int] = None
    est_ns: int = 1000               # EstProcessingTime estimate at submit time
    priority: int = 0
    req_id: int = field(default_factory=lambda: next(_req_ids))
    submit_ns: int = -1
    complete_ns: int = -1
    #: telemetry span (repro.obs.SpanContext), set by the client library
    #: only when the environment's tracer has ``obs`` armed
    obs: Optional[Any] = None

    @property
    def latency_ns(self) -> int:
        if self.complete_ns < 0:
            raise ValueError(f"request {self.req_id} not completed")
        return self.complete_ns - self.submit_ns

    def __repr__(self) -> str:
        return f"<LabRequest #{self.req_id} {self.op} stack={self.stack_id}>"
