"""Kernel Operations (KO) Manager: the Runtime's kernel-module half.

The real LabStor inserts one kernel module that (a) deploys Driver
LabMods against in-kernel device queues, (b) relays messages over a
netlink socket, and (c) spawns/freezes/terminates kthreads for workers
that execute in kernel space.  We model the deployment bookkeeping, the
netlink costs, and the kthread lifecycle flags.
"""

from __future__ import annotations

import enum

from ..devices.base import BlockDevice
from ..errors import LabStorError
from ..sim import Environment

__all__ = ["KthreadState", "KernelOpsManager"]

NETLINK_MSG_NS = 2_500     # one netlink round trip
DEPLOY_DRIVER_NS = 80_000  # registering a Driver LabMod against a device


class KthreadState(enum.Enum):
    RUNNING = "running"
    FROZEN = "frozen"
    TERMINATED = "terminated"


class KernelOpsManager:
    def __init__(self, env: Environment) -> None:
        self.env = env
        self.inserted = False
        self.devices: dict[str, BlockDevice] = {}
        self.deployed_drivers: dict[str, str] = {}   # driver uuid -> device name
        self.kthreads: dict[int, KthreadState] = {}
        self._next_kthread = 0

    def insmod(self):
        """Process generator: insert the LabStor kernel module."""
        yield self.env.timeout(NETLINK_MSG_NS * 4)
        self.inserted = True

    def register_device(self, name: str, device: BlockDevice) -> None:
        self.devices[name] = device

    def deploy_driver(self, driver_uuid: str, device_name: str):
        """Process generator: bind a Driver LabMod to a kernel device."""
        if not self.inserted:
            raise LabStorError("KO Manager kernel module not inserted")
        if device_name not in self.devices:
            raise LabStorError(f"unknown device {device_name!r}")
        yield self.env.timeout(DEPLOY_DRIVER_NS)
        self.deployed_drivers[driver_uuid] = device_name

    def device_for(self, driver_uuid: str) -> BlockDevice:
        try:
            return self.devices[self.deployed_drivers[driver_uuid]]
        except KeyError:
            raise LabStorError(f"driver {driver_uuid!r} not deployed") from None

    # -- kthread lifecycle (in-kernel workers) ------------------------------
    def spawn_kthread(self):
        """Process generator returning the kthread id."""
        yield self.env.timeout(NETLINK_MSG_NS + 15_000)
        kid = self._next_kthread
        self._next_kthread += 1
        self.kthreads[kid] = KthreadState.RUNNING
        return kid

    def freeze_kthread(self, kid: int) -> None:
        self._require(kid)
        self.kthreads[kid] = KthreadState.FROZEN

    def thaw_kthread(self, kid: int) -> None:
        self._require(kid)
        self.kthreads[kid] = KthreadState.RUNNING

    def terminate_kthread(self, kid: int) -> None:
        self._require(kid)
        self.kthreads[kid] = KthreadState.TERMINATED

    def _require(self, kid: int) -> None:
        if kid not in self.kthreads:
            raise LabStorError(f"unknown kthread {kid}")
