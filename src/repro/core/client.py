"""The LabStor client library.

Connects a client process to the Runtime, submits requests to its primary
queue pair, demultiplexes completions, and implements ``Wait`` with crash
detection (Section III-C3): if the Runtime dies mid-request, the client
parks until the administrator restarts it (bounded by
``config.restart_wait_ns``), triggers StateRepair, and then continues —
the request survives in the shared-memory queue.

For stacks mounted with ``exec_mode: sync`` the client bypasses the
Runtime and executes the DAG in its own thread (the decentralized designs
of Section III-B; "Lab-D" in the evaluation).
"""

from __future__ import annotations

import itertools
from typing import Any

from ..errors import LabStorError, RuntimeCrashed, TimeoutError
from ..ipc.queue_pair import Completion
from ..obs.spans import SpanContext
from ..sim import Environment, Interrupt
from .labstack import LabStack
from .requests import LabRequest
from .runtime import LabStorRuntime

__all__ = ["LabStorClient"]

_pids = itertools.count(1000)


class LabStorClient:
    def __init__(self, env: Environment, runtime: LabStorRuntime, pid: int | None = None) -> None:
        self.env = env
        self.runtime = runtime
        self.pid = pid if pid is not None else next(_pids)
        self.conn = None
        self._pending: dict[int, Any] = {}   # req_id -> Event
        self._poller = None
        self.fd_table: dict[int, int] = {}   # fd -> stack_id (GenericFS state)
        self._fd_counter = itertools.count(3)
        self.completed = 0
        #: CQEs the poller drains per reap hop (batch CQ reaping)
        self.reap_batch_max = 16

    # ------------------------------------------------------------------
    def connect(self, ordered: bool = True):
        """Process generator: establish the IPC connection.

        ``ordered=False`` makes the primary queue pair unordered so a
        worker may process this client's requests concurrently (needed
        for fio-style multi-outstanding block I/O; POSIX file streams
        keep the ordered default).
        """
        if self.conn is not None:
            raise LabStorError(f"client {self.pid} already connected")
        self.conn = yield self.env.process(self.runtime.ipc.connect(self.pid, ordered=ordered))
        self._poller = self.env.process(
            self._poll_completions(), name=f"client{self.pid}.poller", daemon=True
        )
        return self.conn

    def disconnect(self) -> None:
        if self.conn is None:
            return
        self.runtime.orchestrator.unregister_queue(self.conn.qp)
        self.runtime.ipc.disconnect(self.pid)
        self.conn = None

    def close(self) -> None:
        """Tear the client down for good: disconnect and stop the
        completion poller daemon.

        Unlike :meth:`disconnect` (which ``execve`` uses and which leaves
        the poller to notice the connection change), close() interrupts
        the poller so the simulated process count cannot grow across
        repeated client construction.  Call it only once the client's
        outstanding requests have drained (``LabStorSystem.shutdown``
        drains first); completions arriving after close are dropped.
        """
        poller, self._poller = self._poller, None
        self.disconnect()
        if poller is not None and poller.is_alive:
            poller.interrupt("client closed")
        self._pending.clear()

    def fork(self, child_pid: int | None = None):
        """Process generator modelling fork/clone: the child reconnects and
        inherits the parent's open fd table (copied via the Runtime)."""
        child = LabStorClient(self.env, self.runtime, pid=child_pid)
        yield self.env.process(child.connect())
        # fd state is copied runtime-side: one message per table
        yield self.env.timeout(2 * self.runtime.cost.shm_hop_ns)
        child.fd_table = dict(self.fd_table)
        return child

    def execve(self):
        """Process generator modelling execve: disconnect, reconnect, and
        reload fd state from the Runtime."""
        saved = dict(self.fd_table)
        self.disconnect()
        yield self.env.process(self.connect())
        yield self.env.timeout(2 * self.runtime.cost.shm_hop_ns)
        self.fd_table = saved

    # ------------------------------------------------------------------
    def alloc_fd(self, stack_id: int) -> int:
        fd = next(self._fd_counter)
        self.fd_table[fd] = stack_id
        return fd

    def release_fd(self, fd: int) -> None:
        self.fd_table.pop(fd, None)

    def stack_for_fd(self, fd: int) -> LabStack:
        try:
            stack_id = self.fd_table[fd]
        except KeyError:
            raise LabStorError(f"client {self.pid}: unknown fd {fd}") from None
        return self.runtime.namespace.get_by_id(stack_id)

    # ------------------------------------------------------------------
    def call(self, stack: LabStack, req: LabRequest, timeout_ns: int | None = None):
        """Process generator: execute ``req`` against ``stack`` and return
        the completion value.  Chooses sync/async by the stack's rules.

        ``timeout_ns`` bounds the async wait: past the deadline the call
        raises :class:`~repro.errors.TimeoutError` and fails the pending
        completion event instead of hanging — a late completion for the
        abandoned request is dropped by the poller."""
        env = self.env
        req.stack_id = stack.stack_id
        req.client_pid = self.pid
        req.submit_ns = env._now
        t = self.runtime.tracer
        sc = None
        if env._obs:
            sc = SpanContext(
                op=req.op, now=env._now, req_id=req.req_id,
                stack_id=stack.stack_id, sync=stack.exec_mode == "sync",
            )
            req.obs = sc
            t.emit(env._now, "obs.open", span=sc)
        if stack.exec_mode == "sync":
            if sc is not None:
                sc.mark_dispatched(env._now)
            try:
                value = yield env.process(self.runtime.execute_sync(req))
            finally:
                req.complete_ns = env._now
                if sc is not None:
                    sc.mark_complete(env._now)
                    sc.close(env._now)
                    t.emit(env._now, "obs.span", span=sc)
            self.completed += 1
            return value
        if self.conn is None:
            raise LabStorError(f"client {self.pid} not connected")
        entry = stack.entry
        req.mod_uuid = entry.uuid
        req.est_ns = entry.est_processing_time(req)
        deadline = env._now + timeout_ns if timeout_ns is not None else None
        ev = env.event()
        self._pending[req.req_id] = ev
        try:
            self.conn.qp.submit(req, pid=self.pid)
            comp = yield from self._wait(ev, deadline)
        except BaseException as exc:
            # abandoned request: forget it so a late completion is dropped
            self._pending.pop(req.req_id, None)
            if isinstance(exc, TimeoutError) and not ev.triggered:
                # fail the pending event so any other waiter sees the
                # timeout, and defuse it explicitly: when the deadline
                # expires during a crash ride-out, no wait condition was
                # ever armed on ev, so there is no stale subscriber left
                # to absorb the failure
                ev.fail(exc)
                ev.defuse()
            if sc is not None:
                sc.close(env._now)
                t.emit(env._now, "obs.span", span=sc)
            raise
        # completion-side cross-core hop (the submit-side hop is traced by
        # the worker's pop); charged in _poll_completions, attributed here
        if env._trace:
            t.emit(env._now, "span", name="ipc", dur_ns=self.runtime.cost.shm_hop_ns)
        self.completed += 1
        if sc is not None:
            sc.add_cat("ipc", self.runtime.cost.shm_hop_ns)
            sc.close(env._now)
            t.emit(env._now, "obs.span", span=sc)
        if comp.error is not None:
            raise comp.error
        return comp.value

    def submit_batch(self, stack: LabStack, reqs: list, timeout_ns: int | None = None):
        """Process generator: submit ``reqs`` against ``stack`` as one batch
        and return per-op :class:`Completion`\\ s in submission order.

        The whole batch rides a single doorbell through the queue pair: the
        client pays the marginal ``batch_op_ns`` per SQE it builds (the
        span's ``batch`` phase), then one ``submit_batch`` call hands the
        lot to the SQ.  Per-op failures — injected rejections, faults,
        timeouts — are captured in ``Completion.error`` rather than raised,
        so one bad op never masks its batch-mates' results.

        On sync stacks (Lab-D, no queues to batch over) the ops simply
        execute in order with the same per-op Completion surface.
        """
        reqs = list(reqs)
        t = self.runtime.tracer
        cost = self.runtime.cost
        if stack.exec_mode == "sync":
            comps = []
            for req in reqs:
                try:
                    value = yield from self.call(stack, req, timeout_ns=timeout_ns)
                except (Interrupt, GeneratorExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - per-op surface
                    comps.append(Completion(req, error=exc))
                else:
                    comps.append(Completion(req, value=value))
            return comps
        if self.conn is None:
            raise LabStorError(f"client {self.pid} not connected")
        events = []
        for req in reqs:
            req.stack_id = stack.stack_id
            req.client_pid = self.pid
            req.mod_uuid = stack.entry.uuid
            req.est_ns = stack.entry.est_processing_time(req)
            req.submit_ns = self.env.now
            if t.obs:
                sc = SpanContext(
                    op=req.op, now=self.env.now, req_id=req.req_id,
                    stack_id=stack.stack_id, sync=False,
                )
                req.obs = sc
                t.emit(self.env.now, "obs.open", span=sc)
            ev = self.env.event()
            self._pending[req.req_id] = ev
            events.append(ev)
            # SQE build: the per-op marginal cost paid before the doorbell
            yield self.env.timeout(cost.batch_op_ns)
        _accepts, rejects = self.conn.qp.submit_batch(reqs, pid=self.pid)
        reject_errors = {id(r): exc for r, exc in rejects}
        deadline = self.env.now + timeout_ns if timeout_ns is not None else None
        comps = []
        for req, ev in zip(reqs, events):
            sc = req.obs
            if id(req) in reject_errors:
                self._pending.pop(req.req_id, None)
                comp = Completion(req, error=reject_errors[id(req)])
            else:
                try:
                    comp = yield from self._wait(ev, deadline)
                except (Interrupt, GeneratorExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - per-op surface
                    self._pending.pop(req.req_id, None)
                    if isinstance(exc, TimeoutError) and not ev.triggered:
                        ev.fail(exc)  # defused by the stale wait condition
                    comp = Completion(req, error=exc)
                else:
                    # completion-side cross-core hop, attributed per op
                    t.emit(self.env.now, "span", name="ipc", dur_ns=cost.shm_hop_ns)
                    self.completed += 1
                    if sc is not None:
                        sc.add_cat("ipc", cost.shm_hop_ns)
            if sc is not None:
                sc.close(self.env.now)
                t.emit(self.env.now, "obs.span", span=sc)
            comps.append(comp)
        return comps

    def call_path(self, path: str, op: str, payload: dict | None = None, **kw):
        """Resolve a path through the namespace and call the owning stack."""
        stack, remainder = self.runtime.namespace.resolve(path)
        req = LabRequest(op=op, payload={"path": remainder, **(payload or {})}, **kw)
        return self.call(stack, req)

    # ------------------------------------------------------------------
    def _wait(self, ev, deadline: int | None = None):
        """Wait with crash detection (the paper's Wait): poll for the
        completion, periodically checking whether the Runtime died.
        ``deadline`` (absolute ns) caps the wait with a TimeoutError."""
        env = self.env
        runtime = self.runtime
        while True:
            if not runtime.online:
                yield from self._ride_out_crash()
            window = runtime.config.restart_wait_ns
            if deadline is not None:
                if env._now >= deadline:
                    raise TimeoutError(
                        f"client {self.pid}: no completion within the op timeout"
                    )
                window = min(window, deadline - env._now)
            result = yield env.any_of([ev, env.timeout(window)])
            if ev in result:
                return ev._value
            # timed out: loop re-checks runtime liveness before waiting again

    def _ride_out_crash(self):
        """Wait for the administrator to restart the Runtime, then repair."""
        restart = self.runtime.online_event()
        deadline = self.env.timeout(self.runtime.config.restart_wait_ns * 10)
        result = yield self.env.any_of([restart, deadline])
        if restart not in result:
            raise RuntimeCrashed(
                f"client {self.pid}: runtime offline beyond the restart window"
            )
        # client library iterates the namespace and repairs every LabMod
        for stack in self.runtime.namespace.stacks():
            for mod in stack.mods.values():
                mod.state_repair()

    def _poll_completions(self):
        qp = self.conn.qp
        try:
            while self.conn is not None and self.conn.qp is qp:
                # batch CQ reap: one hop drains whatever the CQ holds
                comps = yield from qp.pop_completion_batch(self.pid, self.reap_batch_max)
                pending_pop = self._pending.pop
                for comp in comps:
                    ev = pending_pop(comp.request.req_id, None)
                    if ev is not None and not ev._triggered:
                        ev.succeed(comp)
        except Interrupt:
            return  # client closed: stop reaping
