"""LabStor core: LabMods, LabStacks, the Runtime, Orchestrator, Client."""

from .client import LabStorClient
from .komgr import KernelOpsManager, KthreadState
from .labmod import ExecContext, LabMod, ModContext
from .labstack import LabStack, NodeSpec, StackRules, StackSpec
from .module_manager import ModuleManager, UpgradeRequest
from .namespace import StackNamespace
from .orchestrator import DynamicPolicy, OrchestratorPolicy, RoundRobinPolicy, WorkOrchestrator
from .registry import ModuleRegistry
from .requests import LabRequest
from .runtime import LabStorRuntime, RuntimeConfig
from .spec import SpecParseError, dump_spec, parse_spec
from .workers import Worker

__all__ = [
    "LabMod",
    "ModContext",
    "ExecContext",
    "LabRequest",
    "ModuleRegistry",
    "LabStack",
    "StackSpec",
    "NodeSpec",
    "StackRules",
    "StackNamespace",
    "Worker",
    "WorkOrchestrator",
    "OrchestratorPolicy",
    "RoundRobinPolicy",
    "DynamicPolicy",
    "ModuleManager",
    "UpgradeRequest",
    "KernelOpsManager",
    "KthreadState",
    "LabStorRuntime",
    "RuntimeConfig",
    "LabStorClient",
    "parse_spec",
    "dump_spec",
    "SpecParseError",
]
