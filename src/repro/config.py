"""One typed accessor for the ``REPRO_*`` process-environment seams.

Three subsystems grew their own environment-variable switches over the
PR sequence — ``REPRO_SANITIZE`` (repro.sim.sanitizer), ``REPRO_TELEMETRY``
(repro.obs.telemetry) and ``REPRO_FAULTS`` (repro.faults.plan) — each
with its own ad-hoc parse.  This module is now the single parse site:
:func:`current` reads the process environment once per call and returns a
frozen :class:`ReproConfig`, and the legacy helpers
(``sanitize_requested()``, ``telemetry_requested()``, ``plan_from_env()``)
delegate here, so old call sites keep working unchanged.

Precedence (documented contract, enforced by the facades):

1. **Explicit constructor arguments win** — ``LabStorSystem(telemetry=...,
   fault_plan=...)`` and ``Sanitizer().install(env)`` override whatever
   the environment says.
2. **Environment variables** apply only when the facade was given ``None``
   (the "defer to the environment" value).
3. **Unset / empty / "0"** means off for the boolean seams and "no plan"
   for ``REPRO_FAULTS``.

The environment is re-read on every :func:`current` call (no import-time
caching) so tests can monkeypatch ``os.environ`` freely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = [
    "ReproConfig",
    "current",
    "SANITIZE_ENV_VAR",
    "TELEMETRY_ENV_VAR",
    "FAULTS_ENV_VAR",
]

#: arm the strict sanitizer on every facade-built environment
SANITIZE_ENV_VAR = "REPRO_SANITIZE"
#: arm span telemetry on every facade-built environment
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"
#: a fault plan in ``FaultPlan.parse`` text form, armed on every system
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: values meaning "off" for every seam (empty string and literal zero)
_OFF = ("", "0")


def _flag(environ: Mapping[str, str], name: str) -> bool:
    return environ.get(name, "") not in _OFF


@dataclass(frozen=True)
class ReproConfig:
    """A typed snapshot of the ``REPRO_*`` environment seams."""

    sanitize: bool = False
    telemetry: bool = False
    faults: Optional[str] = None  # FaultPlan.parse text, None = no plan

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "ReproConfig":
        """Parse one environment mapping (default: ``os.environ``)."""
        env = os.environ if environ is None else environ
        faults_text = env.get(FAULTS_ENV_VAR, "")
        return cls(
            sanitize=_flag(env, SANITIZE_ENV_VAR),
            telemetry=_flag(env, TELEMETRY_ENV_VAR),
            faults=None if faults_text in _OFF else faults_text,
        )


def current(environ: Mapping[str, str] | None = None) -> ReproConfig:
    """The process's current ``REPRO_*`` configuration (re-read per call)."""
    return ReproConfig.from_env(environ)
