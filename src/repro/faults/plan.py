"""Declarative fault schedules: what breaks, where, and when.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries.  Each spec
names an injector ``kind``, a trigger (``at=``/``every=`` in virtual ns,
or a per-operation ``probability``), and a scope (``device=``,
``worker=``, ``queue=``, or ``module=``).  Plans are pure data: the
:class:`~repro.faults.engine.FaultEngine` compiles them onto the live
system's seams, drawing every probabilistic decision from one seeded RNG
stream (``rngs.stream("faults")``) so a plan replays bit-identically
under :mod:`repro.sim.check`.

Injector kinds:

============== =========================================================
media_error     fail a device command with :class:`~repro.errors.MediaError`
                (EIO); scope by ``op=read|write`` and ``offset``/``length``
latency         add ``extra_ns`` to a device command's service time
stall           freeze a device's service starts for ``extra_ns`` from ``at``
torn_write      power-cut a WRITE: persist a sector-aligned prefix chosen
                by the RNG, then fail the command
worker_crash    kill a worker mid-request; the orchestrator respawns one
power_cut       :meth:`Runtime.crash`; ``restart_after`` schedules the
                administrator's restart
qp_reject       reject a queue-pair submission with
                :class:`~repro.errors.QueueFull` (full-SQ backpressure)
============== =========================================================

The ``REPRO_FAULTS`` environment variable carries a plan in a compact
text form — semicolon-separated specs of ``kind:key=value,key=value``
with ``us``/``ms``/``s`` suffixes on durations::

    REPRO_FAULTS="media_error:device=nvme,probability=0.02;power_cut:at=5ms,restart_after=10ms"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import FAULTS_ENV_VAR
from ..config import current as _config
from ..errors import LabStorError

__all__ = ["FaultSpec", "FaultPlan", "FAULTS_ENV_VAR", "plan_from_env", "KINDS"]

#: injector kinds that decide per device operation
DEVICE_KINDS = ("media_error", "latency", "torn_write")
#: injector kinds driven by virtual-time schedules
TIMED_KINDS = ("stall", "worker_crash", "power_cut")
#: injector kinds hooked into queue-pair submission
QP_KINDS = ("qp_reject",)
KINDS = DEVICE_KINDS + TIMED_KINDS + QP_KINDS

_NS_SUFFIXES = (("us", 1_000), ("ms", 1_000_000), ("ns", 1), ("s", 1_000_000_000))


def _parse_ns(text: str) -> int:
    for suffix, mult in _NS_SUFFIXES:
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * mult)
    return int(text)


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.  Frozen: plans are shareable and hashable-ish."""

    kind: str
    # trigger --------------------------------------------------------------
    at: Optional[int] = None            # one-shot, virtual ns
    every: Optional[int] = None         # periodic, virtual ns
    probability: float = 0.0            # per-operation (device / qp kinds)
    count: Optional[int] = None         # max injections (None = unbounded)
    # scope ----------------------------------------------------------------
    device: Optional[str] = None        # device name ("nvme", ...)
    worker: Optional[int] = None        # worker id (worker_crash)
    queue: Optional[int] = None         # queue-pair qid (qp_reject)
    module: Optional[str] = None        # LabMod uuid; resolved to its device
    op: Optional[str] = None            # "read" | "write" (device kinds)
    offset: Optional[int] = None        # byte range start (device kinds)
    length: Optional[int] = None        # byte range length (device kinds)
    # parameters -----------------------------------------------------------
    extra_ns: int = 0                   # latency spike / stall duration
    restart_after: Optional[int] = None  # power_cut: auto-restart delay, ns

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise LabStorError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise LabStorError(f"{self.kind}: probability must be in [0, 1]")
        if self.at is None and self.every is None and self.probability == 0.0:
            raise LabStorError(
                f"{self.kind}: needs a trigger (at=, every= or probability=)"
            )
        if self.kind in TIMED_KINDS and self.at is None and self.every is None:
            raise LabStorError(f"{self.kind}: timed injector needs at= or every=")
        if self.kind in ("latency", "stall") and self.extra_ns <= 0:
            raise LabStorError(f"{self.kind}: needs extra_ns > 0")

    def matches_io(self, op_name: str, offset: int, size: int) -> bool:
        """Does a device command fall inside this spec's scope?"""
        if self.op is not None and self.op != op_name:
            return False
        if self.offset is not None:
            lo = self.offset
            hi = lo + (self.length if self.length is not None else 1)
            if offset + size <= lo or offset >= hi:
                return False
        return True

    @property
    def max_fires(self) -> Optional[int]:
        """Injection budget: explicit ``count`` wins; a bare ``at=`` is
        one-shot; ``every=``/``probability`` are unbounded by default."""
        if self.count is not None:
            return self.count
        if self.at is not None and self.every is None:
            return 1
        return None


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs (order fixes RNG draw order)."""

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def extend(self, *specs: FaultSpec) -> "FaultPlan":
        return FaultPlan(self.specs + tuple(specs))

    # -- builders ---------------------------------------------------------
    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(tuple(specs))

    @classmethod
    def power_cut_scenario(
        cls,
        *,
        at: int,
        device: str = "nvme",
        restart_after: Optional[int] = None,
    ) -> "FaultPlan":
        """The canned crash-consistency scenario: the first WRITE serviced
        at/after ``at`` is torn at a sector boundary, and the Runtime
        power-cuts at the same instant (restarting after ``restart_after``
        if given)."""
        return cls.of(
            FaultSpec(kind="torn_write", at=at, device=device, op="write"),
            FaultSpec(kind="power_cut", at=at, restart_after=restart_after),
        )

    # -- text form (REPRO_FAULTS) -----------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the compact ``kind:key=value,...;kind:...`` plan syntax."""
        specs: list[FaultSpec] = []
        for chunk in filter(None, (c.strip() for c in text.split(";"))):
            kind, _, args = chunk.partition(":")
            kw: dict = {}
            for pair in filter(None, (p.strip() for p in args.split(","))):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise LabStorError(f"fault spec {chunk!r}: expected key=value, got {pair!r}")
                key = key.strip()
                value = value.strip()
                if key in ("at", "every", "extra_ns", "restart_after"):
                    kw[key] = _parse_ns(value)
                elif key == "probability":
                    kw[key] = float(value)
                elif key in ("worker", "queue", "count", "offset", "length"):
                    kw[key] = int(value)
                elif key in ("device", "module", "op"):
                    kw[key] = value
                else:
                    raise LabStorError(f"fault spec {chunk!r}: unknown key {key!r}")
            specs.append(FaultSpec(kind=kind.strip(), **kw))
        return cls(tuple(specs))

    def to_text(self) -> str:
        """Inverse of :meth:`parse` (used to ship plans through env vars)."""
        chunks = []
        for s in self.specs:
            kv = []
            for f in (
                "at", "every", "probability", "count", "device", "worker",
                "queue", "module", "op", "offset", "length", "extra_ns",
                "restart_after",
            ):
                v = getattr(s, f)
                if v is None or (f == "probability" and v == 0.0) or (f == "extra_ns" and v == 0):
                    continue
                kv.append(f"{f}={v}")
            chunks.append(f"{s.kind}:{','.join(kv)}")
        return ";".join(chunks)


def plan_from_env() -> Optional[FaultPlan]:
    """Build a plan from ``REPRO_FAULTS``; None when unset/empty/"0".

    The parse of the environment itself lives in :mod:`repro.config`
    (one parse site for every ``REPRO_*`` seam); this helper only turns
    the text into a typed :class:`FaultPlan`."""
    text = _config().faults
    if text is None:
        return None
    return FaultPlan.parse(text)
