"""Resilience policies: bounded retries with deterministic backoff.

A :class:`RetryPolicy` drives an *attempt factory* — a callable returning
a fresh process generator per attempt — so every retry is a brand-new
request (new ``req_id``): a timed-out attempt's late completion can never
be mistaken for its retry's.  Backoff is exponential in virtual
nanoseconds, so it is exactly reproducible and costs nothing on the host.

Wired into :class:`~repro.mods.generic_fs.GenericFS` /
:class:`~repro.mods.generic_kvs.GenericKVS` (pass ``retry=``) and the
kernel baseline (:class:`repro.kernel.interfaces.IoInterface`) so
fault-tolerance comparisons stay apples-to-apples.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Tuple, Type

from ..errors import (
    MediaError,
    QueueFull,
    RetriesExhausted,
    TimeoutError,
    WorkerCrashed,
)

__all__ = ["RetryPolicy", "DEFAULT_RETRYABLE"]

#: transient failures a retry can plausibly outlive; module bugs
#: (FsError, LabStorError, ...) are not retried
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    MediaError,
    QueueFull,
    TimeoutError,
    WorkerCrashed,
)


class RetryPolicy:
    """Bounded retries + per-op timeout, deterministic in virtual time."""

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        backoff_ns: int = 20_000,
        backoff_factor: int = 2,
        max_backoff_ns: int = 5_000_000,
        timeout_ns: Optional[int] = None,
        retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_ns = backoff_ns
        self.backoff_factor = backoff_factor
        self.max_backoff_ns = max_backoff_ns
        #: per-attempt deadline handed to :meth:`LabStorClient.call`
        self.timeout_ns = timeout_ns
        self.retry_on = retry_on
        self.retries = 0
        self.gave_up = 0

    def backoff(self, retry_index: int) -> int:
        """Virtual-ns delay before retry number ``retry_index`` (0-based)."""
        return min(
            self.max_backoff_ns,
            self.backoff_ns * self.backoff_factor ** retry_index,
        )

    def run(self, env, attempt: Callable[[int], Generator]):
        """Process generator: drive ``attempt(n)`` until it returns,
        retrying retryable failures with backoff; raises
        :class:`RetriesExhausted` once the budget is spent."""
        last: Optional[BaseException] = None
        for n in range(self.max_attempts):
            if n:
                delay = self.backoff(n - 1)
                if delay:
                    yield env.timeout(delay)
            try:
                return (yield from attempt(n))
            except self.retry_on as exc:  # noqa: PERF203 - the seam is the point
                last = exc
                if n + 1 == self.max_attempts:
                    continue  # budget spent: this failure is a giveup, not a retry
                self.retries += 1
                t = env.tracer
                if t.enabled:
                    t.emit(env.now, "fault.retry",
                           attempt=n + 1, error=type(exc).__name__)
        self.gave_up += 1
        t = env.tracer
        if t.enabled:
            t.emit(env.now, "fault.giveup",
                   attempts=self.max_attempts, error=type(last).__name__)
        raise RetriesExhausted(
            f"gave up after {self.max_attempts} attempts; last error: {last!r}"
        ) from last
