"""Crash-consistency checking for LabFS power-cut scenarios.

LabFS's durability contract (Section III-E): metadata mutations append to
the per-worker metadata log *before* the operation acknowledges, data
blocks are written to the backing store before ``SET_SIZE`` is logged,
and the in-memory inode hashmap is rebuilt from the log by StateRepair.
After an injected power cut + remount, the recovered namespace must
therefore be **prefix-consistent** with the acknowledged operations:

- every acknowledged write is fully readable, byte-exact;
- an operation in flight at the cut may be absent, or partially present:
  its file size never advances past the pre-crash size, and any torn
  data block holds ``new[:k] + old[k:]`` for one sector-aligned ``k`` —
  never interleaved garbage.

The checker is driven by the workload: ``begin(path, new, old)`` before
issuing a write, ``ack(path)`` when the client sees the completion, then
``verify(gfs)`` (a process generator) after remount.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConsistencyError, FsError

__all__ = ["CrashConsistencyChecker", "torn_prefix_len"]

SECTOR = 512


def torn_prefix_len(old: bytes, new: bytes, recovered: bytes) -> Optional[int]:
    """Return the sector-aligned ``k`` with ``recovered == new[:k] + old[k:]``,
    or None if no such prefix exists (i.e. the state is torn-inconsistent).

    ``old`` is zero-extended to the compared length (unwritten blocks read
    back as zeros)."""
    n = len(recovered)
    padded_old = old[:n] + b"\x00" * max(0, n - len(old))
    padded_new = new[:n] + b"\x00" * max(0, n - len(new))
    for k in range(0, n + SECTOR, SECTOR):
        k = min(k, n)
        if recovered == padded_new[:k] + padded_old[k:]:
            return k
        if k == n:
            break
    return None


class CrashConsistencyChecker:
    """Records acknowledged vs in-flight writes; verifies after remount."""

    def __init__(self) -> None:
        #: path -> durable (acknowledged) content
        self.acked: dict[str, bytes] = {}
        #: path -> (attempted content, pre-write content) still unacked
        self.pending: dict[str, tuple[bytes, bytes]] = {}
        self.report: dict = {}

    # -- workload-side recording ------------------------------------------
    def begin(self, path: str, new: bytes, old: bytes = b"") -> None:
        """A write of ``new`` over ``old`` is about to be issued."""
        self.pending[path] = (new, old)

    def ack(self, path: str) -> None:
        """The client saw the completion: the write is now durable."""
        new, _old = self.pending.pop(path)
        self.acked[path] = new

    # -- snapshot plumbing -------------------------------------------------
    def export_state(self) -> dict:
        """Picklable acked/pending ledger (rides along on snapshot-tree
        nodes so every branch can be audited after a rewind)."""
        return {"acked": dict(self.acked), "pending": dict(self.pending)}

    @classmethod
    def load_state(cls, state: dict) -> "CrashConsistencyChecker":
        c = cls()
        c.acked = dict(state["acked"])
        c.pending = {p: tuple(v) for p, v in state["pending"].items()}
        return c

    # -- post-remount verification ----------------------------------------
    def verify(self, gfs):
        """Process generator: read the recovered namespace through ``gfs``
        and assert prefix consistency.  Returns a report dict; raises
        :class:`~repro.errors.ConsistencyError` on any violation."""
        report = {"acked_ok": 0, "pending_absent": 0, "pending_torn": 0}
        for path, want in sorted(self.acked.items()):
            st = yield from gfs.stat(path)
            if st["size"] != len(want):
                raise ConsistencyError(
                    f"{path}: acknowledged size {len(want)} recovered as {st['size']}"
                )
            got = yield from gfs.read_file(path)
            if got != want:
                raise ConsistencyError(
                    f"{path}: acknowledged content lost "
                    f"(first divergence at byte {_first_diff(got, want)})"
                )
            report["acked_ok"] += 1
        for path, (new, old) in sorted(self.pending.items()):
            try:
                st = yield from gfs.stat(path)
            except FsError:
                report["pending_absent"] += 1  # never reached the log: fine
                continue
            # size must not have advanced: SET_SIZE logs only after the
            # data forward completes, which the power cut interrupted
            if st["size"] > max(len(old), len(new)):
                raise ConsistencyError(
                    f"{path}: unacknowledged write advanced size to {st['size']}"
                )
            if st["is_dir"]:
                raise ConsistencyError(f"{path}: recovered as a directory")
            got = b"" if st["size"] == 0 else (yield from gfs.read_file(path))
            k = torn_prefix_len(old, new, got)
            if k is None:
                raise ConsistencyError(
                    f"{path}: torn write is not a sector-aligned prefix "
                    f"(len={len(got)})"
                )
            report["pending_torn"] += 1
            report.setdefault("torn_prefixes", {})[path] = k
        self.report = report
        return report


    def verify_torn_blocks(self, labfs, store) -> dict[str, int]:
        """Device-level prefix check for offset-0 in-flight writes.

        The FS-level :meth:`verify` cannot see torn data past the logged
        file size, so this inspects the backing ``store`` directly: for
        every pending write whose blocks were mapped before the cut, the
        raw bytes must equal ``new[:k] + old[k:]`` for one sector-aligned
        ``k``.  Returns ``{path: k}``; raises on interleaved garbage."""
        out: dict[str, int] = {}
        for path, (new, old) in sorted(self.pending.items()):
            ino = labfs.by_path.get(path)
            if ino is None:
                continue
            inode = labfs.inodes[ino]
            if not inode.blocks:
                continue
            raw = bytearray(len(new))
            block = 4096
            for page in range(0, (len(new) + block - 1) // block):
                dev_off = inode.blocks.get(page)
                if dev_off is None:
                    continue  # allocation never reached this page
                chunk = store.read(dev_off, block)
                raw[page * block : (page + 1) * block] = chunk
            k = torn_prefix_len(old, new, bytes(raw[: len(new)]))
            if k is None:
                raise ConsistencyError(
                    f"{path}: device blocks hold interleaved data, "
                    "not a sector-aligned torn prefix"
                )
            out[path] = k
        self.report.setdefault("torn_prefixes", {}).update(out)
        return out


def _first_diff(a: bytes, b: bytes) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))
