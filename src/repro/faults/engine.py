"""The fault engine: compiles a :class:`FaultPlan` onto the live seams.

Injection sites (all pre-existing seams; none knows about this module):

- :class:`~repro.devices.base.BlockDevice` — ``device.faults`` is checked
  with one ``is not None`` branch in ``_service``; the engine installs a
  :class:`DeviceFaultInjector` only on devices a spec actually scopes, so
  a system without a plan keeps the seed's fast path bit-for-bit.
- :class:`~repro.ipc.queue_pair.QueuePair` — ``qp.reject_hook`` raises
  :class:`~repro.errors.QueueFull` before any conservation counter moves.
- :class:`~repro.core.orchestrator.WorkOrchestrator.crash_worker` — kills
  a worker mid-request and respawns a replacement.
- :class:`~repro.core.runtime.LabStorRuntime.crash` / ``restart`` — the
  power-cut injector, optionally scheduling the administrator's restart.

Determinism: every probabilistic decision draws from the single seeded
stream the engine was built with, in simulation order; timed injections
ride ordinary DES timeouts.  The same (plan, seed, workload) triple
therefore replays to an identical trace digest under
``python -m repro.sim.check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import LabStorError, MediaError, QueueFull
from .plan import DEVICE_KINDS, QP_KINDS, TIMED_KINDS, FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..system import LabStorSystem

__all__ = ["FaultEngine", "DeviceFaultInjector", "QpSubmitInjector", "SECTOR"]

#: torn writes truncate at this boundary (the device's atomic write unit)
SECTOR = 512


class _SpecState:
    """Trigger bookkeeping for one spec: budget + next periodic deadline."""

    __slots__ = ("spec", "remaining", "next_at")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.remaining = spec.max_fires
        self.next_at = spec.at if spec.at is not None else (spec.every or 0)

    def should_fire(self, now: int, rng) -> bool:
        """Evaluate the trigger (consuming budget/period/RNG as needed)."""
        s = self.spec
        if self.remaining == 0:
            return False
        if s.probability > 0.0:
            if s.at is not None and now < s.at:
                return False  # not armed yet
            if float(rng.random()) >= s.probability:
                return False
        elif s.every is not None:
            if now < self.next_at:
                return False
            # consume the period containing `now`; re-arm for the next one
            self.next_at += ((now - self.next_at) // s.every + 1) * s.every
        else:  # pure at= trigger: first matching occasion at/after `at`
            if now < s.at:
                return False
        if self.remaining is not None:
            self.remaining -= 1
        return True


@dataclass
class FaultAction:
    """What the device service loop must do to the current command."""

    extra_ns: int = 0
    error: Optional[BaseException] = None
    torn_bytes: Optional[int] = None


class DeviceFaultInjector:
    """Per-device decision point, consulted once per serviced command."""

    def __init__(self, engine: "FaultEngine", device_name: str) -> None:
        self._engine = engine
        self.device_name = device_name
        self._states: list[_SpecState] = []
        #: service starts are frozen until this virtual instant (stall)
        self.stall_until = 0

    def add(self, spec: FaultSpec) -> None:
        self._states.append(_SpecState(spec))

    def before_service(self, req) -> Optional[FaultAction]:
        """Decide the fate of one command; None = untouched."""
        engine = self._engine
        now = engine.env.now
        op_name = req.op.value
        action: Optional[FaultAction] = None
        for st in self._states:
            s = st.spec
            if s.kind == "torn_write" and op_name != "write":
                continue
            if not s.matches_io(op_name, req.offset, req.size):
                continue
            if not st.should_fire(now, engine.rng):
                continue
            if action is None:
                action = FaultAction()
            if s.kind == "latency":
                action.extra_ns += s.extra_ns
                engine.record("latency", device=self.device_name,
                              op=op_name, extra_ns=s.extra_ns)
            elif s.kind == "media_error":
                if action.error is None:
                    action.error = MediaError(
                        f"injected EIO on {op_name} @ {req.offset}",
                        device=self.device_name,
                    )
                engine.record("media_error", device=self.device_name,
                              op=op_name, offset=req.offset)
            elif s.kind == "torn_write":
                sectors = req.size // SECTOR
                keep = int(engine.rng.integers(0, sectors)) * SECTOR if sectors else 0
                action.torn_bytes = keep
                action.error = MediaError(
                    f"injected torn write @ {req.offset}: "
                    f"{keep}/{req.size} bytes persisted",
                    device=self.device_name,
                )
                engine.record("torn_write", device=self.device_name,
                              offset=req.offset, kept=keep, size=req.size)
        return action


class QpSubmitInjector:
    """Submission-side rejection hook shared by all scoped queue pairs."""

    def __init__(self, engine: "FaultEngine") -> None:
        self._engine = engine
        self._states: list[_SpecState] = []

    def add(self, spec: FaultSpec) -> None:
        self._states.append(_SpecState(spec))

    def __call__(self, qp, request) -> None:
        engine = self._engine
        now = engine.env.now
        for st in self._states:
            s = st.spec
            if s.queue is not None and s.queue != qp.qid:
                continue
            if not st.should_fire(now, engine.rng):
                continue
            engine.record("qp_reject", qp=qp.qid)
            raise QueueFull(
                f"QP {qp.qid}: injected submission rejection (SQ backpressure)"
            )


class FaultEngine:
    """Owns the plan's runtime state; one per :class:`LabStorSystem`."""

    def __init__(self, env, plan: FaultPlan, rng) -> None:
        self.env = env
        self.plan = plan
        self.rng = rng
        self.system: Optional["LabStorSystem"] = None
        self.injected: dict[str, int] = {}
        self._device_injectors: dict[int, DeviceFaultInjector] = {}  # id(dev)
        self._qp_injector: Optional[QpSubmitInjector] = None

    # ------------------------------------------------------------------
    def install(self, system: "LabStorSystem") -> "FaultEngine":
        if system.env is not self.env:
            raise LabStorError("fault engine bound to a different environment")
        self.system = system
        for spec in self.plan:
            self._add_spec(spec)
        return self

    def extend(self, plan: FaultPlan) -> "FaultEngine":
        """Wire additional specs into an already-installed engine."""
        self.plan = self.plan.extend(*plan.specs)
        for spec in plan:
            self._add_spec(spec)
        return self

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def stalled_devices(self, now: int | None = None) -> list[str]:
        """Names of devices whose injected stall is still holding service
        starts frozen at ``now`` (default: the current virtual instant).
        Read-only introspection for health checks — the control daemon's
        DeviceStall check pairs this with the per-window device-op rate."""
        if now is None:
            now = self.env.now
        return sorted(
            inj.device_name
            for inj in self._device_injectors.values()
            if inj.stall_until > now
        )

    def record(self, kind: str, **fields) -> None:
        """Count an injection and publish it on the trace seam."""
        self.injected[kind] = self.injected.get(kind, 0) + 1
        t = self.env.tracer
        if t.enabled:
            t.emit(self.env.now, "fault.inject", kind=kind, **fields)

    # ------------------------------------------------------------------
    # spec wiring
    # ------------------------------------------------------------------
    def _add_spec(self, spec: FaultSpec) -> None:
        if spec.kind in DEVICE_KINDS:
            for dev in self._scoped_devices(spec):
                self._injector_for(dev).add(spec)
        elif spec.kind in QP_KINDS:
            self._wire_qp_spec(spec)
        elif spec.kind in TIMED_KINDS:
            self.env.process(
                self._timed_driver(spec),
                name=f"faults.{spec.kind}@{spec.at if spec.at is not None else spec.every}",
                daemon=True,
            )
        else:  # pragma: no cover - FaultSpec validates kinds
            raise LabStorError(f"unroutable fault kind {spec.kind!r}")

    def _scoped_devices(self, spec: FaultSpec) -> list:
        system = self.system
        if spec.module is not None:
            mod = system.runtime.registry.get(spec.module)
            dev = getattr(mod, "device", None)
            if dev is None:
                raise LabStorError(
                    f"fault spec {spec.kind}: module {spec.module!r} drives no device"
                )
            return [dev]
        if spec.device is not None:
            try:
                return [system.devices[spec.device]]
            except KeyError:
                raise LabStorError(
                    f"fault spec {spec.kind}: unknown device {spec.device!r}; "
                    f"system has {sorted(system.devices)}"
                ) from None
        return list(system.devices.values())

    def _injector_for(self, dev) -> DeviceFaultInjector:
        inj = self._device_injectors.get(id(dev))
        if inj is None:
            inj = DeviceFaultInjector(self, dev.name)
            self._device_injectors[id(dev)] = inj
            dev.faults = inj
        return inj

    def _wire_qp_spec(self, spec: FaultSpec) -> None:
        if self._qp_injector is None:
            inj = QpSubmitInjector(self)
            self._qp_injector = inj
            ipc = self.system.runtime.ipc
            for conn in ipc.conns.values():
                conn.qp.reject_hook = inj
            ipc.on_connect(lambda conn: setattr(conn.qp, "reject_hook", inj))
        self._qp_injector.add(spec)

    # ------------------------------------------------------------------
    # timed injectors
    # ------------------------------------------------------------------
    def _timed_driver(self, spec: FaultSpec):
        remaining = spec.max_fires
        first = spec.at if spec.at is not None else spec.every
        if first > self.env.now:
            yield self.env.timeout(first - self.env.now)
        while remaining is None or remaining > 0:
            self._fire_timed(spec)
            if remaining is not None:
                remaining -= 1
            if spec.every is None:
                return
            yield self.env.timeout(spec.every)

    def _fire_timed(self, spec: FaultSpec) -> None:
        if spec.kind == "stall":
            for dev in self._scoped_devices(spec):
                inj = self._injector_for(dev)
                inj.stall_until = max(inj.stall_until, self.env.now + spec.extra_ns)
                self.record("stall", device=dev.name, extra_ns=spec.extra_ns)
        elif spec.kind == "worker_crash":
            self._crash_worker(spec)
        elif spec.kind == "power_cut":
            self._power_cut(spec)

    def _crash_worker(self, spec: FaultSpec) -> None:
        runtime = self.system.runtime
        orch = runtime.orchestrator
        if not runtime.online or not orch.workers:
            return  # nothing left to kill; the schedule just passes
        if spec.worker is not None:
            victims = [w for w in orch.workers if w.worker_id == spec.worker]
            if not victims:
                return  # scoped worker already gone
            victim = victims[0]
        else:
            victim = orch.workers[int(self.rng.integers(0, len(orch.workers)))]
        self.record("worker_crash", worker=victim.worker_id,
                    inflight=victim.inflight)
        orch.crash_worker(victim, cause=f"injected crash of worker {victim.worker_id}")

    def _power_cut(self, spec: FaultSpec) -> None:
        runtime = self.system.runtime
        if not runtime.online:
            return  # already down; a second cut is a no-op
        self.record("power_cut", restart_after=spec.restart_after)
        runtime.crash()
        if spec.restart_after is not None:
            self.env.process(
                self._restart_later(spec.restart_after),
                name="faults.administrator",
                daemon=True,
            )

    def _restart_later(self, delay: int):
        yield self.env.timeout(delay)
        if not self.system.runtime.online:
            yield self.env.process(self.system.runtime.restart())
