"""Fault/recovery report CLI.

Runs the canned power-cut chaos scenario (or a ``REPRO_FAULTS``-syntax
plan given with ``--plan``) against a retrying GenericFS, then prints
what the fault engine injected, what the retry layer absorbed, how long
the runtime took to come back, and the crash-consistency audit — all
sourced from the :mod:`repro.obs` telemetry registry.

Usage::

    python -m repro.faults.report                  # canned power-cut chaos
    python -m repro.faults.report --writes 200 --seed 7
    python -m repro.faults.report --plan "media_error:device=nvme,probability=0.2"
    python -m repro.faults.report --json
"""

from __future__ import annotations

import json
import sys

from ..experiments.report import format_kv
from ..units import msec
from .plan import FaultPlan

__all__ = ["run_report", "main"]


def run_report(*, nwrites: int = 160, seed: int = 0,
               plan: FaultPlan | None = None) -> dict:
    """Run one chaos pass and return the combined metrics dict."""
    from ..experiments.fault_recovery import run_fault_recovery

    if plan is not None:
        return run_fault_recovery(nwrites=nwrites, seed=seed, plan=plan)
    return run_fault_recovery(
        nwrites=nwrites, seed=seed,
        media_error_p=0.10, latency_p=0.10, qp_reject_p=0.03,
        power_cut=True, power_cut_at_ns=int(msec(2.0)),
        restart_after_ns=int(msec(1.0)),
    )


def _format(result: dict) -> str:
    cons = result["consistency"]
    pairs = {
        "writes acked": f'{result["acked"]}/{result["nwrites"]}'
                        f' ({result["gave_up"]} gave up)',
        "goodput": f'{result["goodput_kops_s"]:.2f} kops/s'
                   f' over {result["elapsed_s"] * 1e3:.2f} ms',
        "faults injected": result["injected"],
        "retries / giveups": f'{result["retries"]} / {result["giveups"]}',
        "runtime crashes": result["crashes"],
        "recovery time": f'{result["recovery_ms"]:.2f} ms (p50)',
        "consistency": f'{cons["acked_ok"]} acked ok, '
                       f'{cons["pending_absent"]} pending absent, '
                       f'{cons["pending_torn"]} pending torn',
    }
    return format_kv("fault injection & recovery report", pairs)


def main(argv: list[str]) -> int:
    args = list(argv)
    as_json = "--json" in args
    if as_json:
        args.remove("--json")

    def _opt(flag: str, default, cast):
        if flag in args:
            i = args.index(flag)
            try:
                value = cast(args[i + 1])
            except (IndexError, ValueError):
                print(f"{flag} needs a {cast.__name__} argument", file=sys.stderr)
                raise SystemExit(2) from None
            del args[i:i + 2]
            return value
        return default

    nwrites = _opt("--writes", 160, int)
    seed = _opt("--seed", 0, int)
    plan_text = _opt("--plan", None, str)
    if args:
        print(f"unknown argument(s): {', '.join(args)}; "
              "usage: report [--writes N] [--seed N] [--plan TEXT] [--json]",
              file=sys.stderr)
        return 2
    plan = FaultPlan.parse(plan_text) if plan_text else None
    result = run_report(nwrites=nwrites, seed=seed, plan=plan)
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
    else:
        print(_format(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
