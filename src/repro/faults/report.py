"""Fault/recovery report CLI.

Runs the canned power-cut chaos scenario (or a ``REPRO_FAULTS``-syntax
plan given with ``--plan``) against a retrying GenericFS, then prints
what the fault engine injected, what the retry layer absorbed, how long
the runtime took to come back, and the crash-consistency audit — all
sourced from the :mod:`repro.obs` telemetry registry.

Usage::

    python -m repro.faults.report                  # canned power-cut chaos
    python -m repro.faults.report --writes 200 --seed 7
    python -m repro.faults.report --plan "media_error:device=nvme,probability=0.2"
    python -m repro.faults.report --json           # JSON to stdout
    python -m repro.faults.report --json out.json --csv out.csv

Output flags are the shared :mod:`repro.cli` surface: a bare ``--json``
keeps its historical meaning (JSON to stdout instead of the table), and
``--json PATH`` / ``--csv PATH`` / ``--out PATH`` write files.
"""

from __future__ import annotations

import argparse
import sys

from ..experiments.report import format_kv
from ..units import msec
from .plan import FaultPlan

__all__ = ["run_report", "main"]

#: CSV column order: one row per scalar metric of the run
CSV_HEADERS = ("metric", "value")


def run_report(*, nwrites: int = 160, seed: int = 0,
               plan: FaultPlan | None = None) -> dict:
    """Run one chaos pass and return the combined metrics dict."""
    from ..experiments.fault_recovery import run_fault_recovery

    if plan is not None:
        return run_fault_recovery(nwrites=nwrites, seed=seed, plan=plan)
    return run_fault_recovery(
        nwrites=nwrites, seed=seed,
        media_error_p=0.10, latency_p=0.10, qp_reject_p=0.03,
        power_cut=True, power_cut_at_ns=int(msec(2.0)),
        restart_after_ns=int(msec(1.0)),
    )


def _format(result: dict) -> str:
    cons = result["consistency"]
    pairs = {
        "writes acked": f'{result["acked"]}/{result["nwrites"]}'
                        f' ({result["gave_up"]} gave up)',
        "goodput": f'{result["goodput_kops_s"]:.2f} kops/s'
                   f' over {result["elapsed_s"] * 1e3:.2f} ms',
        "faults injected": result["injected"],
        "retries / giveups": f'{result["retries"]} / {result["giveups"]}',
        "runtime crashes": result["crashes"],
        "recovery time": f'{result["recovery_ms"]:.2f} ms (p50)',
        "consistency": f'{cons["acked_ok"]} acked ok, '
                       f'{cons["pending_absent"]} pending absent, '
                       f'{cons["pending_torn"]} pending torn',
    }
    return format_kv("fault injection & recovery report", pairs)


def _rows(result: dict) -> list[list]:
    """Flatten the (one-level-nested) result dict to metric/value rows."""
    rows: list[list] = []
    for key in sorted(result):
        value = result[key]
        if isinstance(value, dict):
            for sub in sorted(value):
                rows.append([f"{key}.{sub}", value[sub]])
        else:
            rows.append([key, value])
    return rows


def main(argv: list[str] | None = None) -> int:
    from ..cli import Report, add_output_flags, emit

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.report",
        description="Fault injection & recovery chaos report.",
    )
    parser.add_argument("--writes", type=int, default=160, metavar="N",
                        help="writes to issue through the retrying GenericFS")
    parser.add_argument("--seed", type=int, default=0, metavar="N")
    parser.add_argument("--plan", metavar="TEXT",
                        help="REPRO_FAULTS-syntax plan overriding the canned chaos")
    add_output_flags(parser)
    args = parser.parse_args(argv)

    plan = FaultPlan.parse(args.plan) if args.plan else None
    result = run_report(nwrites=args.writes, seed=args.seed, plan=plan)
    return emit(args, Report(
        text=_format(result),
        data=result,
        csv_headers=CSV_HEADERS,
        csv_rows=_rows(result),
    ))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
