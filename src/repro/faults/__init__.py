"""repro.faults: deterministic fault injection, recovery policies, and
chaos scenarios for LabStor deployments.

Three layers (see DESIGN.md "Fault injection & resilience"):

- :class:`FaultPlan` / :class:`FaultSpec` — declarative, RNG-seeded
  injection schedules (``repro.faults.plan``);
- :class:`FaultEngine` — compiles a plan onto the device / queue-pair /
  orchestrator / runtime seams (``repro.faults.engine``);
- :class:`RetryPolicy` + :class:`CrashConsistencyChecker` — the
  resilience and verification side (``repro.faults.policies`` /
  ``repro.faults.consistency``).

Arm a plan via ``LabStorSystem(fault_plan=...)``, the fluent
``system.stack(...).faults(plan)``, or ``REPRO_FAULTS=...`` in the
process environment.  ``python -m repro.faults.report`` runs the canned
power-cut scenario and prints the recovery report.
"""

from .consistency import CrashConsistencyChecker, torn_prefix_len
from .engine import DeviceFaultInjector, FaultEngine, QpSubmitInjector
from .plan import FAULTS_ENV_VAR, KINDS, FaultPlan, FaultSpec, plan_from_env
from .policies import DEFAULT_RETRYABLE, RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultEngine",
    "DeviceFaultInjector",
    "QpSubmitInjector",
    "RetryPolicy",
    "DEFAULT_RETRYABLE",
    "CrashConsistencyChecker",
    "torn_prefix_len",
    "plan_from_env",
    "FAULTS_ENV_VAR",
    "KINDS",
]
