"""Labeled metrics registry backing the telemetry subsystem.

Three metric families, all keyed by ``(name, sorted label items)``:

- **counters** — monotonically increasing integers (requests, spans, ops);
- **gauges**   — last-write-wins values (open spans, queue depths);
- **histograms** — :class:`repro.sim.stats.Histogram` log2-bucketed
  latency distributions (per-phase, per-device, end-to-end).

The registry is deliberately dumb: the hot path never touches it — spans
are aggregated into it only when they close (see
:class:`repro.obs.telemetry.Telemetry`), so its cost scales with the
number of *completed* requests, not with per-hop instrumentation.
"""

from __future__ import annotations

from typing import Any

from ..sim.stats import Histogram

__all__ = ["MetricsRegistry"]

_Key = tuple  # (name, (label, value), ...)


def _key(name: str, labels: dict[str, Any]) -> _Key:
    if not labels:
        return (name,)
    return (name,) + tuple(sorted(labels.items()))


class MetricsRegistry:
    """Counters, gauges, and latency histograms with free-form labels."""

    def __init__(self) -> None:
        self._counters: dict[_Key, int] = {}
        self._gauges: dict[_Key, float] = {}
        self._histograms: dict[_Key, Histogram] = {}
        #: counter values at the last :meth:`mark` (window base)
        self._marks: dict[_Key, int] = {}

    # -- counters ---------------------------------------------------------
    def inc(self, name: str, value: int = 1, **labels: Any) -> None:
        k = _key(name, labels)
        self._counters[k] = self._counters.get(k, 0) + value

    def counter(self, name: str, **labels: Any) -> int:
        return self._counters.get(_key(name, labels), 0)

    def delta(self, name: str, **labels: Any) -> int:
        """Counter increase since the last :meth:`mark` (0 before any mark)."""
        k = _key(name, labels)
        return self._counters.get(k, 0) - self._marks.get(k, 0)

    def deltas(self) -> dict[_Key, int]:
        """All nonzero counter increases since the last :meth:`mark`."""
        out: dict[_Key, int] = {}
        for k, v in self._counters.items():
            d = v - self._marks.get(k, 0)
            if d:
                out[k] = d
        return out

    def mark(self) -> None:
        """Begin a new counter window: subsequent :meth:`delta` /
        :meth:`rates` calls report increases from this instant.  One
        window per registry — the control daemon is the intended (sole)
        consumer; see :class:`repro.ctl.MetricsView`."""
        self._marks = dict(self._counters)

    def rates(self, elapsed_ns: int) -> list[dict[str, Any]]:
        """Per-second rates of every counter that moved in the window."""
        if elapsed_ns <= 0:
            raise ValueError(f"elapsed_ns must be positive, got {elapsed_ns}")
        out = []
        for k in sorted(self.deltas(), key=self._sort_key):
            d = self._counters[k] - self._marks.get(k, 0)
            out.append({**self._unkey(k), "delta": d,
                        "per_sec": d * 1e9 / elapsed_ns})
        return out

    # -- gauges -----------------------------------------------------------
    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges[_key(name, labels)] = value

    def gauge(self, name: str, **labels: Any) -> float:
        return self._gauges.get(_key(name, labels), 0.0)

    def has_gauge(self, name: str, **labels: Any) -> bool:
        """Whether the gauge was ever set — health checks need to tell
        "absent" from a genuine 0.0 reading."""
        return _key(name, labels) in self._gauges

    def gauge_values(self, name: str, **labels: Any) -> list[tuple[dict, float]]:
        """Every ``(labels, value)`` whose gauge carries ``name`` and at
        least ``labels`` (a partial filter, like window delta sums)."""
        out = []
        for k, v in self._gauges.items():
            if k[0] != name:
                continue
            have = dict(k[1:])
            if all(have.get(lk) == lv for lk, lv in labels.items()):
                out.append((have, v))
        return out

    # -- histograms -------------------------------------------------------
    def histogram(self, name: str, **labels: Any) -> Histogram:
        k = _key(name, labels)
        h = self._histograms.get(k)
        if h is None:
            h = self._histograms[k] = Histogram()
        return h

    def observe(self, name: str, value_ns: float, **labels: Any) -> None:
        self.histogram(name, **labels).add(value_ns)

    def window_histograms(self) -> dict[_Key, Histogram]:
        """Per-window snapshot of every histogram via
        :meth:`~repro.sim.stats.Histogram.fork_window` — each returned
        histogram holds only the samples since the previous call.  Like
        :meth:`mark`, this is a single rolling window per registry (the
        control daemon's sampling loop)."""
        return {k: h.fork_window() for k, h in self._histograms.items()}

    # -- export -----------------------------------------------------------
    @staticmethod
    def _unkey(k: _Key) -> dict[str, Any]:
        return {"name": k[0], "labels": dict(k[1:])}

    @staticmethod
    def _sort_key(k: _Key) -> tuple:
        # Label values are free-form: the same metric name can carry e.g.
        # device=0 next to device="nvme", which a plain sorted() cannot
        # order (TypeError).  Compare by (label, type name, repr) instead —
        # total, stable, and type-aware.
        return (k[0],) + tuple(
            (label, type(v).__name__, repr(v)) for label, v in k[1:]
        )

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-able dump of every metric."""
        out: dict[str, list[dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for k in sorted(self._counters, key=self._sort_key):
            out["counters"].append({**self._unkey(k), "value": self._counters[k]})
        for k in sorted(self._gauges, key=self._sort_key):
            out["gauges"].append({**self._unkey(k), "value": self._gauges[k]})
        for k in sorted(self._histograms, key=self._sort_key):
            h = self._histograms[k]
            entry = {**self._unkey(k), "count": h.total}
            if h.total:
                entry["p50_ns"] = h.quantile(0.50)
                entry["p99_ns"] = h.quantile(0.99)
                entry["p999_ns"] = h.quantile(0.999)
            out["histograms"].append(entry)
        return out

    # -- snapshot/restore --------------------------------------------------
    def dump(self) -> dict:
        """Lossless picklable capture (unlike :meth:`snapshot`, which
        collapses histograms to quantiles)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {k: h.dump() for k, h in self._histograms.items()},
        }

    def load(self, state: dict) -> None:
        """Replace contents with a :meth:`dump` capture."""
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._histograms = {
            k: Histogram.load(h) for k, h in state["histograms"].items()
        }
        self._marks = {}  # a restored registry starts a fresh window

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._marks.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
