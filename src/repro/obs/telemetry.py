"""The telemetry hub: collects spans off the Tracer pub/sub seam.

Mirrors the :mod:`repro.sim.sanitizer` pattern: instrumented components
emit ``obs.*`` trace events only when ``tracer.obs`` is armed, so with
telemetry disabled (the default) every emission site costs a single flag
check and zero allocations.  Arming happens either programmatically::

    telemetry = Telemetry().install(env)
    ...
    telemetry.spans            # closed SpanContexts
    telemetry.registry         # MetricsRegistry (counters/gauges/histograms)

via ``LabStorSystem(telemetry=...)``, or for every system/experiment
built through the facades by setting ``REPRO_TELEMETRY=1`` in the process
environment.

Event taxonomy (see DESIGN.md "Observability"):

- ``obs.open``   — a request span was opened (fields: ``span``)
- ``obs.span``   — a request span closed (fields: ``span``); the span's
  phases/cats/mods are aggregated into the registry here
- ``obs.device`` — one device command entered service (fields: ``device``,
  ``hctx``, ``op``, ``size``, ``queue_ns``, ``service_ns``)

``fault.*`` events from :mod:`repro.faults` (injections, retries,
giveups, runtime crash/restart) are aggregated into the registry too, so
goodput-under-faults and recovery time fall out of the same hub.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..config import TELEMETRY_ENV_VAR
from ..config import current as _config
from ..sim.trace import TraceEvent
from .metrics import MetricsRegistry
from .spans import SpanContext

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Environment

__all__ = ["Telemetry", "TELEMETRY_ENV_VAR", "telemetry_requested", "maybe_attach"]


def telemetry_requested() -> bool:
    return _config().telemetry


def maybe_attach(env: "Environment") -> "Telemetry | None":
    """Attach a telemetry hub to ``env`` iff ``REPRO_TELEMETRY`` is set."""
    if not telemetry_requested():
        return None
    return Telemetry().install(env)


class Telemetry:
    """Span collector + metrics aggregator wired in as a Tracer sink.

    ``keep_spans`` (default on) retains closed :class:`SpanContext`
    objects in :attr:`spans` for breakdown reports; ``max_spans`` bounds
    that retention on long runs (the registry keeps aggregating either
    way, and :attr:`dropped_spans` counts what fell off).
    """

    def __init__(self, *, keep_spans: bool = True, max_spans: int = 200_000) -> None:
        self.registry = MetricsRegistry()
        self.keep_spans = keep_spans
        self.max_spans = max_spans
        self.spans: list[SpanContext] = []
        self.dropped_spans = 0
        self.opened_total = 0
        self.closed_total = 0
        self.env: Optional["Environment"] = None
        self._open: dict[int, SpanContext] = {}  # id(span) -> span

    # ------------------------------------------------------------------
    def install(self, env: "Environment") -> "Telemetry":
        if self.env is env:
            return self  # already wired into this environment
        self.env = env
        env.tracer.obs = True
        env.tracer.add_sink(self)
        return self

    # ------------------------------------------------------------------
    # Tracer sink entry point
    # ------------------------------------------------------------------
    def __call__(self, ev: TraceEvent) -> None:
        cat = ev.category
        if cat == "obs.span":
            span: SpanContext = ev.fields["span"]
            self._open.pop(id(span), None)
            self.closed_total += 1
            self._ingest(span)
        elif cat == "obs.open":
            span = ev.fields["span"]
            self._open[id(span)] = span
            self.opened_total += 1
            self.registry.inc("spans_opened", kind=span.kind)
            self.registry.set_gauge("open_spans", len(self._open))
        elif cat == "obs.device":
            f = ev.fields
            self.registry.inc("device_ops_total", device=f["device"], op=f["op"])
            self.registry.inc("device_bytes_total", f["size"], device=f["device"])
            self.registry.observe("device_queue_ns", f["queue_ns"], device=f["device"])
            self.registry.observe("device_service_ns", f["service_ns"], device=f["device"])
        elif cat == "fault.inject":
            self.registry.inc("faults_injected_total", kind=ev.fields["kind"])
        elif cat == "fault.retry":
            self.registry.inc("fault_retries_total", error=ev.fields["error"])
        elif cat == "fault.giveup":
            self.registry.inc("fault_giveups_total", error=ev.fields["error"])
        elif cat == "fault.runtime":
            f = ev.fields
            if f["action"] == "crash":
                self.registry.inc("runtime_crashes_total")
            else:  # restart
                self.registry.observe("runtime_recovery_ns", f["recovery_ns"])

    def _ingest(self, span: SpanContext) -> None:
        reg = self.registry
        reg.inc("spans_closed", kind=span.kind)
        reg.inc("requests_total", kind=span.kind, op=span.op)
        reg.set_gauge("open_spans", len(self._open))
        reg.observe("e2e_ns", span.e2e_ns, kind=span.kind)
        for phase, ns in span.phases().items():
            reg.observe(f"phase_{phase}_ns", ns, kind=span.kind)
        if self.keep_spans:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped_spans += 1

    # ------------------------------------------------------------------
    # introspection / reporting
    # ------------------------------------------------------------------
    def open_spans(self) -> list[SpanContext]:
        """Spans opened but not yet closed (should be [] at quiescence)."""
        return list(self._open.values())

    def breakdown(self, spans: list[SpanContext] | None = None) -> dict:
        """Aggregate Fig 4 phase breakdown over ``spans`` (default: all)."""
        from .report import phase_breakdown

        return phase_breakdown(self.spans if spans is None else spans)

    def reset(self) -> None:
        """Drop collected spans and metrics (e.g. after workload warm-up)."""
        self.spans.clear()
        self._open.clear()
        self.dropped_spans = 0
        self.opened_total = 0
        self.closed_total = 0
        self.registry.reset()

    def __repr__(self) -> str:
        return (
            f"<Telemetry spans={len(self.spans)} open={len(self._open)} "
            f"closed_total={self.closed_total}>"
        )
