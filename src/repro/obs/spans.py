"""Per-request span contexts: the unit of record of ``repro.obs``.

A :class:`SpanContext` rides a request end to end and collects virtual-time
stamps at every hop of its life cycle:

- ``submit_ns``     client ``call()``/``submit_batch()`` issued the request
- ``doorbell_ns``   the batch doorbell rang (equals ``submit_ns`` unbatched)
- ``accept_ns``     the submission queue accepted the entry
- ``pop_ns``        a Runtime worker popped the entry and began service
- ``complete_ns``   the worker finished the stack DAG (completion posted)
- ``reap_ns``       the client reaped the completion from the CQ

From the stamps the span derives the paper's Fig 4 *anatomy* phases::

    batch      = doorbell_ns - submit_ns        (SQE build before the doorbell)
    submit     = accept_ns - doorbell_ns        (SQ acceptance)
    queue      = pop_ns - accept_ns + kqueue_ns (SQ wait + kernel blk layer)
    device     = union of device-wait windows   (clipped to the service window)
    module     = service - kqueue - device      (CPU inside the LabMod DAG)
    completion = reap_ns - complete_ns          (CQ wait + completion hop)

The residual definition of ``module`` guarantees the six phases sum to
``reap_ns - submit_ns`` *exactly* (integer nanoseconds, no drift) — the
invariant the telemetry tests pin down.  ``batch`` is zero for requests
submitted one at a time: ``Client.call()`` never stamps a doorbell, and
``close()`` backfills ``doorbell_ns = submit_ns``.

Device time is recorded as ``(start, end)`` windows rather than a running
sum so concurrent sub-I/Os inside one request (parallel write-back
extents, fan-out reads) are overlap-merged instead of double-counted.

Beyond the phases a span carries:

- ``cats``  — per-category CPU totals fed by ``ExecContext.work/wait``
  (the legacy Fig 4(a) span names: ``device_io``, ``cache``, ``ipc``, ...);
- ``mods``  — per-LabMod-instance service frames (inclusive / exclusive /
  device time per node), maintained by ``LabMod.forward``.

Synchronous executions (Lab-D, kernel baselines) have no queues: they
stamp ``mark_dispatched`` which collapses accept/pop onto the entry point,
so submit covers syscall/VFS entry and queue/completion become 0.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["SpanContext", "PHASES"]

#: the Fig 4 anatomy phases, in request-lifecycle order
PHASES = ("batch", "submit", "queue", "module", "device", "completion")

_span_ids = itertools.count(1)

# mod-frame list indices (a frame is a plain list for per-hop cheapness)
_F_UUID, _F_MOD, _F_START, _F_CHILD, _F_DEVICE = range(5)


class SpanContext:
    """Mutable per-request telemetry record (one allocation per request)."""

    __slots__ = (
        "req_id", "op", "kind", "stack_id", "sync",
        "submit_ns", "doorbell_ns", "accept_ns", "pop_ns", "complete_ns", "reap_ns",
        "kqueue_ns", "device_ns", "cats", "mods", "closed",
        "_windows", "_frames",
    )

    def __init__(
        self,
        *,
        op: str,
        now: int,
        req_id: Optional[int] = None,
        kind: str = "lab",
        stack_id: Optional[int] = None,
        sync: bool = False,
    ) -> None:
        self.req_id = req_id if req_id is not None else next(_span_ids)
        self.op = op
        self.kind = kind                    # "lab" | "kernel"
        self.stack_id = stack_id
        self.sync = sync
        self.submit_ns = now
        self.doorbell_ns = -1
        self.accept_ns = -1
        self.pop_ns = -1
        self.complete_ns = -1
        self.reap_ns = -1
        self.kqueue_ns = 0                  # kernel block-layer software time
        self.device_ns = 0                  # merged device windows (set at close)
        self.cats: dict[str, int] = {}      # legacy span-name -> total ns
        self.mods: dict[str, dict[str, Any]] = {}
        self.closed = False
        self._windows: list[tuple[int, int]] = []
        self._frames: list[list] = []

    # -- life-cycle stamps ------------------------------------------------
    def mark_doorbell(self, now: int) -> None:
        """Batched submission rang the doorbell for this entry's batch."""
        self.doorbell_ns = now

    def mark_accept(self, now: int) -> None:
        self.accept_ns = now

    def mark_pop(self, now: int) -> None:
        self.pop_ns = now

    def mark_dispatched(self, now: int) -> None:
        """Queueless execution (sync stacks, kernel syscalls): the request
        enters service the moment its entry bookkeeping is done."""
        self.accept_ns = now
        self.pop_ns = now

    def mark_complete(self, now: int) -> None:
        self.complete_ns = now

    # -- accumulation (called from the hot path; all guarded by `closed`
    #    so stale background work cannot smear a finished record) ---------
    def add_cat(self, name: str, dur_ns: int) -> None:
        if not self.closed:
            self.cats[name] = self.cats.get(name, 0) + dur_ns

    def add_device_window(self, start_ns: int, end_ns: int) -> None:
        if self.closed or end_ns <= start_ns:
            return
        self._windows.append((start_ns, end_ns))
        if self._frames:
            self._frames[-1][_F_DEVICE] += end_ns - start_ns

    def add_kqueue(self, dur_ns: int) -> None:
        if not self.closed:
            self.kqueue_ns += dur_ns

    # -- per-LabMod service frames ---------------------------------------
    def enter_mod(self, uuid: str, mod_name: str, now: int) -> list:
        frame = [uuid, mod_name, now, 0, 0]
        self._frames.append(frame)
        return frame

    def exit_mod(self, frame: list, now: int) -> None:
        frames = self._frames
        if frames and frames[-1] is frame:
            # the overwhelmingly common case: exits nest LIFO
            frames.pop()
        else:
            try:
                frames.remove(frame)
            except ValueError:
                return  # frame already retired (defensive: unmatched exit)
        total = now - frame[_F_START]
        if self._frames:
            self._frames[-1][_F_CHILD] += total
        rec = self.mods.get(frame[_F_UUID])
        if rec is None:
            rec = self.mods[frame[_F_UUID]] = {
                "mod": frame[_F_MOD], "count": 0,
                "inclusive_ns": 0, "exclusive_ns": 0, "device_ns": 0,
            }
        rec["count"] += 1
        rec["inclusive_ns"] += total
        rec["device_ns"] += frame[_F_DEVICE]
        rec["exclusive_ns"] += max(0, total - frame[_F_CHILD] - frame[_F_DEVICE])

    # -- finalization -----------------------------------------------------
    def close(self, now: int) -> None:
        """Stamp ``reap_ns``, backfill missing stamps, merge device windows."""
        if self.closed:
            return
        self.reap_ns = now
        # Defensive backfill for abnormal terminations (errors, crash paths):
        # a span must always produce a consistent, summable record.
        if self.accept_ns < 0:
            self.accept_ns = self.submit_ns
        # unbatched requests never ring a doorbell: collapse the batch phase
        # to zero; clamp so batch/submit stay non-negative either way
        if self.doorbell_ns < 0:
            self.doorbell_ns = self.submit_ns
        self.doorbell_ns = min(max(self.doorbell_ns, self.submit_ns), self.accept_ns)
        if self.pop_ns < 0:
            self.pop_ns = self.accept_ns
        if self.complete_ns < 0:
            self.complete_ns = now
        self.device_ns = self._merged_device_ns(self.pop_ns, self.complete_ns)
        # device + kernel-queue time both live inside the service window;
        # clamp so the module residual can never go negative
        service = self.complete_ns - self.pop_ns
        self.kqueue_ns = min(self.kqueue_ns, service)
        self.device_ns = min(self.device_ns, service - self.kqueue_ns)
        self.closed = True

    def _merged_device_ns(self, lo: int, hi: int) -> int:
        """Overlap-merged total of device windows clipped to [lo, hi]."""
        total = 0
        cur_start = cur_end = None
        for start, end in sorted(self._windows):
            start, end = max(start, lo), min(end, hi)
            if end <= start:
                continue
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = start, end
            elif end > cur_end:
                cur_end = end
        if cur_end is not None:
            total += cur_end - cur_start
        return total

    # -- derived views ----------------------------------------------------
    @property
    def e2e_ns(self) -> int:
        if not self.closed:
            raise ValueError(f"span {self.req_id} ({self.op}) is still open")
        return self.reap_ns - self.submit_ns

    def phases(self) -> dict[str, int]:
        """The Fig 4 anatomy; components sum to ``e2e_ns`` exactly."""
        if not self.closed:
            raise ValueError(f"span {self.req_id} ({self.op}) is still open")
        service = self.complete_ns - self.pop_ns
        return {
            "batch": self.doorbell_ns - self.submit_ns,
            "submit": self.accept_ns - self.doorbell_ns,
            "queue": (self.pop_ns - self.accept_ns) + self.kqueue_ns,
            "module": service - self.kqueue_ns - self.device_ns,
            "device": self.device_ns,
            "completion": self.reap_ns - self.complete_ns,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "req_id": self.req_id,
            "op": self.op,
            "kind": self.kind,
            "stack_id": self.stack_id,
            "sync": self.sync,
            "submit_ns": self.submit_ns,
            "doorbell_ns": self.doorbell_ns,
            "accept_ns": self.accept_ns,
            "pop_ns": self.pop_ns,
            "complete_ns": self.complete_ns,
            "reap_ns": self.reap_ns,
            "e2e_ns": self.e2e_ns if self.closed else None,
            "phases": self.phases() if self.closed else None,
            "cats": dict(self.cats),
            "mods": {u: dict(m) for u, m in self.mods.items()},
        }

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<SpanContext #{self.req_id} {self.op} kind={self.kind} {state}>"
