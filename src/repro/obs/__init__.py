"""repro.obs — end-to-end request telemetry for the LabStor reproduction.

A span-based observability layer riding the :class:`repro.sim.trace.Tracer`
pub/sub seam (the same pattern as :mod:`repro.sim.sanitizer`): when
``tracer.obs`` is armed, every request carries a
:class:`~repro.obs.spans.SpanContext` that records virtual-time stamps at
each hop — client submit, SQ accept, worker pop, per-LabMod service,
device queue + service, CQ reap — and a :class:`Telemetry` sink aggregates
closed spans into a :class:`~repro.obs.metrics.MetricsRegistry`.

Disabled (the default), every instrumentation site costs one flag check
and allocates nothing.

Enable per system::

    from repro.obs import Telemetry
    telemetry = Telemetry()
    system = LabStorSystem(telemetry=telemetry)   # or telemetry=True

or process-wide with ``REPRO_TELEMETRY=1``.  See
``python -m repro.obs.report --help`` for the span-derived Fig 4 anatomy
CLI, and DESIGN.md "Observability" for the span taxonomy.
"""

from .metrics import MetricsRegistry
from .spans import PHASES, SpanContext
from .telemetry import TELEMETRY_ENV_VAR, Telemetry, maybe_attach, telemetry_requested

_REPORT_EXPORTS = (
    "phase_breakdown", "format_breakdown", "breakdown_to_json", "breakdown_to_csv",
)


def __getattr__(name: str):
    # lazy re-export: keeps `python -m repro.obs.report` from importing the
    # CLI module twice (runpy would warn about the stale sys.modules entry)
    if name in _REPORT_EXPORTS:
        from . import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PHASES",
    "SpanContext",
    "MetricsRegistry",
    "Telemetry",
    "TELEMETRY_ENV_VAR",
    "telemetry_requested",
    "maybe_attach",
    "phase_breakdown",
    "format_breakdown",
    "breakdown_to_json",
    "breakdown_to_csv",
]
