"""Breakdown reports over collected spans + JSON/CSV export + CLI.

``phase_breakdown(spans)`` turns a list of closed
:class:`~repro.obs.spans.SpanContext` objects into the paper's Fig 4
"anatomy of an I/O request" aggregate: per-phase totals/means/fractions,
per-LabMod service times, and the legacy per-category totals — all
derived from measured per-request stamps, never hard-coded accounting.

Run the anatomy experiment across the canonical configurations from the
command line::

    PYTHONPATH=src python -m repro.obs.report [--op write|read]
        [--nops N] [--bs BYTES] [--seed S]
        [--json [PATH]] [--csv [PATH]] [--out PATH]

Output flags are the shared :mod:`repro.cli` surface (bare ``--json`` /
``--csv`` print to stdout instead of the table; ``--out`` redirects the
plain-text report).

which prints, for each of Lab-All, Lab-Min, Lab-D, and the ext4 kernel
baseline, a submit/queue/module/device/completion table whose components
sum to the measured end-to-end latency.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
from typing import Any, Iterable

from .spans import PHASES, SpanContext

__all__ = [
    "phase_breakdown",
    "format_breakdown",
    "breakdown_to_json",
    "breakdown_to_csv",
    "breakdown_rows",
    "main",
]


def phase_breakdown(spans: Iterable[SpanContext]) -> dict[str, Any]:
    """Aggregate closed spans into a Fig 4 phase breakdown.

    Returns ``{"count", "e2e", "phases", "mods", "cats"}`` where every
    ``*_ns`` figure is an exact integer total and ``mean_ns``/``fraction``
    are derived floats.  ``phases`` components sum to ``e2e.total_ns``
    exactly (the per-span invariant survives aggregation).
    """
    closed = [s for s in spans if s.closed]
    phase_totals = dict.fromkeys(PHASES, 0)
    e2e_total = 0
    mods: dict[str, dict[str, Any]] = {}
    cats: dict[str, int] = {}
    for s in closed:
        e2e_total += s.e2e_ns
        for phase, ns in s.phases().items():
            phase_totals[phase] += ns
        for uuid, rec in s.mods.items():
            agg = mods.setdefault(
                uuid,
                {"mod": rec["mod"], "count": 0,
                 "inclusive_ns": 0, "exclusive_ns": 0, "device_ns": 0},
            )
            agg["count"] += rec["count"]
            agg["inclusive_ns"] += rec["inclusive_ns"]
            agg["exclusive_ns"] += rec["exclusive_ns"]
            agg["device_ns"] += rec["device_ns"]
        for name, ns in s.cats.items():
            cats[name] = cats.get(name, 0) + ns
    n = len(closed)
    return {
        "count": n,
        "e2e": {
            "total_ns": e2e_total,
            "mean_ns": e2e_total / n if n else 0.0,
        },
        "phases": {
            phase: {
                "total_ns": total,
                "mean_ns": total / n if n else 0.0,
                "fraction": total / e2e_total if e2e_total else 0.0,
            }
            for phase, total in phase_totals.items()
        },
        "mods": mods,
        "cats": cats,
    }


def format_breakdown(breakdown: dict[str, Any], title: str | None = None) -> str:
    """Aligned ASCII table of one breakdown (phases sum printed last)."""
    from ..experiments.report import format_table

    rows = []
    for phase in PHASES:
        p = breakdown["phases"][phase]
        rows.append([phase, f"{p['mean_ns']:.0f}", f"{p['fraction'] * 100:.1f}%"])
    rows.append(["= end-to-end", f"{breakdown['e2e']['mean_ns']:.0f}", "100.0%"])
    head = title or "Request anatomy"
    return format_table(
        ["Phase", "ns/req", "Fraction"],
        rows,
        title=f"{head} ({breakdown['count']} requests)",
    )


def breakdown_to_json(results: dict[str, dict[str, Any]], path: str | None = None) -> str:
    """Serialize ``{config: breakdown}`` to JSON (optionally to ``path``)."""
    text = json.dumps(results, indent=2, sort_keys=True)
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


#: CSV column order shared by :func:`breakdown_to_csv` and the CLI
CSV_HEADERS = ("config", "phase", "count", "total_ns", "mean_ns", "fraction")


def breakdown_rows(results: dict[str, dict[str, Any]]) -> list[list[Any]]:
    """Flatten ``{config: breakdown}`` to :data:`CSV_HEADERS` rows."""
    rows: list[list[Any]] = []
    for config, bd in results.items():
        for phase in PHASES:
            p = bd["phases"][phase]
            rows.append([
                config, phase, bd["count"],
                p["total_ns"], f"{p['mean_ns']:.1f}", f"{p['fraction']:.6f}",
            ])
        rows.append([
            config, "e2e", bd["count"],
            bd["e2e"]["total_ns"], f"{bd['e2e']['mean_ns']:.1f}", "1.000000",
        ])
    return rows


def breakdown_to_csv(results: dict[str, dict[str, Any]], path: str | None = None) -> str:
    """Flatten ``{config: breakdown}`` to CSV rows (config, phase, ...)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(CSV_HEADERS))
    for row in breakdown_rows(results):
        writer.writerow(row)
    text = buf.getvalue()
    if path:
        with open(path, "w", encoding="utf-8", newline="") as f:
            f.write(text)
    return text


def main(argv: list[str] | None = None) -> int:
    from ..cli import Report, add_output_flags, emit

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Span-derived Fig 4 anatomy across the canonical stacks.",
    )
    parser.add_argument("--op", choices=("write", "read"), default="write")
    parser.add_argument("--nops", type=int, default=32)
    parser.add_argument("--bs", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=0)
    add_output_flags(parser)
    args = parser.parse_args(argv)

    # imported lazily: experiments pull in the whole system stack
    from ..experiments.anatomy import run_phase_anatomy

    results = run_phase_anatomy(
        op=args.op, nops=args.nops, bs=args.bs, seed=args.seed
    )
    breakdowns = {k: v["breakdown"] for k, v in results.items()}
    sections = []
    for config, bd in breakdowns.items():
        phase_sum = sum(p["total_ns"] for p in bd["phases"].values())
        delta = phase_sum - bd["e2e"]["total_ns"]
        sections.append(
            format_breakdown(bd, title=f"{config} — 4KB {args.op}")
            + f"\n  phase sum - e2e = {delta} ns\n"
        )
    return emit(args, Report(
        text="\n".join(sections).rstrip("\n"),
        data=breakdowns,
        csv_headers=CSV_HEADERS,
        csv_rows=breakdown_rows(breakdowns),
    ))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
