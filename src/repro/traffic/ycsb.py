"""YCSB-style workload family over :class:`repro.mods.generic_kvs.GenericKVS`.

The classic cloud-serving mixes, adapted to the open-loop engine: each op
is an independent process generator (read / update / read-modify-write)
against Zipf-popular keys, so the engine can launch them at arrival times
without waiting for completions.

Mixes (fractions of read / update / read-modify-write):

- **A** — update heavy (50/50): session stores.
- **B** — read mostly (95/5): photo tagging.
- **C** — read only (100/0): profile caches.
- **F** — read-modify-write (50/0/50): user database.

This family rides *alongside* the closed-loop fio/fxmark/filebench
harnesses in :mod:`repro.workloads` — same system underneath, different
loop discipline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mods.generic_kvs import GenericKVS
from .keys import ZipfKeys

__all__ = ["YcsbMix", "YCSB_MIXES", "YcsbWorkload"]


@dataclass(frozen=True)
class YcsbMix:
    """Operation fractions of one YCSB workload letter (must sum to 1)."""

    name: str
    read: float
    update: float
    rmw: float = 0.0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix {self.name!r} fractions sum to {total}, not 1")


YCSB_MIXES = {
    "A": YcsbMix("A", read=0.50, update=0.50),
    "B": YcsbMix("B", read=0.95, update=0.05),
    "C": YcsbMix("C", read=1.00, update=0.00),
    "F": YcsbMix("F", read=0.50, update=0.00, rmw=0.50),
}


class YcsbWorkload:
    """Op factory for one tenant: Zipf keys, mix-weighted op types.

    ``make_op(rng)`` returns a fresh process generator; every random choice
    (key, op type) draws from the caller's stream, so a tenant's op
    sequence is a pure function of its seeded RNG.
    """

    def __init__(self, kvs: GenericKVS, *, mix: "YcsbMix | str" = "A",
                 keys: ZipfKeys | None = None, nkeys: int = 1024,
                 theta: float = 0.99, value_size: int = 256) -> None:
        self.kvs = kvs
        self.mix = YCSB_MIXES[mix] if isinstance(mix, str) else mix
        self.keys = keys if keys is not None else ZipfKeys(nkeys, theta)
        self.value_size = int(value_size)
        self.counts = {"read": 0, "update": 0, "rmw": 0}

    # ------------------------------------------------------------------
    def key(self, idx: int) -> str:
        return f"user{idx}"

    def value(self, idx: int) -> bytes:
        # key-derived payload: reads can be verified against it
        return bytes([idx % 251]) * self.value_size

    def preload(self):
        """Process generator: insert every key once (the YCSB load phase)."""
        for i in range(self.keys.nkeys):
            yield from self.kvs.put(self.key(i), self.value(i))

    # ------------------------------------------------------------------
    def make_op(self, rng: np.random.Generator):
        """Draw one op from the mix; returns an unstarted process generator."""
        idx = self.keys.sample(rng)
        r = rng.random()
        m = self.mix
        if r < m.read:
            return self._read(self.key(idx))
        if r < m.read + m.update:
            return self._update(idx)
        return self._rmw(idx)

    def _read(self, key: str):
        self.counts["read"] += 1
        return (yield from self.kvs.get(key))

    def _update(self, idx: int):
        self.counts["update"] += 1
        return (yield from self.kvs.put(self.key(idx), self.value(idx)))

    def _rmw(self, idx: int):
        self.counts["rmw"] += 1
        yield from self.kvs.get(self.key(idx))
        return (yield from self.kvs.put(self.key(idx), self.value(idx)))

    def __repr__(self) -> str:
        return (f"<YcsbWorkload mix={self.mix.name} keys={self.keys.nkeys} "
                f"theta={self.keys.theta} value={self.value_size}B>")
