"""Open-loop tenant traffic: arrival schedules, YCSB mixes, SLO accounting.

The package that takes the repo past closed-loop benchmarking (ROADMAP
item 2): tenant populations (millions of logical users superposed into
arrival processes), Poisson/bursty/diurnal schedules on seeded streams,
Zipf key popularity, a YCSB-style workload family for GenericKVS, and an
open-loop engine with per-tenant p50/p99/p999 + goodput + SLO-violation
accounting and pluggable admission control.

CLI::

    python -m repro.traffic.report --load 2.0 --policy queue-depth

Experiment: ``repro.experiments.openloop`` (goodput vs offered load);
determinism: the ``"openloop"`` scenario of ``python -m repro.sim.check``.
"""

from .arrivals import ArrivalProcess, BurstyArrivals, DiurnalArrivals, PoissonArrivals
from .engine import (
    AdmissionPolicy,
    OpenLoopEngine,
    QueueDepthAdmission,
    TenantQuotaAdmission,
    TenantStats,
)
from .keys import ZipfKeys
from .presets import build_overload_engine, overload_tenants
from .tenants import SCHEDULES, TenantSLO, TenantSpec
from .ycsb import YCSB_MIXES, YcsbMix, YcsbWorkload

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ZipfKeys",
    "YcsbMix",
    "YCSB_MIXES",
    "YcsbWorkload",
    "TenantSLO",
    "TenantSpec",
    "SCHEDULES",
    "AdmissionPolicy",
    "QueueDepthAdmission",
    "TenantQuotaAdmission",
    "TenantStats",
    "OpenLoopEngine",
    "build_overload_engine",
    "overload_tenants",
]
