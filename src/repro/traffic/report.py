"""Per-tenant SLO report CLI.

Runs the canonical two-tenant overload scenario open-loop and prints one
row per tenant — offered load, completions, goodput, p50/p99/p999 and the
SLO verdict — from the engine's accounting (which itself mirrors into the
``MetricsRegistry``).

Usage::

    PYTHONPATH=src python -m repro.traffic.report
        [--duration-ms 2.0] [--load 1.0]
        [--policy none|queue-depth] [--max-inflight 24]
        [--seed 0] [--json [PATH]] [--csv [PATH]] [--out PATH]

``--load 2.0 --policy none`` shows the goodput collapse;
``--policy queue-depth`` shows admission control converting it into
bounded rejections.  Output flags are the shared :mod:`repro.cli`
surface (bare ``--json``/``--csv`` print to stdout instead of the
table; ``--out`` redirects the plain-text report).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from ..units import msec
from .engine import AdmissionPolicy, QueueDepthAdmission
from .presets import build_overload_engine

__all__ = ["format_slo_report", "slo_rows", "main"]

#: per-tenant CSV/table column order (shared by text and ``--csv``)
CSV_HEADERS = ("tenant", "offered_kops_s", "completed", "goodput_kops_s",
               "p50_us", "p99_us", "p999_us", "violations", "rejected", "slo")


def slo_rows(summary: dict[str, Any]) -> list[list[str]]:
    """One :data:`CSV_HEADERS` row per tenant of an engine summary."""
    rows = []
    for name, t in summary["tenants"].items():
        slo = t["slo"]
        if t["completed"]:
            p50 = f"{t['p50_ns'] / 1000:.1f}"
            p99 = f"{t['p99_ns'] / 1000:.1f}"
            p999 = f"{t['p999_ns'] / 1000:.1f}"
        else:
            p50 = p99 = p999 = "-"
        # rejections are load shedding, not a latency miss of admitted ops:
        # they show in their own column and in goodput, not the verdict
        verdict = "met"
        if t["slo_violations"]:
            verdict = "MISS"
        if slo.get("p99_met") is False:
            verdict = "MISS(p99)"
        rows.append([
            name, f"{t['offered_ops_s'] / 1000:.1f}", str(t["completed"]),
            f"{t['goodput_ops_s'] / 1000:.1f}", p50, p99, p999,
            str(t["slo_violations"]), str(t["rejected"]), verdict,
        ])
    return rows


def format_slo_report(summary: dict[str, Any]) -> str:
    """Aligned per-tenant table over an ``OpenLoopEngine.summary()``."""
    from ..experiments.report import format_table

    title = (f"Per-tenant SLO report — policy={summary['policy']}, "
             f"offered {summary['offered_ops_s'] / 1000:.0f} Kops/s, "
             f"peak inflight {summary['peak_inflight']}")
    return format_table(
        ["tenant", "offered K/s", "done", "goodput K/s",
         "p50 us", "p99 us", "p999 us", "viol", "rej", "SLO"],
        slo_rows(summary), title=title,
    )


def main(argv: Sequence[str] | None = None) -> int:
    from ..cli import Report, add_output_flags, emit

    parser = argparse.ArgumentParser(
        prog="python -m repro.traffic.report",
        description="Open-loop tenant traffic with per-tenant SLO accounting.",
    )
    parser.add_argument("--duration-ms", type=float, default=2.0,
                        help="arrival window in virtual milliseconds")
    parser.add_argument("--load", type=float, default=1.0,
                        help="offered-load multiplier over the nominal 60K ops/s")
    parser.add_argument("--policy", choices=("none", "queue-depth"), default="none")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="queue-depth admission threshold (4 holds the "
                             "frontend p99 target at 2 workers)")
    parser.add_argument("--seed", type=int, default=0)
    add_output_flags(parser)
    args = parser.parse_args(argv)

    policy: AdmissionPolicy | None = None
    if args.policy == "queue-depth":
        policy = QueueDepthAdmission(args.max_inflight)
    system, engine = build_overload_engine(
        seed=args.seed, duration_ns=msec(args.duration_ms),
        load=args.load, policy=policy,
    )
    summary = engine.run()
    tot = summary["totals"]
    text = (
        format_slo_report(summary)
        + f"\n\ntotals: {tot['launched']} launched, {tot['good']} good, "
          f"{tot['violations']} SLO violations, {tot['rejected']} rejected "
          f"({summary['goodput_ops_s'] / 1000:.1f} Kops/s goodput over "
          f"{summary['elapsed_ns'] / 1e6:.2f} virtual ms)"
    )
    code = emit(args, Report(
        text=text,
        data=summary,
        csv_headers=CSV_HEADERS,
        csv_rows=slo_rows(summary),
    ))
    system.shutdown()
    return code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
