"""Open-loop arrival processes: virtual-time interarrival generators.

Closed-loop workloads (N clients with think time) slow their offered load
down as the system slows down — the feedback that makes overload
structurally unreachable.  An *open-loop* process keeps issuing at its
schedule regardless of completion times, which is what production traffic
does and what the overload/QoS experiments need.

Three schedules, all driven by a seeded :class:`numpy.random.Generator`
(one named stream per tenant, see :mod:`repro.sim.rng`), all returning
integer nanoseconds so virtual time stays exact:

- :class:`PoissonArrivals` — memoryless at a fixed rate; the superposition
  of millions of independent low-rate users is Poisson, which is how a
  tenant population maps onto one process.
- :class:`BurstyArrivals` — a two-state modulated Poisson process (quiet /
  burst phases with exponential durations); time-averaged rate equals the
  configured rate, but arrivals clump.
- :class:`DiurnalArrivals` — sinusoidal rate modulation (a compressed
  day/night cycle) sampled by thinning against the peak rate.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ArrivalProcess", "PoissonArrivals", "BurstyArrivals", "DiurnalArrivals"]


class ArrivalProcess:
    """Interface: ``next_interarrival_ns(rng, now_ns) -> int`` (>= 1)."""

    #: mean offered rate in ops/sec (time-averaged, for reporting)
    rate_per_sec: float = 0.0

    def next_interarrival_ns(self, rng: np.random.Generator, now_ns: int) -> int:
        raise NotImplementedError


def _check_rate(rate_per_sec: float) -> float:
    if rate_per_sec <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_per_sec}")
    return float(rate_per_sec)


class PoissonArrivals(ArrivalProcess):
    """Exponential interarrivals at a fixed aggregate rate."""

    def __init__(self, rate_per_sec: float) -> None:
        self.rate_per_sec = _check_rate(rate_per_sec)
        self._mean_gap_ns = 1e9 / self.rate_per_sec

    def next_interarrival_ns(self, rng: np.random.Generator, now_ns: int) -> int:
        return max(1, int(rng.exponential(self._mean_gap_ns)))

    def __repr__(self) -> str:
        return f"<PoissonArrivals {self.rate_per_sec:.0f} ops/s>"


class BurstyArrivals(ArrivalProcess):
    """Two-state modulated Poisson: quiet periods punctuated by bursts.

    ``duty`` is the fraction of time spent bursting and ``burst_factor``
    the burst-to-quiet rate ratio; the two sub-rates are solved so the
    time-averaged rate equals ``rate_per_sec``.  Phase durations are
    exponential with mean ``mean_burst_ns`` (and the matching quiet mean
    keeping the duty cycle).  Phase flips happen at draw time, so an
    interarrival straddling a boundary is charged at the rate of the phase
    it started in — a standard, deterministic MMPP approximation.
    """

    def __init__(self, rate_per_sec: float, *, burst_factor: float = 8.0,
                 duty: float = 0.2, mean_burst_ns: int = 500_000) -> None:
        self.rate_per_sec = _check_rate(rate_per_sec)
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
        self.burst_factor = float(burst_factor)
        self.duty = float(duty)
        self.mean_burst_ns = int(mean_burst_ns)
        self.mean_quiet_ns = int(mean_burst_ns * (1.0 - duty) / duty)
        self.quiet_rate = self.rate_per_sec / (duty * burst_factor + (1.0 - duty))
        self.burst_rate = self.quiet_rate * burst_factor
        self._bursting = False
        self._phase_end_ns: int | None = None

    def next_interarrival_ns(self, rng: np.random.Generator, now_ns: int) -> int:
        if self._phase_end_ns is None:  # first draw: begin in a quiet phase
            self._bursting = False
            self._phase_end_ns = now_ns + max(1, int(rng.exponential(self.mean_quiet_ns)))
        while now_ns >= self._phase_end_ns:
            self._bursting = not self._bursting
            mean = self.mean_burst_ns if self._bursting else self.mean_quiet_ns
            self._phase_end_ns += max(1, int(rng.exponential(mean)))
        rate = self.burst_rate if self._bursting else self.quiet_rate
        return max(1, int(rng.exponential(1e9 / rate)))

    def __repr__(self) -> str:
        return (f"<BurstyArrivals {self.rate_per_sec:.0f} ops/s "
                f"x{self.burst_factor:.0f} duty={self.duty}>")


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate modulation: rate(t) swings between ``(1-amplitude)``
    and ``(1+amplitude)`` times the mean over one ``period_ns`` cycle.

    Sampled by thinning: candidate gaps are drawn at the peak rate and
    accepted with probability ``rate(t)/peak`` — exact for inhomogeneous
    Poisson processes, and deterministic given the stream.
    """

    def __init__(self, rate_per_sec: float, *, period_ns: int = 1_000_000_000,
                 amplitude: float = 0.8, phase: float = 0.0) -> None:
        self.rate_per_sec = _check_rate(rate_per_sec)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {period_ns}")
        self.period_ns = int(period_ns)
        self.amplitude = float(amplitude)
        self.phase = float(phase)
        self.peak_rate = self.rate_per_sec * (1.0 + self.amplitude)

    def rate_at(self, t_ns: int) -> float:
        cycle = t_ns / self.period_ns + self.phase
        return self.rate_per_sec * (1.0 + self.amplitude * math.sin(2.0 * math.pi * cycle))

    def next_interarrival_ns(self, rng: np.random.Generator, now_ns: int) -> int:
        mean_gap = 1e9 / self.peak_rate
        t = now_ns
        gap = 0
        while True:
            d = max(1, int(rng.exponential(mean_gap)))
            gap += d
            t += d
            if rng.random() * self.peak_rate <= self.rate_at(t):
                return gap

    def __repr__(self) -> str:
        return (f"<DiurnalArrivals {self.rate_per_sec:.0f} ops/s "
                f"±{self.amplitude * 100:.0f}% period={self.period_ns}ns>")
