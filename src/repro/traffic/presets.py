"""Canonical tenant populations for the overload experiments.

One shared scenario so the report CLI, the overload experiment, the
determinism scenario and the benchmarks all drive the *same* system shape:

- **frontend** — 1.5M logical users reading profiles (YCSB-C, Zipf 0.99)
  on a diurnal cycle, latency-sensitive SLO;
- **analytics** — 500K logical users running an update-heavy session
  store (YCSB-A, milder skew) in bursts, relaxed SLO.

At ``load=1.0`` the two tenants offer ~60K ops/s combined, which sits
near the saturation knee of a 2-worker KVS deployment — sweeping
``load`` past 1 is what bends the goodput curve over.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..mods.generic_kvs import GenericKVS
from ..sim import Environment
from ..system import LabStorSystem
from ..units import msec, usec
from .engine import AdmissionPolicy, OpenLoopEngine
from .tenants import TenantSLO, TenantSpec
from .ycsb import YcsbWorkload

__all__ = ["MOUNT", "overload_tenants", "build_overload_engine"]

MOUNT = "kvs::/traffic"


def overload_tenants() -> list[TenantSpec]:
    """The two-tenant population every overload harness shares."""
    return [
        TenantSpec(
            name="frontend",
            users=1_500_000,
            ops_per_user_per_sec=0.024,          # 36K ops/s aggregate
            slo=TenantSLO(deadline_ns=usec(150), p99_ns=usec(120)),
            schedule="diurnal",
            schedule_kw={"period_ns": msec(4), "amplitude": 0.6},
        ),
        TenantSpec(
            name="analytics",
            users=500_000,
            ops_per_user_per_sec=0.048,          # 24K ops/s aggregate
            slo=TenantSLO(deadline_ns=msec(1)),
            schedule="bursty",
            schedule_kw={"burst_factor": 6.0, "duty": 0.25,
                         "mean_burst_ns": msec(0.5)},
        ),
    ]


def build_overload_engine(
    *,
    seed: int = 0,
    duration_ns: int = msec(2),
    load: float = 1.0,
    policy: AdmissionPolicy | None = None,
    nworkers: int = 2,
    nkeys: int = 128,
    value_size: int = 512,
    env: Environment | None = None,
) -> tuple[LabStorSystem, OpenLoopEngine]:
    """Build system + preloaded KVS + engine with the canonical tenants.

    ``env`` lets a determinism audit attach its tracer before any
    simulation runs (the :mod:`repro.sim.check` protocol).
    """
    system = LabStorSystem(
        env=env, seed=seed, devices=("nvme",),
        config=RuntimeConfig(nworkers=nworkers),
    )
    system.mount_kvs_stack(MOUNT, variant="all")
    engine = OpenLoopEngine(system, duration_ns=duration_ns, policy=policy)
    mixes = {"frontend": dict(mix="C", theta=0.99),
             "analytics": dict(mix="A", theta=0.6)}
    loaded = False
    for spec in overload_tenants():
        kw = mixes[spec.name]
        wl = YcsbWorkload(GenericKVS(system.client(), MOUNT),
                          nkeys=nkeys, value_size=value_size, **kw)
        if not loaded:  # tenants share the keyspace: one load phase suffices
            system.run(system.process(wl.preload()))
            loaded = True
        engine.add_tenant(spec, wl.make_op, load_factor=load)
    return system, engine
