"""The open-loop traffic engine: tenants → arrivals → SLO accounting.

For each tenant the engine runs one *arrival process* in virtual time:
wait the schedule's next interarrival, consult the admission policy, and
launch the op as an independent simulation process **without waiting for
it** — the open loop.  Under overload the in-flight population grows and
latencies climb; nothing throttles the arrivals, which is exactly the
regime closed-loop workloads cannot reach.

Accounting rides request completion:

- per-tenant :class:`~repro.sim.stats.LatencyRecorder` (reservoir-sampled,
  p50/p99/p999 in one pass);
- *goodput* = ops that completed successfully within the tenant's
  ``TenantSLO.deadline_ns``, per second of virtual time;
- violation / rejection / error counters mirrored into a
  :class:`~repro.obs.metrics.MetricsRegistry` under ``tenant=<name>``
  labels (``tenant_ops_total``, ``tenant_slo_violations_total``,
  ``tenant_rejected_total``, ``tenant_op_errors_total``,
  ``tenant_latency_ns``), so the existing ``repro.obs`` reporting stack
  sees tenants like any other labeled series.

Admission control is pluggable: :class:`AdmissionPolicy` (admit all) or
:class:`QueueDepthAdmission` (reject arrivals past an in-flight
threshold — the knob that converts a goodput collapse into a plateau).

Determinism: every draw (interarrivals, op types, keys, reservoir
replacement) comes from named, seeded streams of the system's
:class:`~repro.sim.rng.RngRegistry`; the engine holds no wall-clock or
identity-derived state, so a seeded run replays byte-identically (the
``"openloop"`` scenario in :mod:`repro.sim.check` pins this down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..sim.stats import LatencyRecorder
from .arrivals import ArrivalProcess
from .tenants import TenantSpec

__all__ = ["AdmissionPolicy", "QueueDepthAdmission", "TenantQuotaAdmission",
           "TenantStats", "OpenLoopEngine"]


class AdmissionPolicy:
    """Admit everything (the baseline that melts down under overload)."""

    name = "none"

    def admit(self, engine: "OpenLoopEngine", tenant: "_Tenant") -> bool:
        return True

    def __repr__(self) -> str:
        return f"<AdmissionPolicy {self.name}>"


class QueueDepthAdmission(AdmissionPolicy):
    """Reject arrivals while the engine-wide in-flight count is at the
    threshold — a one-knob stand-in for SQ-depth-based load shedding."""

    name = "queue-depth"

    def __init__(self, max_inflight: int = 64) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.max_inflight = int(max_inflight)

    def admit(self, engine: "OpenLoopEngine", tenant: "_Tenant") -> bool:
        return engine.inflight < self.max_inflight

    def __repr__(self) -> str:
        return f"<QueueDepthAdmission max_inflight={self.max_inflight}>"


class TenantQuotaAdmission(AdmissionPolicy):
    """Per-tenant in-flight quotas, with an optional engine-wide ceiling.

    Admission isolation: one tenant's burst can only fill its own quota,
    never the whole admission budget — the noisy-neighbour knob the
    control daemon retunes per tenant (``set_quota`` is the actuator
    seam; see :mod:`repro.ctl`)."""

    name = "tenant-quota"

    def __init__(self, quotas: dict[str, int] | None = None, *,
                 default: int = 64, max_inflight: int | None = None) -> None:
        if default <= 0:
            raise ValueError(f"default quota must be positive, got {default}")
        self.quotas = dict(quotas or {})
        for tenant, q in self.quotas.items():
            if q <= 0:
                raise ValueError(f"quota for {tenant!r} must be positive, got {q}")
        self.default = int(default)
        self.max_inflight = max_inflight

    def quota(self, tenant: str) -> int:
        return self.quotas.get(tenant, self.default)

    def set_quota(self, tenant: str, quota: int) -> None:
        if quota <= 0:
            raise ValueError(f"quota for {tenant!r} must be positive, got {quota}")
        self.quotas[tenant] = int(quota)

    def admit(self, engine: "OpenLoopEngine", tenant: "_Tenant") -> bool:
        if self.max_inflight is not None and engine.inflight >= self.max_inflight:
            return False
        return tenant.inflight < self.quota(tenant.spec.name)

    def __repr__(self) -> str:
        return (f"<TenantQuotaAdmission default={self.default} "
                f"quotas={self.quotas} max_inflight={self.max_inflight}>")


class TenantStats:
    """Mutable per-tenant accounting updated as ops complete."""

    __slots__ = ("latency", "launched", "completed", "good", "rejected",
                 "errors", "violations")

    def __init__(self, name: str, rng: np.random.Generator, reservoir: int) -> None:
        self.latency = LatencyRecorder(reservoir=reservoir, rng=rng, name=name)
        self.launched = 0
        self.completed = 0
        self.good = 0
        self.rejected = 0
        self.errors = 0
        self.violations = 0


@dataclass
class _Tenant:
    spec: TenantSpec
    arrivals: ArrivalProcess
    make_op: Callable[[np.random.Generator], Any]
    stats: TenantStats
    rng: np.random.Generator           # op construction (keys, mix)
    arrivals_rng: np.random.Generator  # interarrival draws only
    offered_ops_s: float
    inflight: int = 0  # this tenant's launched-but-unfinished ops


class OpenLoopEngine:
    """Drive a tenant population open-loop against a built LabStorSystem."""

    def __init__(self, system, *, duration_ns: int,
                 policy: AdmissionPolicy | None = None,
                 registry: MetricsRegistry | None = None,
                 reservoir: int = 20_000,
                 max_ops_per_tenant: int | None = None) -> None:
        if duration_ns <= 0:
            raise ValueError(f"duration_ns must be positive, got {duration_ns}")
        self.system = system
        self.env = system.env
        self.duration_ns = int(duration_ns)
        self.policy = policy if policy is not None else AdmissionPolicy()
        if registry is not None:
            self.registry = registry
        elif system.telemetry is not None:
            self.registry = system.telemetry.registry
        else:
            self.registry = MetricsRegistry()
        self.reservoir = reservoir
        self.max_ops_per_tenant = max_ops_per_tenant
        self.inflight = 0
        self.peak_inflight = 0
        self.elapsed_ns = 0
        self._tenants: list[_Tenant] = []
        self._ops: list = []

    # ------------------------------------------------------------------
    def add_tenant(self, spec: TenantSpec,
                   make_op: Callable[[np.random.Generator], Any],
                   *, load_factor: float = 1.0) -> TenantStats:
        """Register a tenant: ``make_op(rng)`` must return an unstarted
        process generator for one request (e.g. ``YcsbWorkload.make_op``)."""
        if any(t.spec.name == spec.name for t in self._tenants):
            raise ValueError(f"duplicate tenant {spec.name!r}")
        rngs = self.system.rngs
        stats = TenantStats(spec.name, rngs.stream(f"traffic.{spec.name}.stats"),
                            self.reservoir)
        # Arrival times draw from their own stream: admission decisions
        # (which gate op-construction draws) must never perturb *when*
        # later ops arrive, or an A/B comparison across admission
        # policies would not face the same offered load.
        self._tenants.append(_Tenant(
            spec=spec,
            arrivals=spec.build_arrivals(load_factor),
            make_op=make_op,
            stats=stats,
            rng=rngs.stream(f"traffic.{spec.name}"),
            arrivals_rng=rngs.stream(f"traffic.{spec.name}.arrivals"),
            offered_ops_s=spec.offered_ops_per_sec * load_factor,
        ))
        # export the SLO target itself: an admission controller needs the
        # deadline to judge how much latency headroom a window's p99 left
        self.registry.set_gauge("tenant_slo_deadline_ns",
                                float(spec.slo.deadline_ns), tenant=spec.name)
        return stats

    @property
    def tenants(self) -> list[TenantSpec]:
        return [t.spec for t in self._tenants]

    def stats(self, name: str) -> TenantStats:
        for t in self._tenants:
            if t.spec.name == name:
                return t.stats
        raise KeyError(f"unknown tenant {name!r}")

    # ------------------------------------------------------------------
    # simulation processes
    # ------------------------------------------------------------------
    def _arrivals(self, t: _Tenant):
        env, rng, spec, stats = self.env, t.rng, t.spec, t.stats
        arrivals_rng = t.arrivals_rng
        reg = self.registry
        end = env._now + self.duration_ns
        cap = self.max_ops_per_tenant
        while True:
            gap = t.arrivals.next_interarrival_ns(arrivals_rng, env._now)
            if env._now + gap >= end:
                return  # the window closed before the next arrival
            yield env.timeout(gap)
            if cap is not None and stats.launched + stats.rejected >= cap:
                return
            if not self.policy.admit(self, t):
                stats.rejected += 1
                reg.inc("tenant_rejected_total", tenant=spec.name)
                continue
            stats.launched += 1
            self.inflight += 1
            t.inflight += 1
            if self.inflight > self.peak_inflight:
                self.peak_inflight = self.inflight
            reg.set_gauge("traffic_inflight", self.inflight)
            reg.set_gauge("tenant_inflight", t.inflight, tenant=spec.name)
            self._ops.append(env.process(self._op(t, t.make_op(rng), env._now)))

    def _op(self, t: _Tenant, gen, start_ns: int):
        ok = True
        try:
            yield from gen
        except Exception:  # noqa: BLE001 - a failed op is an SLO violation, not a crash
            ok = False
        self.inflight -= 1
        t.inflight -= 1
        env, stats, reg = self.env, t.stats, self.registry
        name = t.spec.name
        latency_ns = env._now - start_ns
        stats.completed += 1
        stats.latency.add(latency_ns)
        reg.inc("tenant_ops_total", tenant=name)
        reg.set_gauge("tenant_inflight", t.inflight, tenant=name)
        reg.observe("tenant_latency_ns", latency_ns, tenant=name)
        reg.set_gauge("traffic_inflight", self.inflight)
        if not ok:
            stats.errors += 1
            reg.inc("tenant_op_errors_total", tenant=name)
        if ok and not t.spec.slo.violated(latency_ns):
            stats.good += 1
        else:
            stats.violations += 1
            reg.inc("tenant_slo_violations_total", tenant=name)

    # ------------------------------------------------------------------
    def drive(self):
        """Process generator form of :meth:`run`: spawn every tenant's
        arrival window, wait it out, drain in-flight ops, and return
        :meth:`summary`.  Being a single process event, this composes —
        snapshot programs pause the clock mid-drive and other work can
        run alongside on the same environment."""
        if not self._tenants:
            raise ValueError("no tenants registered; call add_tenant() first")
        env = self.env
        start = env.now
        procs = [env.process(self._arrivals(t)) for t in self._tenants]
        yield env.all_of(procs)
        if self._ops:
            yield env.all_of(self._ops)
        self._ops.clear()
        self.elapsed_ns = env.now - start
        return self.summary()

    def run(self) -> dict[str, Any]:
        """Run every tenant's arrival window, drain in-flight ops, and
        return :meth:`summary`.  ``elapsed_ns`` includes the drain — under
        overload the backlog takes real (virtual) time to clear, and
        goodput is charged for it."""
        env = self.env
        return env.run(env.process(self.drive(), name="traffic.drive"))

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-able per-tenant and aggregate SLO accounting."""
        elapsed_s = self.elapsed_ns / 1e9 if self.elapsed_ns else 0.0
        tenants: dict[str, Any] = {}
        for t in self._tenants:
            st = t.stats
            row: dict[str, Any] = {
                "offered_ops_s": t.offered_ops_s,
                "schedule": t.spec.schedule,
                "users": t.spec.users,
                "launched": st.launched,
                "completed": st.completed,
                "good": st.good,
                "rejected": st.rejected,
                "errors": st.errors,
                "slo_violations": st.violations,
                "goodput_ops_s": st.good / elapsed_s if elapsed_s else 0.0,
                "achieved_ops_s": st.completed / elapsed_s if elapsed_s else 0.0,
                "slo": {"deadline_ns": t.spec.slo.deadline_ns,
                        "p99_ns": t.spec.slo.p99_ns},
            }
            if st.completed:
                p50, p99, p999 = st.latency.pcts((50, 99, 99.9))
                row.update(p50_ns=p50, p99_ns=p99, p999_ns=p999,
                           mean_ns=st.latency.mean)
                if t.spec.slo.p99_ns is not None:
                    row["slo"]["p99_met"] = p99 <= t.spec.slo.p99_ns
            tenants[t.spec.name] = row
        tot = {
            "launched": sum(t.stats.launched for t in self._tenants),
            "completed": sum(t.stats.completed for t in self._tenants),
            "good": sum(t.stats.good for t in self._tenants),
            "rejected": sum(t.stats.rejected for t in self._tenants),
            "errors": sum(t.stats.errors for t in self._tenants),
            "violations": sum(t.stats.violations for t in self._tenants),
        }
        return {
            "policy": self.policy.name,
            "duration_ns": self.duration_ns,
            "elapsed_ns": self.elapsed_ns,
            "peak_inflight": self.peak_inflight,
            "offered_ops_s": sum(t.offered_ops_s for t in self._tenants),
            "goodput_ops_s": tot["good"] / elapsed_s if elapsed_s else 0.0,
            "achieved_ops_s": tot["completed"] / elapsed_s if elapsed_s else 0.0,
            "tenants": tenants,
            "totals": tot,
        }
