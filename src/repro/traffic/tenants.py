"""Tenant populations and SLO specifications.

A *tenant* is a population of logical users sharing one workload and one
SLO.  Millions of independent users each issuing a few ops per second
superpose into one aggregate arrival process (Poisson, or a modulated
variant when their activity correlates — bursts, day/night cycles), which
is how ``users=2_000_000`` becomes a single
:class:`~repro.traffic.arrivals.ArrivalProcess` instead of two million
simulated clients.

The SLO is accounted per request: an op is *good* when it completes
successfully within ``deadline_ns``; everything else is an SLO violation.
``p99_ns`` (optional) is an additional aggregate target the report CLI
grades after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .arrivals import ArrivalProcess, BurstyArrivals, DiurnalArrivals, PoissonArrivals

__all__ = ["TenantSLO", "TenantSpec", "SCHEDULES"]

SCHEDULES = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
}


@dataclass(frozen=True)
class TenantSLO:
    """Per-request latency budget plus an optional aggregate p99 target."""

    deadline_ns: int
    p99_ns: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_ns <= 0:
            raise ValueError(f"deadline_ns must be positive, got {self.deadline_ns}")
        if self.p99_ns is not None and self.p99_ns <= 0:
            raise ValueError(f"p99_ns must be positive, got {self.p99_ns}")

    def violated(self, latency_ns: int) -> bool:
        return latency_ns > self.deadline_ns


@dataclass
class TenantSpec:
    """One tenant: population size, per-user demand, schedule shape, SLO."""

    name: str
    users: int
    ops_per_user_per_sec: float
    slo: TenantSLO
    schedule: str = "poisson"
    schedule_kw: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.users <= 0:
            raise ValueError(f"tenant {self.name!r}: users must be positive")
        if self.ops_per_user_per_sec <= 0:
            raise ValueError(f"tenant {self.name!r}: per-user rate must be positive")
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"tenant {self.name!r}: unknown schedule {self.schedule!r}; "
                f"known: {sorted(SCHEDULES)}"
            )

    @property
    def offered_ops_per_sec(self) -> float:
        """Aggregate demand of the whole population at nominal load."""
        return self.users * self.ops_per_user_per_sec

    def build_arrivals(self, load_factor: float = 1.0) -> ArrivalProcess:
        """Instantiate this tenant's arrival process at ``load_factor``×
        nominal demand (the knob overload sweeps turn)."""
        if load_factor <= 0:
            raise ValueError(f"load_factor must be positive, got {load_factor}")
        rate = self.offered_ops_per_sec * load_factor
        return SCHEDULES[self.schedule](rate, **self.schedule_kw)
