"""Zipf key popularity for KVS traffic.

Real key-value traffic is skewed: a handful of hot keys absorb most of the
load (the YCSB default is a Zipfian with theta=0.99).  numpy's ``rng.zipf``
samples an *unbounded* Zipf, so this module keeps a bounded sampler with a
precomputed CDF: O(nkeys) setup, O(log nkeys) per draw, fully determined
by the stream that drives it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfKeys"]


class ZipfKeys:
    """Bounded Zipfian sampler over key indices ``0 .. nkeys-1``.

    Index 0 is the hottest key; ``theta=0`` degenerates to uniform.
    """

    def __init__(self, nkeys: int, theta: float = 0.99) -> None:
        if nkeys <= 0:
            raise ValueError(f"nkeys must be positive, got {nkeys}")
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.nkeys = int(nkeys)
        self.theta = float(theta)
        ranks = np.arange(1, self.nkeys + 1, dtype=np.float64)
        weights = ranks ** -self.theta
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def sample(self, rng: np.random.Generator) -> int:
        """One key index drawn from the popularity distribution."""
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.searchsorted(self._cdf, rng.random(n), side="right")

    def hot_fraction(self, top: int) -> float:
        """Probability mass carried by the ``top`` hottest keys."""
        top = min(max(top, 0), self.nkeys)
        return float(self._cdf[top - 1]) if top else 0.0

    def __repr__(self) -> str:
        return f"<ZipfKeys n={self.nkeys} theta={self.theta}>"
