"""E4 — Work Orchestrator: request partitioning (paper Fig 5(b)).

Two LabStacks share the Runtime: a latency-sensitive stack (LRU, NoOp,
Kernel Driver) serving a metadata-heavy L-App (file creates), and a
compressor stack (adds CompressionMod) serving a C-App that writes large
requests.  Round-robin vs dynamic queue partitioning, workers 1..8.

Paper shape: RR maximizes C-App bandwidth but destroys L-App latency
(creates wait behind ~20ms compressions); dynamic isolates LQ workers
from CQ workers, dropping L-App latency by orders of magnitude at a
bandwidth cost that shrinks from ~30% (few workers) to ~6% (8 workers).

Scaling: C-App writes 2MB requests instead of 32MB and both apps run
fewer iterations; compression cost is linear so the contention pattern
is identical.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..mods.generic_fs import GenericFS
from ..sim import LatencyRecorder
from ..system import LabStorSystem
from ..units import MiB, msec, sec
from .report import format_table

__all__ = ["run_partition", "sweep_partition", "format_partition"]


def run_partition(
    *,
    nworkers: int,
    policy: str,
    l_threads: int = 8,
    c_threads: int = 8,
    creates_per_thread: int = 200,
    writes_per_thread: int = 6,
    write_size: int = 2 * MiB,
    seed: int = 0,
) -> dict:
    cfg = RuntimeConfig(
        nworkers=nworkers,
        policy=policy,
        min_workers=nworkers,
        max_workers=nworkers,  # Fig 5(b) fixes the worker count; only the
        orchestrator_interval_ns=msec(1.0),  # partitioning policy varies
    )
    sys_ = LabStorSystem(seed=seed, devices=("nvme",), config=cfg)
    sys_.mount_fs_stack("fs::/L", variant="min", uuid_prefix="pl")
    spec = sys_.stack("fs::/C").fs(variant="min").uuid_prefix("pc").build()
    # splice compression after LabFS (the C-LabStack "adds compression")
    from ..core.labstack import NodeSpec

    fs_node = next(n for n in spec.nodes if n.uuid.endswith("labfs"))
    comp = NodeSpec(mod_name="CompressionMod", uuid="pc.comp", attrs={"ratio": 0.5})
    comp.outputs = list(fs_node.outputs)
    fs_node.outputs = ["pc.comp"]
    spec.nodes.insert(spec.nodes.index(fs_node) + 1, comp)
    sys_.runtime.mount_stack(spec)

    l_lat = LatencyRecorder(reservoir=20_000)
    c_bytes = [0]
    l_gfs = [GenericFS(sys_.client()) for _ in range(l_threads)]
    c_gfs = [GenericFS(sys_.client()) for _ in range(c_threads)]

    # warm-up: one loop of each app so the orchestrator's queue classifier
    # sees real request estimates, then a rebalance epoch passes
    def warmup():
        for t, gfs in enumerate(c_gfs):
            fd = yield from gfs.open(f"fs::/C/warm{t}", create=True)
            yield from gfs.write(fd, b"w" * write_size, offset=0)
            yield from gfs.close(fd)
        for t, gfs in enumerate(l_gfs):
            fd = yield from gfs.open(f"fs::/L/warm{t}", create=True)
            yield from gfs.close(fd)
        yield sys_.env.timeout(2 * cfg.orchestrator_interval_ns)

    sys_.run(sys_.process(warmup()))

    def l_app(tid: int):
        gfs = l_gfs[tid]
        for i in range(creates_per_thread):
            start = sys_.env.now
            fd = yield from gfs.open(f"fs::/L/t{tid}/f{i}", create=True)
            yield from gfs.close(fd)
            l_lat.add(sys_.env.now - start)

    c_rates: list[float] = []  # per-thread bytes/sec (fio-style aggregate)

    def c_app(tid: int):
        gfs = c_gfs[tid]
        fd = yield from gfs.open(f"fs::/C/big{tid}", create=True)
        payload = b"c" * write_size
        t0 = sys_.env.now
        for i in range(writes_per_thread):
            yield from gfs.write(fd, payload, offset=i * write_size)
            c_bytes[0] += write_size
        c_rates.append(writes_per_thread * write_size / ((sys_.env.now - t0) / sec(1)))

    l_procs = [sys_.process(l_app(t)) for t in range(l_threads)]
    c_procs = [sys_.process(c_app(t)) for t in range(c_threads)]
    sys_.run(sys_.env.all_of(c_procs))
    sys_.run(sys_.env.all_of(l_procs))
    return {
        "policy": policy,
        "nworkers": nworkers,
        "l_lat_mean_us": l_lat.mean / 1000,
        "l_lat_p99_us": l_lat.p99 / 1000,
        # aggregate bandwidth = sum of per-thread rates, matching a
        # fixed-duration fio aggregate rather than a straggler-bound window
        "c_bw_MBps": sum(c_rates) / 1e6,
    }


def sweep_partition(*, worker_counts=(1, 2, 4, 8), seed: int = 0, **kw) -> list[dict]:
    rows = []
    for policy in ("rr", "dynamic"):
        for n in worker_counts:
            rows.append(run_partition(nworkers=n, policy=policy, seed=seed, **kw))
    return rows


def format_partition(rows: list[dict]) -> str:
    return format_table(
        ["policy", "workers", "L-App mean (us)", "L-App p99 (us)", "C-App BW (MB/s)"],
        [[r["policy"], r["nworkers"], r["l_lat_mean_us"], r["l_lat_p99_us"], r["c_bw_MBps"]]
         for r in rows],
        title="Fig 5(b) — request partitioning: RR vs dynamic",
    )
