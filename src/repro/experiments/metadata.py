"""E6 — Metadata throughput (paper Fig 7).

FxMark-style file-creation stress, threads 1..24, comparing the kernel
filesystems (ext4 / XFS / F2FS) against three LabFS configurations:

- ``labfs-all``  (Centralized+Permissions): Permissions + LabFS, async
- ``labfs-min``  (Centralized): permissions removed, async
- ``labfs-d``    (Minimal): synchronous execution — no IPC, no workers

The LabStor Runtime is configured with 16 workers (as in the paper).

Paper shape: LabFS up to ~3x ext4 single-threaded; removing permissions
buys ~7% more; going synchronous another ~20%; LabFS variants scale with
threads while the kernel FSes flatline on their journal/log locks.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..workloads.fxmark import run_create
from .common import KERNEL_FSES, LabFsFixture, kernel_fs_api
from .report import format_table

__all__ = ["run_metadata", "sweep_metadata", "format_metadata", "CONFIGS"]

CONFIGS = ("ext4", "xfs", "f2fs", "labfs-all", "labfs-min", "labfs-d")


def run_metadata(config: str, *, nthreads: int, files_per_thread: int = 100,
                 nworkers: int = 16, seed: int = 0) -> dict:
    if config in KERNEL_FSES:
        env, api, fs, _dev = kernel_fs_api("nvme", config)
        result = run_create(env, lambda tid: api, nthreads, files_per_thread)
    else:
        variant = config.split("-", 1)[1]
        fixture = LabFsFixture.build(
            variant=variant, nworkers=nworkers,
            config=RuntimeConfig(nworkers=nworkers, min_workers=nworkers,
                                 max_workers=max(16, nworkers), ncores=48),
        )
        result = run_create(fixture.env, fixture.api_factory(), nthreads, files_per_thread)
    return {
        "config": config,
        "nthreads": nthreads,
        "kops_per_sec": result.ops_per_sec / 1000,
    }


def sweep_metadata(*, thread_counts=(1, 4, 8, 16, 24), files_per_thread: int = 60,
                   configs=CONFIGS, seed: int = 0) -> list[dict]:
    rows = []
    for config in configs:
        for n in thread_counts:
            rows.append(run_metadata(config, nthreads=n,
                                     files_per_thread=files_per_thread, seed=seed))
    return rows


def format_metadata(rows: list[dict]) -> str:
    threads = sorted({r["nthreads"] for r in rows})
    configs = []
    for r in rows:
        if r["config"] not in configs:
            configs.append(r["config"])
    table = []
    for config in configs:
        vals = {r["nthreads"]: r["kops_per_sec"] for r in rows if r["config"] == config}
        table.append([config] + [f"{vals.get(t, 0):.1f}" for t in threads])
    return format_table(
        ["config \\ threads"] + [str(t) for t in threads],
        table,
        title="Fig 7 — metadata throughput (K creates/sec)",
    )
