"""Ablations of LabStor's design choices (beyond the paper's figures).

The paper motivates several design decisions without isolating them; these
harnesses do the isolation:

- **allocator**: LabFS's per-worker block allocator vs a single-lock
  central free list (what kernel FS bitmap locks look like).
- **ipc_cost**: sensitivity of metadata throughput to the shared-memory
  hop price — quantifies why LabStor insists on shm queues instead of
  sockets/pipes (which would sit at several µs per hop).
- **exec_mode**: centralized (async, via Runtime workers) vs
  decentralized (sync, client-side) execution across request sizes — the
  crossover where IPC amortizes away.
- **consistency**: the throughput price of each guarantee level
  (strict / standard / relaxed).
- **cache**: LRU capacity vs read latency (hit-rate curve).
"""

from __future__ import annotations

from ..core.labstack import NodeSpec
from ..core.runtime import RuntimeConfig
from ..kernel.cpu import CostModel
from ..mods.generic_fs import GenericFS
from ..system import LabStorSystem
from ..units import KiB, sec
from .report import format_table

__all__ = [
    "ablate_allocator",
    "ablate_ipc_cost",
    "ablate_exec_mode",
    "ablate_consistency",
    "ablate_cache_capacity",
    "format_ablation",
]


def _writer_fleet(sys_, mount, nthreads, files_per_thread, write_size):
    def writer(gfs, tid):
        for i in range(files_per_thread):
            fd = yield from gfs.open(f"{mount}/t{tid}_{i}", create=True)
            yield from gfs.write(fd, b"w" * write_size, offset=0)
            yield from gfs.close(fd)

    start = sys_.env.now
    procs = [sys_.process(writer(GenericFS(sys_.client()), t)) for t in range(nthreads)]
    sys_.run(sys_.env.all_of(procs))
    total = nthreads * files_per_thread
    return total / ((sys_.env.now - start) / sec(1))


def ablate_allocator(*, nthreads: int = 8, files_per_thread: int = 12,
                     write_size: int = 64 * KiB, seed: int = 0) -> list[dict]:
    rows = []
    for allocator in ("perworker", "centralized"):
        sys_ = LabStorSystem(seed=seed, devices=("nvme",),
                             config=RuntimeConfig(nworkers=8, ncores=32))
        spec = sys_.stack("fs::/a").fs(variant="min").build()
        next(n for n in spec.nodes if n.uuid.endswith("labfs")).attrs["allocator"] = allocator
        sys_.runtime.mount_stack(spec)
        ops = _writer_fleet(sys_, "fs::/a", nthreads, files_per_thread, write_size)
        rows.append({"config": allocator, "files_per_sec": ops})
    return rows


def ablate_ipc_cost(*, hop_costs=(250, 950, 3000, 8000), nthreads: int = 4,
                    files_per_thread: int = 40, seed: int = 0) -> list[dict]:
    """Metadata throughput as the queue-hop price grows (950ns = shm;
    3-8µs ≈ pipe/socket-grade IPC)."""
    rows = []
    for hop in hop_costs:
        cost = CostModel().with_overrides(shm_hop_ns=hop)
        sys_ = LabStorSystem(seed=seed, devices=("nvme",), cost=cost,
                             config=RuntimeConfig(nworkers=8, ncores=32))
        sys_.mount_fs_stack("fs::/i", variant="min")

        def creator(gfs, tid):
            for i in range(files_per_thread):
                fd = yield from gfs.open(f"fs::/i/t{tid}_{i}", create=True)
                yield from gfs.close(fd)

        start = sys_.env.now
        procs = [sys_.process(creator(GenericFS(sys_.client()), t)) for t in range(nthreads)]
        sys_.run(sys_.env.all_of(procs))
        total = nthreads * files_per_thread
        rows.append({
            "config": f"hop={hop}ns",
            "kops_per_sec": total / ((sys_.env.now - start) / sec(1)) / 1000,
        })
    return rows


def ablate_exec_mode(*, sizes=(4 * KiB, 64 * KiB, 1024 * KiB), nops: int = 30,
                     seed: int = 0) -> list[dict]:
    """Async (Runtime) vs sync (client) execution across write sizes."""
    rows = []
    for variant in ("min", "d"):
        for size in sizes:
            sys_ = LabStorSystem(seed=seed, devices=("nvme",))
            sys_.mount_fs_stack("fs::/x", variant=variant)
            gfs = GenericFS(sys_.client())

            def proc():
                fd = yield from gfs.open("fs::/x/f", create=True)
                start = sys_.env.now
                for i in range(nops):
                    yield from gfs.write(fd, b"e" * size, offset=i * size)
                return (sys_.env.now - start) / nops

            lat = sys_.run(sys_.process(proc()))
            rows.append({
                "config": f"{'async' if variant == 'min' else 'sync'} {size // 1024}KB",
                "lat_us": lat / 1000,
            })
    return rows


def ablate_consistency(*, nops: int = 40, seed: int = 0) -> list[dict]:
    rows = []
    for policy in ("strict", "standard", "relaxed"):
        sys_ = LabStorSystem(seed=seed, devices=("nvme",))
        spec = sys_.stack("fs::/c").fs(variant="min").build()
        anchor = next(n for n in spec.nodes if n.uuid.endswith("labfs"))
        node = NodeSpec(mod_name="ConsistencyMod", uuid=f"abl.{policy}",
                        attrs={"policy": policy})
        node.outputs = list(anchor.outputs)
        anchor.outputs = [node.uuid]
        spec.nodes.insert(spec.nodes.index(anchor) + 1, node)
        sys_.runtime.mount_stack(spec)
        gfs = GenericFS(sys_.client())

        def proc():
            fd = yield from gfs.open("fs::/c/f", create=True)
            start = sys_.env.now
            for i in range(nops):
                yield from gfs.write(fd, b"c" * 4096, offset=i * 4096)
                yield from gfs.fsync(fd)
            return nops / ((sys_.env.now - start) / sec(1))

        rows.append({"config": policy, "ops_per_sec": sys_.run(sys_.process(proc()))})
    return rows


def ablate_cache_capacity(*, capacities=(64, 1024, 16_384), nfiles: int = 32,
                          file_size: int = 16 * KiB, seed: int = 0) -> list[dict]:
    rows = []
    for cap in capacities:
        sys_ = LabStorSystem(seed=seed, devices=("nvme",))
        spec = sys_.stack("fs::/l").fs(variant="min").build()
        next(n for n in spec.nodes if n.uuid.endswith("lru")).attrs["capacity_pages"] = cap
        stack = sys_.runtime.mount_stack(spec)
        gfs = GenericFS(sys_.client())

        def proc():
            for i in range(nfiles):
                yield from gfs.write_file(f"fs::/l/f{i}", b"r" * file_size)
            start = sys_.env.now
            for rnd in range(3):
                for i in range(nfiles):
                    yield from gfs.read_file(f"fs::/l/f{i}")
            return (sys_.env.now - start) / (3 * nfiles)

        lat = sys_.run(sys_.process(proc()))
        lru = next(m for u, m in stack.mods.items() if u.endswith("lru"))
        hit_rate = lru.hits / max(1, lru.hits + lru.misses)
        rows.append({"config": f"{cap} pages", "read_lat_us": lat / 1000,
                     "hit_rate": hit_rate})
    return rows


def format_ablation(rows: list[dict], title: str) -> str:
    if not rows:
        return title + " (no rows)"
    headers = list(rows[0].keys())
    return format_table(headers, [[r[h] for h in headers] for r in rows], title=title)
