"""E14 — sharded GenericKVS scaling across cluster nodes.

Fixed offered load (a constant pool of closed-loop client processes,
constant total op count) against a :class:`~repro.cluster.ShardedKVS`
spread over 1..N single-worker nodes.  With one Runtime worker per node
the single-node deployment is service-time bound, so adding nodes adds
genuine capacity: throughput should scale near-linearly until the
fabric round trip (NIC fetch + serialization + propagation, both ways)
starts to dominate; the replicated points price the write fan-out.

The second half re-hosts the paper's PFS evaluation (E8 / Fig 9(a)) on
genuine cluster nodes: the MDS runs a LabFS stack on its own node, each
data server's ext4 rides its own node's device, and every PFS message
pays the shared fabric through :class:`~repro.cluster.FabricTransport`
instead of the standalone latency+bandwidth formula.

Everything here is deterministic: results depend only on (point, seed),
and :func:`sweep_cluster_scaling` fans points through
:func:`~repro.experiments.sweep.run_sweep`, so process counts cannot
change the digest.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..kernel import make_filesystem
from ..mods.generic_fs import GenericFS
from ..pfs import OrangeFs
from ..sim.check import reset_global_counters
from ..units import to_sec
from ..workloads.fsapi import GenericFsAdapter, KernelFsAdapter
from ..workloads.vpic import VpicConfig, run_bdcats, run_vpic
from .report import format_table
from .sweep import run_sweep

__all__ = [
    "run_cluster_scaling",
    "sweep_cluster_scaling",
    "format_cluster_scaling",
    "run_cluster_scaling_par",
    "sweep_cluster_scaling_par",
    "format_cluster_scaling_par",
    "run_pfs_cluster",
    "sweep_pfs_cluster",
    "format_pfs_cluster",
]


def _bench_loop(kvs, i: int, nops: int, value_size: int):
    payload = bytes(value_size)
    for j in range(nops):
        yield from kvs.put(f"c{i}.k{j}", payload)
    for j in range(nops):
        yield from kvs.get(f"c{i}.k{j}")


def run_cluster_scaling(
    *,
    nnodes: int = 2,
    replicas: int = 1,
    nclients: int = 32,
    ops_per_client: int = 16,
    value_size: int = 256,
    vnodes: int = 64,
    seed: int = 0,
) -> dict:
    """One E14 point: ``nclients`` closed loops over an ``nnodes``-node
    sharded KVS with ``replicas``-way replication.

    Offered load is fixed by construction — the loop pool and total op
    count do not change with the node count — so ops/s differences are
    pure capacity."""
    from ..cluster import cluster as cluster_builder

    b = cluster_builder(seed=seed)
    cfg = RuntimeConfig(nworkers=1, min_workers=1, max_workers=1)
    for i in range(nnodes):
        b.node(f"n{i}", config=cfg)
    cl = b.build()
    kvs = cl.shard_kvs("kvs::/bench", replicas=replicas, vnodes=vnodes)
    # one gateway per node: clients enter the cluster where they live,
    # like real tenants, instead of funneling through a single node
    gateways = [kvs] + [
        kvs.bind(cl.client(f"n{i}")) for i in range(1, nnodes)
    ]
    procs = [
        cl.process(
            _bench_loop(gateways[i % nnodes], i, ops_per_client, value_size),
            name=f"bench.loop{i}",
        )
        for i in range(nclients)
    ]
    t0 = cl.env.now
    for p in procs:
        cl.run(p)
    elapsed_ns = cl.env.now - t0
    total_ops = nclients * ops_per_client * 2
    fabric_bytes = sum(s["bytes"] for s in cl.fabric.stats().values())
    remote_calls = sum(r.remote_calls for r in cl._routes.values())
    cl.shutdown()
    return {
        "nnodes": nnodes,
        "replicas": replicas,
        "ops": total_ops,
        "elapsed_ms": elapsed_ns / 1e6,
        "kops_s": total_ops / to_sec(elapsed_ns) / 1e3 if elapsed_ns else 0.0,
        "remote_calls": remote_calls,
        "fabric_MB": fabric_bytes / 1e6,
        "fanout_failovers": kvs.failovers,
    }


def _scaling_point(point: dict, seed: int) -> dict:
    """Module-level sweep fn (crosses the process pool).  Resetting the
    identity counters first makes the run independent of whatever the
    worker process simulated before — the digest-stability contract."""
    reset_global_counters()
    row = run_cluster_scaling(
        nnodes=point["nnodes"],
        replicas=point["replicas"],
        nclients=point.get("nclients", 32),
        ops_per_client=point.get("ops_per_client", 16),
        seed=seed,
    )
    row["seed"] = seed
    return row


def sweep_cluster_scaling(
    *,
    node_counts=(1, 2, 4),
    replica_counts=(1, 2),
    nclients: int = 32,
    ops_per_client: int = 16,
    base_seed: int = 0,
    processes: int | None = None,
) -> list[dict]:
    """The E14 grid: node count x replication factor (points needing
    more nodes than they have are skipped)."""
    points = [
        {"nnodes": n, "replicas": r,
         "nclients": nclients, "ops_per_client": ops_per_client}
        for n in node_counts
        for r in replica_counts
        if r <= n
    ]
    return run_sweep(_scaling_point, points, base_seed=base_seed,
                     processes=processes)


def format_cluster_scaling(rows: list[dict]) -> str:
    base = {
        r["replicas"]: r["kops_s"] for r in rows if r["nnodes"] == min(
            row["nnodes"] for row in rows
        )
    }
    return format_table(
        ["nodes", "replicas", "kops/s", "speedup", "elapsed (ms)",
         "remote calls", "fabric MB"],
        [[r["nnodes"], r["replicas"], f"{r['kops_s']:.1f}",
          f"{r['kops_s'] / base[r['replicas']]:.2f}x"
          if base.get(r["replicas"]) else "-",
          f"{r['elapsed_ms']:.2f}", r["remote_calls"],
          f"{r['fabric_MB']:.2f}"] for r in rows],
        title="E14 — sharded GenericKVS throughput vs. cluster size",
    )


# ----------------------------------------------------------------------
# E14 under the sharded runner
# ----------------------------------------------------------------------
def run_cluster_scaling_par(
    *,
    nnodes: int = 4,
    shards: int = 1,
    replicas: int = 1,
    nclients: int = 96,
    ops_per_client: int = 16,
    value_size: int = 256,
    link_lat_ns: int = 100_000,
    seed: int = 0,
) -> dict:
    """One E14 point executed by :mod:`repro.sim.par`: the same fixed
    offered load over a cross-rack topology (wide ``link_lat_ns`` buys
    the runner wide lookahead windows), sharded across ``shards`` OS
    processes.  ``shards=1`` is the serial baseline of the same windowed
    architecture — virtual results are byte-identical at every shard
    count, only wall clock moves."""
    from ..cluster.par import E14ParProgram
    from ..sim.par import run_program

    program = E14ParProgram(
        seed, nnodes=nnodes, replicas=replicas, nclients=nclients,
        ops_per_client=ops_per_client, value_size=value_size,
        link_lat_ns=link_lat_ns,
    )
    res = run_program(program, shards=shards, trace=False)
    row = dict(res.reduced)
    row.update(
        shards=res.shards,
        rounds=res.rounds,
        messages=res.messages,
        events=res.events,
        wall_s=res.wall_s,
        max_shard_cpu_s=max(s["cpu_s"] for s in res.shard_stats),
        total_cpu_s=sum(s["cpu_s"] for s in res.shard_stats),
        seed=seed,
    )
    return row


def sweep_cluster_scaling_par(
    *,
    node_counts=(4, 8),
    shard_counts=(1, 2, 4),
    nclients: int = 96,
    ops_per_client: int = 16,
    seed: int = 0,
) -> list[dict]:
    """E14 at 4-8 nodes under the parallel runner: every (nnodes,
    shards) cell, run sequentially so each cell's forked shards get the
    whole machine.  Within a node count the virtual rows must agree —
    asserted here, the cheap always-on cousin of the digest gate."""
    rows: list[dict] = []
    for nnodes in node_counts:
        base: dict | None = None
        for shards in shard_counts:
            if shards > nnodes:
                continue
            reset_global_counters()
            row = run_cluster_scaling_par(
                nnodes=nnodes, shards=shards, nclients=nclients,
                ops_per_client=ops_per_client, seed=seed,
            )
            if base is None:
                base = row
            else:
                for key in ("ops", "kops_s", "remote_calls", "fabric_MB"):
                    assert row[key] == base[key], (
                        f"nnodes={nnodes} shards={shards}: {key} diverged "
                        f"from the shards={shard_counts[0]} baseline")
            row["speedup"] = base["wall_s"] / row["wall_s"] if row["wall_s"] else 0.0
            rows.append(row)
    return rows


def format_cluster_scaling_par(rows: list[dict]) -> str:
    return format_table(
        ["nodes", "shards", "kops/s", "wall (s)", "speedup", "rounds",
         "msgs", "max cpu (s)"],
        [[r["nnodes"], r["shards"], f"{r['kops_s']:.1f}",
          f"{r['wall_s']:.3f}", f"{r.get('speedup', 1.0):.2f}x",
          r["rounds"], r["messages"], f"{r['max_shard_cpu_s']:.3f}"]
         for r in rows],
        title="E14/par — sharded-runner wall clock vs. shard count",
    )


# ----------------------------------------------------------------------
# PFS re-hosted on genuine nodes
# ----------------------------------------------------------------------
def run_pfs_cluster(
    *,
    ndata: int = 4,
    data_device: str = "nvme",
    mds_variant: str = "min",
    cfg: VpicConfig | None = None,
    seed: int = 0,
) -> dict:
    """The Fig 9(a) evaluation with every server on a real cluster node.

    Node ``cn`` hosts the compute client, ``mds`` runs LabFS-<variant>
    on its own Runtime, and each ``d<i>`` data server's ext4 rides that
    node's device.  PFS messages pay the shared fabric."""
    from ..cluster import FabricTransport, cluster as cluster_builder

    cfg = cfg or VpicConfig(nprocs=2, timesteps=2, particles_per_proc=2048)
    b = cluster_builder(seed=seed)
    b.node("cn")
    b.node("mds", config=RuntimeConfig(nworkers=4, min_workers=4, max_workers=8))
    for i in range(ndata):
        b.node(f"d{i}", devices=(data_device,))
    cl = b.build()

    mds_node = cl.nodes["mds"]
    mds_node.stack("fs::/mds").fs(variant=mds_variant, nworkers=4).mount()
    cl.register_service("fs::/mds", "mds")
    mds_api = GenericFsAdapter(GenericFS(mds_node.client()), "fs::/mds")
    data_apis = [
        KernelFsAdapter(make_filesystem(
            "ext4", cl.env, cl.nodes[f"d{i}"].devices[data_device]))
        for i in range(ndata)
    ]
    transport = FabricTransport(
        cl.fabric, "cn",
        {"mds": "mds", **{i: f"d{i}" for i in range(ndata)}},
    )
    pfs = OrangeFs(cl.env, mds_api, data_apis, transport=transport)
    vpic = run_vpic(cl.env, pfs, cfg)
    pfs.drop_data_caches()
    bdcats = run_bdcats(cl.env, pfs, cfg)
    fabric_bytes = sum(s["bytes"] for s in cl.fabric.stats().values())
    cl.shutdown()
    return {
        "ndata": ndata,
        "nprocs": cfg.nprocs,
        "data_device": data_device,
        "mds_variant": mds_variant,
        "vpic_s": to_sec(vpic.elapsed_ns),
        "bdcats_s": to_sec(bdcats.elapsed_ns),
        "vpic_MBps": vpic.bandwidth_MBps,
        "bdcats_MBps": bdcats.bandwidth_MBps,
        "metadata_ops": vpic.metadata_ops + bdcats.metadata_ops,
        "fabric_messages": transport.messages,
        "fabric_MB": fabric_bytes / 1e6,
    }


def _pfs_cluster_point(point: dict, seed: int) -> dict:
    """Module-level sweep fn (crosses the process pool)."""
    reset_global_counters()
    row = run_pfs_cluster(
        ndata=point["ndata"],
        cfg=VpicConfig(
            nprocs=point["nprocs"],
            timesteps=point.get("timesteps", 2),
            particles_per_proc=point.get("particles_per_proc", 1024),
        ),
        seed=seed,
    )
    row["seed"] = seed
    return row


def sweep_pfs_cluster(
    *,
    proc_counts=(8, 32, 128),
    ndata: int = 4,
    timesteps: int = 2,
    particles_per_proc: int = 1024,
    base_seed: int = 0,
    processes: int | None = None,
) -> list[dict]:
    """The PFS grid pushed toward the paper's 640-process shape: VPIC
    rank count scaled on a fixed node-hosted deployment.  Points fan out
    over the sweep's process pool — the grid, not a single point, is the
    parallel unit here, because OrangeFs generator frames thread through
    every node's adapters and cannot split across Environments.  Pass
    ``proc_counts=(40, 160, 640)`` for the full paper shape."""
    points = [
        {"ndata": ndata, "nprocs": n, "timesteps": timesteps,
         "particles_per_proc": particles_per_proc}
        for n in proc_counts
    ]
    return run_sweep(_pfs_cluster_point, points, base_seed=base_seed,
                     processes=processes)


def format_pfs_cluster(rows: list[dict]) -> str:
    return format_table(
        ["procs", "data nodes", "vpic MB/s", "bdcats MB/s", "meta ops",
         "fabric MB"],
        [[r["nprocs"], r["ndata"], f"{r['vpic_MBps']:.1f}",
          f"{r['bdcats_MBps']:.1f}", r["metadata_ops"],
          f"{r['fabric_MB']:.2f}"] for r in rows],
        title="E8/cluster — node-hosted PFS vs. VPIC process count",
    )
