"""E14 — sharded GenericKVS scaling across cluster nodes.

Fixed offered load (a constant pool of closed-loop client processes,
constant total op count) against a :class:`~repro.cluster.ShardedKVS`
spread over 1..N single-worker nodes.  With one Runtime worker per node
the single-node deployment is service-time bound, so adding nodes adds
genuine capacity: throughput should scale near-linearly until the
fabric round trip (NIC fetch + serialization + propagation, both ways)
starts to dominate; the replicated points price the write fan-out.

The second half re-hosts the paper's PFS evaluation (E8 / Fig 9(a)) on
genuine cluster nodes: the MDS runs a LabFS stack on its own node, each
data server's ext4 rides its own node's device, and every PFS message
pays the shared fabric through :class:`~repro.cluster.FabricTransport`
instead of the standalone latency+bandwidth formula.

Everything here is deterministic: results depend only on (point, seed),
and :func:`sweep_cluster_scaling` fans points through
:func:`~repro.experiments.sweep.run_sweep`, so process counts cannot
change the digest.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..kernel import make_filesystem
from ..mods.generic_fs import GenericFS
from ..pfs import OrangeFs
from ..sim.check import reset_global_counters
from ..units import to_sec
from ..workloads.fsapi import GenericFsAdapter, KernelFsAdapter
from ..workloads.vpic import VpicConfig, run_bdcats, run_vpic
from .report import format_table
from .sweep import run_sweep

__all__ = [
    "run_cluster_scaling",
    "sweep_cluster_scaling",
    "format_cluster_scaling",
    "run_pfs_cluster",
]


def _bench_loop(kvs, i: int, nops: int, value_size: int):
    payload = bytes(value_size)
    for j in range(nops):
        yield from kvs.put(f"c{i}.k{j}", payload)
    for j in range(nops):
        yield from kvs.get(f"c{i}.k{j}")


def run_cluster_scaling(
    *,
    nnodes: int = 2,
    replicas: int = 1,
    nclients: int = 32,
    ops_per_client: int = 16,
    value_size: int = 256,
    vnodes: int = 64,
    seed: int = 0,
) -> dict:
    """One E14 point: ``nclients`` closed loops over an ``nnodes``-node
    sharded KVS with ``replicas``-way replication.

    Offered load is fixed by construction — the loop pool and total op
    count do not change with the node count — so ops/s differences are
    pure capacity."""
    from ..cluster import cluster as cluster_builder

    b = cluster_builder(seed=seed)
    cfg = RuntimeConfig(nworkers=1, min_workers=1, max_workers=1)
    for i in range(nnodes):
        b.node(f"n{i}", config=cfg)
    cl = b.build()
    kvs = cl.shard_kvs("kvs::/bench", replicas=replicas, vnodes=vnodes)
    # one gateway per node: clients enter the cluster where they live,
    # like real tenants, instead of funneling through a single node
    gateways = [kvs] + [
        kvs.bind(cl.client(f"n{i}")) for i in range(1, nnodes)
    ]
    procs = [
        cl.process(
            _bench_loop(gateways[i % nnodes], i, ops_per_client, value_size),
            name=f"bench.loop{i}",
        )
        for i in range(nclients)
    ]
    t0 = cl.env.now
    for p in procs:
        cl.run(p)
    elapsed_ns = cl.env.now - t0
    total_ops = nclients * ops_per_client * 2
    fabric_bytes = sum(s["bytes"] for s in cl.fabric.stats().values())
    remote_calls = sum(r.remote_calls for r in cl._routes.values())
    cl.shutdown()
    return {
        "nnodes": nnodes,
        "replicas": replicas,
        "ops": total_ops,
        "elapsed_ms": elapsed_ns / 1e6,
        "kops_s": total_ops / to_sec(elapsed_ns) / 1e3 if elapsed_ns else 0.0,
        "remote_calls": remote_calls,
        "fabric_MB": fabric_bytes / 1e6,
        "fanout_failovers": kvs.failovers,
    }


def _scaling_point(point: dict, seed: int) -> dict:
    """Module-level sweep fn (crosses the process pool).  Resetting the
    identity counters first makes the run independent of whatever the
    worker process simulated before — the digest-stability contract."""
    reset_global_counters()
    row = run_cluster_scaling(
        nnodes=point["nnodes"],
        replicas=point["replicas"],
        nclients=point.get("nclients", 32),
        ops_per_client=point.get("ops_per_client", 16),
        seed=seed,
    )
    row["seed"] = seed
    return row


def sweep_cluster_scaling(
    *,
    node_counts=(1, 2, 4),
    replica_counts=(1, 2),
    nclients: int = 32,
    ops_per_client: int = 16,
    base_seed: int = 0,
    processes: int | None = None,
) -> list[dict]:
    """The E14 grid: node count x replication factor (points needing
    more nodes than they have are skipped)."""
    points = [
        {"nnodes": n, "replicas": r,
         "nclients": nclients, "ops_per_client": ops_per_client}
        for n in node_counts
        for r in replica_counts
        if r <= n
    ]
    return run_sweep(_scaling_point, points, base_seed=base_seed,
                     processes=processes)


def format_cluster_scaling(rows: list[dict]) -> str:
    base = {
        r["replicas"]: r["kops_s"] for r in rows if r["nnodes"] == min(
            row["nnodes"] for row in rows
        )
    }
    return format_table(
        ["nodes", "replicas", "kops/s", "speedup", "elapsed (ms)",
         "remote calls", "fabric MB"],
        [[r["nnodes"], r["replicas"], f"{r['kops_s']:.1f}",
          f"{r['kops_s'] / base[r['replicas']]:.2f}x"
          if base.get(r["replicas"]) else "-",
          f"{r['elapsed_ms']:.2f}", r["remote_calls"],
          f"{r['fabric_MB']:.2f}"] for r in rows],
        title="E14 — sharded GenericKVS throughput vs. cluster size",
    )


# ----------------------------------------------------------------------
# PFS re-hosted on genuine nodes
# ----------------------------------------------------------------------
def run_pfs_cluster(
    *,
    ndata: int = 4,
    data_device: str = "nvme",
    mds_variant: str = "min",
    cfg: VpicConfig | None = None,
    seed: int = 0,
) -> dict:
    """The Fig 9(a) evaluation with every server on a real cluster node.

    Node ``cn`` hosts the compute client, ``mds`` runs LabFS-<variant>
    on its own Runtime, and each ``d<i>`` data server's ext4 rides that
    node's device.  PFS messages pay the shared fabric."""
    from ..cluster import FabricTransport, cluster as cluster_builder

    cfg = cfg or VpicConfig(nprocs=2, timesteps=2, particles_per_proc=2048)
    b = cluster_builder(seed=seed)
    b.node("cn")
    b.node("mds", config=RuntimeConfig(nworkers=4, min_workers=4, max_workers=8))
    for i in range(ndata):
        b.node(f"d{i}", devices=(data_device,))
    cl = b.build()

    mds_node = cl.nodes["mds"]
    mds_node.stack("fs::/mds").fs(variant=mds_variant, nworkers=4).mount()
    cl.register_service("fs::/mds", "mds")
    mds_api = GenericFsAdapter(GenericFS(mds_node.client()), "fs::/mds")
    data_apis = [
        KernelFsAdapter(make_filesystem(
            "ext4", cl.env, cl.nodes[f"d{i}"].devices[data_device]))
        for i in range(ndata)
    ]
    transport = FabricTransport(
        cl.fabric, "cn",
        {"mds": "mds", **{i: f"d{i}" for i in range(ndata)}},
    )
    pfs = OrangeFs(cl.env, mds_api, data_apis, transport=transport)
    vpic = run_vpic(cl.env, pfs, cfg)
    pfs.drop_data_caches()
    bdcats = run_bdcats(cl.env, pfs, cfg)
    fabric_bytes = sum(s["bytes"] for s in cl.fabric.stats().values())
    cl.shutdown()
    return {
        "ndata": ndata,
        "data_device": data_device,
        "mds_variant": mds_variant,
        "vpic_s": to_sec(vpic.elapsed_ns),
        "bdcats_s": to_sec(bdcats.elapsed_ns),
        "vpic_MBps": vpic.bandwidth_MBps,
        "bdcats_MBps": bdcats.bandwidth_MBps,
        "metadata_ops": vpic.metadata_ops + bdcats.metadata_ops,
        "fabric_messages": transport.messages,
        "fabric_MB": fabric_bytes / 1e6,
    }
