"""E15 — closed-loop control: controller vs static-best vs oracle.

The case for a control plane in one table: a two-phase *shifting* mix
where no single static admission limit is right for both phases.

- **Phase A** — a latency-critical frontend (YCSB-C, 150us deadline)
  offered *above* capacity.  Any op that queues blows its deadline, so
  the right admission limit is *small*: serve a short pipeline fast,
  shed the rest at the door.
- **Phase B** — a bursty analytics tenant (YCSB-A, 1ms deadline) whose
  *mean* load fits capacity.  Rejections are now pure goodput loss —
  the right limit is *large*: buffer the burst and let the loose
  deadline absorb the queueing.

A static limit must pick one side.  The
:class:`~repro.ctl.controllers.AdmissionController` (AIMD on the
window SLO-burn/rejection rates, randomness from the seeded ``"ctl"``
stream) re-walks the limit as the mix shifts and beats every static
point.  The **oracle** is synthesized from the static sweep — the best
per-phase goodput any fixed limit achieved, summed — an upper bound no
causal controller can exceed.

Every mode faces the *identical* seeded workload (same arrivals, same
keys), so the comparison isolates the control policy; points carry
their seed explicitly rather than taking :func:`run_sweep`'s per-index
derived seeds.
"""

from __future__ import annotations

from ..units import msec, usec
from .report import format_table
from .sweep import run_sweep

__all__ = ["STATIC_LIMITS", "PHASES", "run_control_point",
           "sweep_control_plane", "format_control_plane"]

#: static admission limits swept for the baseline and the oracle
STATIC_LIMITS = (2, 4, 8, 16, 32, 64, 128)
#: the controller's starting limit (also a static point, so "just start
#: where the controller starts" is represented in the baseline)
START_LIMIT = 16

MOUNT = "kvs::/e15"

#: the shifting mix: each phase is one tenant driven for its window
PHASES = (
    {
        "name": "frontend", "mix": "C", "theta": 0.99,
        "deadline_ns": usec(150), "offered_ops_s": 90_000.0,
        "schedule": "poisson", "schedule_kw": {},
        "duration_ns": msec(5),
    },
    {
        "name": "analytics", "mix": "A", "theta": 0.6,
        "deadline_ns": msec(1), "offered_ops_s": 30_000.0,
        "schedule": "bursty",
        "schedule_kw": {"burst_factor": 6.0, "duty": 0.25,
                        "mean_burst_ns": msec(0.5)},
        "duration_ns": msec(5),
    },
)


def run_control_point(point: dict, _sweep_seed: int) -> dict:
    """One mode ("static" at a limit, or "controller") over both phases.

    Module-level so it crosses a process pool.  The seed comes from the
    point itself: every mode must replay the same workload.
    """
    from ..core.runtime import RuntimeConfig
    from ..ctl.actuators import Actuators
    from ..ctl.controllers import AdmissionController
    from ..ctl.daemon import ControlDaemon
    from ..mods.generic_kvs import GenericKVS
    from ..system import LabStorSystem
    from ..traffic.engine import OpenLoopEngine, QueueDepthAdmission
    from ..traffic.tenants import TenantSLO, TenantSpec
    from ..traffic.ycsb import YcsbWorkload

    seed = point.get("seed", 0)
    mode = point["mode"]
    limit = point.get("limit", START_LIMIT)
    system = LabStorSystem(
        seed=seed, devices=("nvme",), telemetry=True,
        config=RuntimeConfig(nworkers=2),
    )
    system.mount_kvs_stack(MOUNT, variant="all")
    kvs = GenericKVS(system.client(), MOUNT)
    policy = QueueDepthAdmission(limit)
    daemon = None
    if mode == "controller":
        actuators = Actuators(system, cooldown_ticks=2, max_actions_per_tick=2)
        actuators.bind_admission(policy)
        daemon = ControlDaemon(
            system, interval_ns=usec(250),
            controllers=[AdmissionController(min_limit=2, max_limit=128)],
            actuators=actuators,
        )
    row: dict = {"mode": mode, "limit": limit if mode == "static" else None,
                 "seed": seed, "phases": {}}
    preloaded = False
    for phase in PHASES:
        wl = YcsbWorkload(kvs, mix=phase["mix"], nkeys=128,
                          theta=phase["theta"], value_size=256)
        if not preloaded:  # phases share the keyspace: one load phase
            system.run(system.process(wl.preload()))
            preloaded = True
        spec = TenantSpec(
            name=phase["name"], users=1,
            ops_per_user_per_sec=phase["offered_ops_s"],
            slo=TenantSLO(deadline_ns=phase["deadline_ns"]),
            schedule=phase["schedule"], schedule_kw=dict(phase["schedule_kw"]),
        )
        engine = OpenLoopEngine(system, duration_ns=phase["duration_ns"],
                                policy=policy)
        engine.add_tenant(spec, wl.make_op)
        s = engine.run()
        t = s["tenants"][phase["name"]]
        row["phases"][phase["name"]] = {
            "good": t["good"], "completed": t["completed"],
            "violations": t["slo_violations"], "rejected": t["rejected"],
            "limit_at_end": policy.max_inflight,
        }
    row["total_good"] = sum(p["good"] for p in row["phases"].values())
    if daemon is not None:
        daemon.stop()
        row["ctl_actions"] = daemon.actions_taken
        row["ctl_suppressed"] = daemon.actuators.suppressed
    system.shutdown()
    return row


def sweep_control_plane(*, limits=STATIC_LIMITS, seed: int = 0,
                        processes: int | None = None) -> dict:
    """Static sweep + controller run + synthesized oracle, one dict."""
    points = [{"mode": "static", "limit": lim, "seed": seed} for lim in limits]
    points.append({"mode": "controller", "seed": seed})
    rows = run_sweep(run_control_point, points, base_seed=seed,
                     processes=processes)
    static_rows = [r for r in rows if r["mode"] == "static"]
    controller = next(r for r in rows if r["mode"] == "controller")
    static_best = max(static_rows, key=lambda r: r["total_good"])
    # oracle: for each phase, the best goodput any static limit achieved
    oracle = {
        name: max(r["phases"][name]["good"] for r in static_rows)
        for name in (p["name"] for p in PHASES)
    }
    oracle_total = sum(oracle.values())
    return {
        "rows": rows,
        "controller_total": controller["total_good"],
        "static_best_total": static_best["total_good"],
        "static_best_limit": static_best["limit"],
        "oracle_total": oracle_total,
        "oracle_per_phase": oracle,
        "beats_static": controller["total_good"] > static_best["total_good"],
        "vs_oracle": (controller["total_good"] / oracle_total
                      if oracle_total else 0.0),
        "seed": seed,
    }


def format_control_plane(result: dict) -> str:
    phase_names = [p["name"] for p in PHASES]
    rows = []
    for r in result["rows"]:
        label = (f"static {r['limit']}" if r["mode"] == "static"
                 else "controller")
        cells = [label]
        for name in phase_names:
            p = r["phases"][name]
            cells.append(f"{p['good']}")
            cells.append(f"{p['rejected']}")
        cells.append(f"{r['total_good']}")
        rows.append(cells)
    headers = ["mode"]
    for name in phase_names:
        headers += [f"{name} good", "rej"]
    headers.append("total good")
    table = format_table(
        headers, rows,
        title="E15 — shifting mix: controller vs static admission limits",
    )
    lines = [
        table,
        "",
        f"  static-best  {result['static_best_total']} in-SLO ops "
        f"(limit {result['static_best_limit']})",
        f"  controller   {result['controller_total']} in-SLO ops "
        f"({'beats' if result['beats_static'] else 'DOES NOT beat'} "
        f"static-best)",
        f"  oracle       {result['oracle_total']} in-SLO ops "
        f"(controller at {result['vs_oracle']:.0%})",
    ]
    return "\n".join(lines)
