"""E11 — Fault recovery: recovery time and goodput under injected faults.

Not a paper figure: a chaos harness over :mod:`repro.faults`.  A
retrying :class:`~repro.mods.generic_fs.GenericFS` client writes a file
population while a :class:`~repro.faults.FaultPlan` injects media
errors, latency spikes, queue rejections, and (optionally) a mid-run
power cut with automatic restart.  Everything is measured through
:mod:`repro.obs` telemetry:

- **goodput** — acknowledged writes per simulated second (so fault
  pressure shows up as throughput loss, not just error counts);
- **recovery time** — the ``runtime_recovery_ns`` histogram fed by the
  Runtime's ``fault.runtime`` restart event;
- **fault economics** — injections, retries, and giveups from the
  ``faults_injected_total`` / ``fault_retries_total`` /
  ``fault_giveups_total`` counters.

After the run, a :class:`~repro.faults.CrashConsistencyChecker` audits
the recovered namespace: every acknowledged write must read back whole,
every unacknowledged one must be absent or a torn sector-aligned prefix.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..faults import CrashConsistencyChecker, FaultPlan, FaultSpec, RetryPolicy
from ..mods.generic_fs import GenericFS
from ..obs import Telemetry
from ..system import LabStorSystem
from ..units import msec, to_sec, usec
from .report import format_table

__all__ = ["run_fault_recovery", "sweep_fault_recovery", "format_fault_recovery"]

WRITE_BS = 4096


def _counter_total(registry, name: str) -> int:
    """Sum a labeled counter family across all label sets."""
    return sum(
        c["value"] for c in registry.snapshot()["counters"] if c["name"] == name
    )


def build_plan(
    *,
    media_error_p: float = 0.0,
    latency_p: float = 0.0,
    qp_reject_p: float = 0.0,
    power_cut_at_ns: int | None = None,
    restart_after_ns: int | None = None,
    device: str = "nvme",
) -> FaultPlan | None:
    """Assemble the experiment's FaultPlan from scalar knobs (None if all
    pressure is zero and no power cut is scheduled)."""
    specs: list[FaultSpec] = []
    if media_error_p > 0:
        specs.append(FaultSpec(kind="media_error", device=device, op="write",
                               probability=media_error_p))
    if latency_p > 0:
        specs.append(FaultSpec(kind="latency", device=device,
                               probability=latency_p, extra_ns=int(usec(120))))
    if qp_reject_p > 0:
        specs.append(FaultSpec(kind="qp_reject", probability=qp_reject_p))
    plan = FaultPlan.of(*specs) if specs else None
    if power_cut_at_ns is not None:
        cut = FaultPlan.power_cut_scenario(
            at=power_cut_at_ns, device=device,
            restart_after=restart_after_ns if restart_after_ns is not None
            else int(msec(1.0)),
        )
        plan = plan.extend(*cut.specs) if plan is not None else cut
    return plan


def run_fault_recovery(
    *,
    nwrites: int = 160,
    seed: int = 0,
    media_error_p: float = 0.0,
    latency_p: float = 0.0,
    qp_reject_p: float = 0.0,
    power_cut: bool = False,
    power_cut_at_ns: int | None = None,
    restart_after_ns: int | None = None,
    retry: bool = True,
    max_attempts: int = 6,
    timeout_ns: int | None = None,
    plan: FaultPlan | None = None,
) -> dict:
    """One configuration; returns goodput/recovery/consistency metrics.

    ``plan`` overrides the scalar pressure knobs with a prebuilt
    :class:`FaultPlan` (used by ``python -m repro.faults.report --plan``).
    """
    if plan is None:
        plan = build_plan(
            media_error_p=media_error_p, latency_p=latency_p,
            qp_reject_p=qp_reject_p,
            power_cut_at_ns=(power_cut_at_ns if power_cut_at_ns is not None
                             else int(msec(2.0))) if power_cut else None,
            restart_after_ns=restart_after_ns,
        )
    telemetry = Telemetry(keep_spans=False)
    system = LabStorSystem(
        seed=seed, devices=("nvme",),
        config=RuntimeConfig(nworkers=2, max_workers=4),
        telemetry=telemetry, fault_plan=plan,
    )
    system.stack("fs::/cr").fs(variant="min").device("nvme").uuid_prefix("cr").mount()
    policy = RetryPolicy(
        max_attempts=max_attempts,
        timeout_ns=timeout_ns if timeout_ns is not None else int(msec(50.0)),
    ) if retry else None
    gfs = GenericFS(system.client(), retry=policy)
    checker = CrashConsistencyChecker()

    def workload():
        acked = gave_up = 0
        for i in range(nwrites):
            path = f"fs::/cr/f{i:04d}"
            data = bytes([i % 251]) * WRITE_BS
            checker.begin(path, data)
            try:
                yield from gfs.write_file(path, data)
            except Exception:  # noqa: BLE001 - retries exhausted: count and move on
                gave_up += 1
                continue
            checker.ack(path)
            acked += 1
        return acked, gave_up

    acked, gave_up = system.run(system.process(workload()))
    elapsed_ns = system.env.now
    consistency = system.run(system.process(checker.verify(gfs)))

    reg = telemetry.registry
    recovery = reg.histogram("runtime_recovery_ns")
    result = {
        "nwrites": nwrites,
        "acked": acked,
        "gave_up": gave_up,
        "elapsed_s": to_sec(elapsed_ns),
        "goodput_kops_s": acked / to_sec(elapsed_ns) / 1e3,
        "injected": _counter_total(reg, "faults_injected_total"),
        "retries": _counter_total(reg, "fault_retries_total"),
        "giveups": _counter_total(reg, "fault_giveups_total"),
        "crashes": system.runtime.crashes,
        "recovery_ms": (recovery.quantile(0.5) / 1e6) if recovery.total else 0.0,
        "consistency": consistency,
    }
    system.shutdown()
    return result


#: (label, run_fault_recovery kwargs) — escalating fault pressure
SCENARIO_LADDER = (
    ("baseline", {}),
    ("media 5%", {"media_error_p": 0.05}),
    ("media 15% + lat 10%", {"media_error_p": 0.15, "latency_p": 0.10}),
    ("chaos + power cut", {"media_error_p": 0.10, "latency_p": 0.10,
                           "qp_reject_p": 0.03, "power_cut": True}),
)


def sweep_fault_recovery(*, nwrites: int = 160, seed: int = 0) -> list[dict]:
    """Run the escalation ladder; every row stays crash-consistent."""
    rows = []
    for label, kw in SCENARIO_LADDER:
        r = run_fault_recovery(nwrites=nwrites, seed=seed, **kw)
        r["scenario"] = label
        rows.append(r)
    return rows


def format_fault_recovery(rows: list[dict]) -> str:
    headers = ["scenario", "acked", "gave up", "injected", "retries",
               "goodput (kops/s)", "recovery (ms)"]
    table = [
        [r["scenario"], f'{r["acked"]}/{r["nwrites"]}', r["gave_up"],
         r["injected"], r["retries"], r["goodput_kops_s"], r["recovery_ms"]]
        for r in rows
    ]
    return format_table(headers, table,
                        title="E11 — goodput and recovery under faults")
