"""Plain-text table/report formatting + JSON/CSV export for experiment
results.

The span-derived anatomy breakdowns have richer, dedicated exporters in
:mod:`repro.obs.report`; the helpers here serialize any plain result
dict/row-set an experiment harness produces.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Sequence

__all__ = ["format_table", "format_kv", "normalize", "results_to_json", "rows_to_csv"]


def results_to_json(results: Any, path: str | None = None) -> str:
    """Serialize an experiment result structure to JSON (optionally to
    ``path``).  Non-JSON-able leaves fall back to ``str``."""
    text = json.dumps(results, indent=2, sort_keys=True, default=str)
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                path: str | None = None) -> str:
    """Write a header + rows table as CSV (optionally to ``path``)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    text = buf.getvalue()
    if path:
        with open(path, "w", encoding="utf-8", newline="") as f:
            f.write(text)
    return text


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None, floatfmt: str = ".2f") -> str:
    """Render an aligned ASCII table (the shape the paper's tables use)."""
    def cell(v: Any) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_kv(title: str, pairs: dict[str, Any]) -> str:
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title]
    for k, v in pairs.items():
        if isinstance(v, float):
            v = f"{v:.3f}"
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)


def normalize(values: dict[str, float]) -> dict[str, float]:
    """Scale a metric dict so the best entry is 1.0 (paper Fig 6 style)."""
    best = max(values.values())
    if best <= 0:
        return {k: 0.0 for k in values}
    return {k: v / best for k, v in values.items()}
