"""Shared builders for the experiment harnesses.

Each experiment needs the same ingredients in different mixes: a kernel
filesystem on a device, or a LabStor system with one of the canonical
stack variants and per-thread clients.  These helpers keep the
per-experiment modules declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runtime import RuntimeConfig
from ..devices.profiles import make_device
from ..kernel import make_filesystem
from ..mods.generic_fs import GenericFS
from ..mods.generic_kvs import GenericKVS
from ..sim import Environment
from ..sim.sanitizer import maybe_attach
from ..system import LabStorSystem
from ..workloads.fsapi import GenericFsAdapter, KernelFsAdapter

__all__ = [
    "KERNEL_FSES",
    "LAB_VARIANTS",
    "kernel_fs_api",
    "LabFsFixture",
    "LabKvsFixture",
]

KERNEL_FSES = ("ext4", "xfs", "f2fs")
LAB_VARIANTS = ("all", "min", "d")


def kernel_fs_api(device: str = "nvme", fs_name: str = "ext4", **fs_kw):
    """(env, api, fs, device) for a kernel-FS baseline."""
    env = Environment()
    maybe_attach(env)
    dev = make_device(env, device)
    fs = make_filesystem(fs_name, env, dev, **fs_kw)
    return env, KernelFsAdapter(fs), fs, dev


@dataclass
class LabFsFixture:
    """A LabStor system with one LabFS stack and per-thread GenericFS APIs."""

    system: LabStorSystem
    mount: str

    @classmethod
    def build(cls, *, variant: str = "all", device: str = "nvme",
              nworkers: int = 8, policy: str = "rr", mount: str = "fs::/x",
              config: RuntimeConfig | None = None) -> "LabFsFixture":
        cfg = config or RuntimeConfig(nworkers=nworkers, policy=policy,
                                      max_workers=max(16, nworkers))
        sys_ = LabStorSystem(devices=(device,), config=cfg)
        sys_.stack(mount).fs(variant=variant).device(device).mount()
        return cls(system=sys_, mount=mount)

    def api_factory(self):
        """Per-thread FsApi factory (one client per tid)."""
        cache: dict[int, GenericFsAdapter] = {}

        def factory(tid: int) -> GenericFsAdapter:
            if tid not in cache:
                cache[tid] = GenericFsAdapter(GenericFS(self.system.client()), self.mount)
            return cache[tid]

        return factory

    @property
    def env(self):
        return self.system.env


@dataclass
class LabKvsFixture:
    system: LabStorSystem
    mount: str

    @classmethod
    def build(cls, *, variant: str = "all", device: str = "nvme",
              nworkers: int = 1, mount: str = "kvs::/x") -> "LabKvsFixture":
        cfg = RuntimeConfig(nworkers=nworkers)
        sys_ = LabStorSystem(devices=(device,), config=cfg)
        sys_.stack(mount).kvs(variant=variant).device(device).mount()
        return cls(system=sys_, mount=mount)

    def kvs(self) -> GenericKVS:
        return GenericKVS(self.system.client(), self.mount)

    @property
    def env(self):
        return self.system.env
