"""Parallel parameter-sweep runner: fan sweep points across OS processes.

Every figure in the paper is a *sweep* — the same simulation re-run over
a grid of configurations (iodepth, nworkers, block size, scheduler...).
Single-run engine speed is capped by the interpreter, but sweep points
are embarrassingly parallel: each is an independent discrete-event
simulation with its own :class:`~repro.sim.Environment`, sharing nothing
with its neighbors.  This module fans the points across worker
processes and gets sweep wall-clock down by roughly the core count —
the multiplier the single-threaded hot path cannot provide.

Determinism contract (the part that makes parallel sweeps trustworthy):

- every point's RNG seed derives from ``(base_seed, point index)`` via
  SHA-256 — never from worker identity, completion order, ``os.getpid``
  or the wall clock — so point *i* sees the same seed whether the sweep
  runs serially, on 2 processes, or on 64;
- results are merged back in **configuration order**, not completion
  order;
- ``processes=1`` (or a single point) short-circuits to a plain loop in
  the calling process — byte-identical results, no pool, usable from
  tests and from workers that must not fork.

``fn`` must be a module-level callable ``fn(point, seed) -> result``
(picklable, like anything crossing a process pool).

**Warm starts** (``warm_start=``): sweeps whose points share an
expensive warmup prefix (preload a KVS, fill a filesystem, reach steady
state) can run the warmup *once*, capture a quiescent
:class:`~repro.snap.SystemSnapshot`, and hand it to every point — ``fn``
is then called ``fn(point, seed, warm_start)`` and restores the snapshot
into its freshly built system instead of re-running the warmup.  The
snapshot rides the pickle channel into each worker process like any
other argument; determinism is unchanged (seeds still derive from
``(base_seed, index)``), so a warm sweep must merge byte-identical to a
cold serial one — ``tests/test_sweep.py`` pins that.

CLI demo::

    python -m repro.experiments.sweep --processes 4
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

__all__ = ["point_seed", "run_sweep"]


class _WarmCall:
    """Picklable binding of the shared warm-start snapshot as ``fn``'s
    third argument (a lambda would not cross the process pool)."""

    def __init__(self, fn: Callable, snapshot: Any) -> None:
        self.fn = fn
        self.snapshot = snapshot

    def __call__(self, point: Any, seed: int) -> Any:
        return self.fn(point, seed, self.snapshot)


def point_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed 63-bit seed for sweep point ``index``.

    Hashing decorrelates neighboring points: sequential seeds fed
    straight to an RNG can produce correlated low-order streams, and
    ``base_seed + index`` collides across sweeps (sweep 7's point 0 ==
    sweep 0's point 7).  SHA-256 of the pair has neither problem.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def run_sweep(
    fn: Callable[[Any, int], Any],
    points: Iterable[Any],
    *,
    base_seed: int = 0,
    processes: int | None = None,
    warm_start: Any | None = None,
) -> list[Any]:
    """Run ``fn(point, seed)`` for every point; results in point order.

    ``processes=None`` uses ``min(len(points), os.cpu_count())``.  A
    worker exception propagates to the caller (the remaining futures are
    cancelled by the pool's shutdown) rather than yielding a partial
    result list.

    With ``warm_start`` (a picklable snapshot, typically a
    :class:`~repro.snap.SystemSnapshot`), ``fn`` is called as
    ``fn(point, seed, warm_start)`` in every worker instead.
    """
    pts = list(points)
    seeds = [point_seed(base_seed, i) for i in range(len(pts))]
    call = fn if warm_start is None else _WarmCall(fn, warm_start)
    if processes is None:
        processes = min(len(pts), os.cpu_count() or 1)
    if processes <= 1 or len(pts) <= 1:
        return [call(p, s) for p, s in zip(pts, seeds)]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        futures = [pool.submit(call, p, s) for p, s in zip(pts, seeds)]
        # iterating submission order IS configuration order; completion
        # order never surfaces
        return [f.result() for f in futures]


# ----------------------------------------------------------------------
# CLI demo: the paper's Fig-6-style iodepth sweep, parallelized
# ----------------------------------------------------------------------
def _fio_point(point: dict, seed: int) -> dict:
    """One self-contained fio run (module-level: must cross the pool)."""
    from ..core.labstack import StackSpec
    from ..core.runtime import RuntimeConfig
    from ..system import LabStorSystem
    from ..workloads.fio import FioJob, LabStackEngine, run_fio

    sys_ = LabStorSystem(devices=("nvme",),
                         config=RuntimeConfig(nworkers=point.get("nworkers", 2)))
    spec = StackSpec.linear(
        "blk::/sweep",
        [("NoOpSchedMod", "sweep.noop"), ("KernelDriverMod", "sweep.drv")],
    )
    spec.nodes[0].attrs = {"nqueues": 8}
    spec.nodes[1].attrs = {"device": "nvme"}
    stack = sys_.runtime.mount_stack(spec)
    engine = LabStackEngine(sys_.client(), stack, sys_.devices["nvme"])
    jobs = [
        FioJob(rw="randwrite" if i % 2 else "randread", bs=point.get("bs", 4096),
               nops=point.get("nops", 200), iodepth=point.get("iodepth", 4), core=i)
        for i in range(point.get("njobs", 4))
    ]
    res = run_fio(sys_.env, engine, jobs, seed=seed)
    return {"bs": point.get("bs", 4096), "iodepth": point.get("iodepth", 4),
            "iops": res.iops, "bw_MBps": res.bandwidth / 1e6,
            "events": sys_.env._eid, "virtual_ns": sys_.env.now, "seed": seed}


def main(argv: Sequence[str] | None = None) -> int:
    import argparse
    import json as _json

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep",
        description="Demo: parallel fio block-size sweep with deterministic seeds.",
    )
    parser.add_argument("--block-sizes", type=int, nargs="*",
                        default=[512, 1024, 4096, 16384, 65536, 262144])
    parser.add_argument("--nops", type=int, default=200)
    parser.add_argument("--processes", type=int, default=None,
                        help="worker processes (1 = serial; default: cpu count)")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", help="write rows as JSON")
    parser.add_argument("--verify-serial", action="store_true",
                        help="re-run serially and assert identical results")
    args = parser.parse_args(argv)

    points = [{"bs": bs, "nops": args.nops} for bs in args.block_sizes]
    t0 = time.perf_counter()
    rows = run_sweep(_fio_point, points, base_seed=args.base_seed,
                     processes=args.processes)
    wall = time.perf_counter() - t0

    print(f"{'bs':>8} {'iops':>12} {'bw_MBps':>9} {'virtual_ms':>11}")
    for row in rows:
        print(f"{row['bs']:>8} {row['iops']:>12,.0f} {row['bw_MBps']:>9.1f} "
              f"{row['virtual_ns'] / 1e6:>11.2f}")
    nproc = args.processes or min(len(points), os.cpu_count() or 1)
    print(f"{len(points)} points in {wall:.2f}s on {nproc} process(es)")

    if args.verify_serial:
        t0 = time.perf_counter()
        serial = run_sweep(_fio_point, points, base_seed=args.base_seed,
                           processes=1)
        swall = time.perf_counter() - t0
        assert serial == rows, "parallel sweep diverged from serial run"
        print(f"serial verification passed in {swall:.2f}s "
              f"({swall / wall:.1f}x the parallel wall clock)")

    if args.json:
        with open(args.json, "w") as fh:
            _json.dump({"rows": rows, "base_seed": args.base_seed}, fh,
                       indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
