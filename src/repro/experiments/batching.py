"""E12 — Batched submission amortization (throughput vs batch size).

Sequential 4KB writes through Lab-All on NVMe, unbatched (one doorbell,
one worker wakeup, one device command per op) vs batched at increasing
widths: ``writev`` rides one doorbell per batch through
``Client.submit_batch``, the worker batch-pops up to ``batch`` SQEs per
wakeup, ``BatchSchedMod`` front/back-merges the contiguous block
requests, and the device coalesces what arrives together — so the fixed
per-request costs (doorbell, wakeup, device command overhead) amortize
across the batch while only the marginal per-op terms scale.

Expected shape: ops/s climbs steeply from batch=1 and the curve flattens
as the fixed costs vanish into the batch — well over the 30% mark by
batch=16 — while per-op p99 latency rises (a batch settles together).
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..devices.profiles import DeviceSpec
from ..mods.generic_fs import GenericFS
from ..obs.telemetry import Telemetry
from ..system import LabStorSystem
from .report import format_table

__all__ = ["run_batching", "sweep_batching", "format_batching", "BATCH_SIZES"]

BATCH_SIZES = (1, 2, 4, 8, 16)


def _percentile(sorted_vals: list[int], q: float) -> int:
    if not sorted_vals:
        return 0
    i = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[i]


def run_batching(batch: int, *, nops: int = 256, bs: int = 4096, seed: int = 0) -> dict:
    """One point on the amortization curve: ``nops`` sequential ``bs``-byte
    writes through Lab-All/NVMe at batch width ``batch`` (1 = the plain
    per-op path: no vectored submission, no merging, no coalescing)."""
    telemetry = Telemetry()
    if batch == 1:
        system = LabStorSystem(
            seed=seed, devices=("nvme",),
            config=RuntimeConfig(nworkers=1), telemetry=telemetry,
        )
        system.stack("fs::/e12").fs(variant="all").mount()
    else:
        system = LabStorSystem(
            seed=seed,
            devices=(DeviceSpec("nvme", coalesce_max=batch, coalesce_window_ns=2000),),
            config=RuntimeConfig(nworkers=1, worker_batch_max=batch),
            telemetry=telemetry,
        )
        (system.stack("fs::/e12")
         .fs(variant="all")
         .sched("BatchSchedMod", window_ns=10_000, batch_max=batch)
         .mount())
    gfs = GenericFS(system.client())
    payload = b"\xab" * bs

    def go():
        fd = yield from gfs.open("fs::/e12/data", create=True)
        t0 = system.env.now
        if batch == 1:
            for i in range(nops):
                yield from gfs.write(fd, payload, offset=i * bs)
        else:
            for g in range(nops // batch):
                yield from gfs.writev(fd, [payload] * batch,
                                      offset=g * batch * bs)
        elapsed = system.env.now - t0
        yield from gfs.close(fd)
        return elapsed

    elapsed_ns = system.run(system.process(go()))
    lats = sorted(s.e2e_ns for s in telemetry.spans if s.op == "fs.write")
    return {
        "batch": batch,
        "bs": bs,
        "nops": nops,
        "ops_s": nops / (elapsed_ns / 1e9),
        "p50_ns": _percentile(lats, 0.50),
        "p99_ns": _percentile(lats, 0.99),
    }


def sweep_batching(batches=BATCH_SIZES, *, nops: int = 256, bs: int = 4096,
                   seed: int = 0) -> list[dict]:
    return [run_batching(b, nops=nops, bs=bs, seed=seed) for b in batches]


def format_batching(rows: list[dict]) -> str:
    base = rows[0]["ops_s"] if rows else 1.0
    return format_table(
        ["batch", "ops/s", "speedup", "p50 us", "p99 us"],
        [[str(r["batch"]), f"{r['ops_s']:.0f}", f"{r['ops_s'] / base:.2f}x",
          f"{r['p50_ns'] / 1000:.1f}", f"{r['p99_ns'] / 1000:.1f}"]
         for r in rows],
        title="E12 — batched submission, 4KB sequential writes (NVMe, Lab-All)",
    )
