"""Experiment harnesses — one module per paper table/figure.

=====  ==========================  ===============================
id     paper artifact              module
=====  ==========================  ===============================
E1     Fig 4(a) I/O anatomy        anatomy
E2     Table I live upgrade        live_upgrade
E3     Fig 5(a) CPU allocation     orchestration_cpu
E4     Fig 5(b) partitioning       orchestration_partition
E5     Fig 6 storage APIs          storage_api
E6     Fig 7 metadata              metadata
E7     Fig 8 / Table II sched      schedulers
E8     Fig 9(a) PFS                pfs_eval
E9     Fig 9(b) LABIOS             labios_eval
E10    Fig 9(c) Filebench          filebench_eval
E11    fault recovery (repro)      fault_recovery
=====  ==========================  ===============================

Each module exposes ``run_*`` (one configuration), ``sweep_*`` (the full
figure), and ``format_*`` (the paper-style table).
"""

from . import (
    ablations,
    anatomy,
    fault_recovery,
    filebench_eval,
    labios_eval,
    live_upgrade,
    metadata,
    orchestration_cpu,
    orchestration_partition,
    pfs_eval,
    report,
    schedulers,
    storage_api,
)

__all__ = [
    "anatomy",
    "live_upgrade",
    "orchestration_cpu",
    "orchestration_partition",
    "storage_api",
    "metadata",
    "schedulers",
    "pfs_eval",
    "labios_eval",
    "filebench_eval",
    "ablations",
    "fault_recovery",
    "report",
]
