"""E9 — Customizing I/O interfaces: LABIOS workers (paper Fig 9(b)).

LABIOS workers persist 8KB *labels*.  On a filesystem backend each label
costs open/seek/write/close; on LabKVS it is one put.  We compare
ext4/xfs/f2fs against LabKVS-All / LabKVS-Min / LabKVS-D on NVMe and
PMEM (the paper omits HDD: seek-bound, nothing to win).

Paper shape: filesystems degrade >=12% vs LabKVS; relaxing LabKVS's
access-control guarantees buys up to an additional 16%.
"""

from __future__ import annotations

from .common import KERNEL_FSES, LabKvsFixture, kernel_fs_api
from ..workloads.labios import run_labios_fs, run_labios_kvs
from .report import format_table

__all__ = ["run_labios_backend", "sweep_labios", "format_labios", "BACKENDS"]

BACKENDS = ("ext4", "xfs", "f2fs", "labkvs-all", "labkvs-min", "labkvs-d")


def run_labios_backend(backend: str, *, device: str = "nvme", nlabels: int = 200,
                       label_size: int = 8192, seed: int = 0) -> dict:
    if backend in KERNEL_FSES:
        env, api, _fs, _dev = kernel_fs_api(device, backend)
        result = run_labios_fs(env, api, nlabels=nlabels, label_size=label_size, seed=seed)
    else:
        variant = backend.split("-", 1)[1]
        fixture = LabKvsFixture.build(variant=variant, device=device, nworkers=1)
        result = run_labios_kvs(fixture.env, fixture.kvs(), nlabels=nlabels,
                                label_size=label_size, seed=seed)
    return {
        "backend": backend,
        "device": device,
        "MBps": result.throughput_MBps,
        "labels_per_sec": result.labels_per_sec,
    }


def sweep_labios(*, devices=("nvme", "pmem"), nlabels: int = 150, seed: int = 0) -> list[dict]:
    rows = []
    for device in devices:
        for backend in BACKENDS:
            rows.append(run_labios_backend(backend, device=device, nlabels=nlabels, seed=seed))
    return rows


def format_labios(rows: list[dict]) -> str:
    return format_table(
        ["device", "backend", "MB/s", "labels/s"],
        [[r["device"], r["backend"], r["MBps"], f"{r['labels_per_sec']:.0f}"] for r in rows],
        title="Fig 9(b) — LABIOS worker throughput (8KB labels)",
    )
