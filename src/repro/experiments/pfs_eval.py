"""E8 — PFS over customized LabStacks (paper Fig 9(a)).

VPIC writes and BD-CATS reads run over the OrangeFS-model PFS.  The
metadata server sits on NVMe with one of three local stacks: ext4 (the
kernel baseline), LabFS-All, or LabFS-Min; the data servers run ext4 on
HDD / SSD / NVMe.  The paper's effect is entirely in the metadata-server
stack: faster metadata buys 6-12% end-to-end, with the gain growing as
the data devices get faster (on HDD the I/O cost buries it).

Scaling: 8 ranks x 4 steps x 64KB-striped buffers instead of 640 ranks x
16 steps x 165GB; the metadata:data op ratio per stripe is preserved.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..devices.profiles import make_device
from ..kernel import make_filesystem
from ..pfs import OrangeFs
from ..sim import Environment
from ..units import to_sec
from ..workloads.fsapi import KernelFsAdapter
from ..workloads.vpic import VpicConfig, run_bdcats, run_vpic
from .common import LabFsFixture
from .report import format_table

__all__ = ["run_pfs", "sweep_pfs", "format_pfs", "MDS_BACKENDS"]

MDS_BACKENDS = ("ext4", "labfs-all", "labfs-min")


def _build_pfs(env_holder: dict, mds_backend: str, data_device: str, ndata: int,
               layout_batch: int = 1):
    if mds_backend == "ext4":
        env = Environment()
        mds_dev = make_device(env, "nvme")
        mds_api = KernelFsAdapter(make_filesystem("ext4", env, mds_dev))
    else:
        variant = mds_backend.split("-", 1)[1]
        fixture = LabFsFixture.build(
            variant=variant, nworkers=4,
            config=RuntimeConfig(nworkers=4, min_workers=4, max_workers=8),
            mount="fs::/mds",
        )
        env = fixture.env
        mds_api = fixture.api_factory()(0)
    data_apis = [
        KernelFsAdapter(make_filesystem("ext4", env, make_device(env, data_device)))
        for _ in range(ndata)
    ]
    env_holder["env"] = env
    return OrangeFs(env, mds_api, data_apis, layout_batch=layout_batch)


def run_pfs(*, mds_backend: str, data_device: str, ndata: int = 4,
            cfg: VpicConfig | None = None, layout_batch: int = 1, seed: int = 0) -> dict:
    cfg = cfg or VpicConfig(nprocs=4, timesteps=4, particles_per_proc=4096)
    holder: dict = {}
    pfs = _build_pfs(holder, mds_backend, data_device, ndata, layout_batch)
    env = holder["env"]
    vpic = run_vpic(env, pfs, cfg)
    pfs.drop_data_caches()  # BD-CATS starts cold, as on the real testbed
    bdcats = run_bdcats(env, pfs, cfg)
    return {
        "mds_backend": mds_backend,
        "data_device": data_device,
        "vpic_s": to_sec(vpic.elapsed_ns),
        "bdcats_s": to_sec(bdcats.elapsed_ns),
        "vpic_MBps": vpic.bandwidth_MBps,
        "bdcats_MBps": bdcats.bandwidth_MBps,
        "metadata_ops": vpic.metadata_ops + bdcats.metadata_ops,
    }


def sweep_pfs(*, data_devices=("hdd", "ssd", "nvme"), ndata: int = 4,
              cfg: VpicConfig | None = None, seed: int = 0) -> list[dict]:
    rows = []
    for data_device in data_devices:
        for backend in MDS_BACKENDS:
            rows.append(run_pfs(mds_backend=backend, data_device=data_device,
                                ndata=ndata, cfg=cfg, seed=seed))
    return rows


def format_pfs(rows: list[dict]) -> str:
    return format_table(
        ["data device", "MDS backend", "VPIC (s)", "BD-CATS (s)", "VPIC MB/s", "BD-CATS MB/s"],
        [[r["data_device"], r["mds_backend"], f"{r['vpic_s']:.4f}", f"{r['bdcats_s']:.4f}",
          f"{r['vpic_MBps']:.1f}", f"{r['bdcats_MBps']:.1f}"] for r in rows],
        title="Fig 9(a) — VPIC/BD-CATS over OrangeFS with customized MDS stacks",
    )
