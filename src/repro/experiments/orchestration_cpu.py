"""E3 — Work Orchestrator: dynamic CPU allocation (paper Fig 5(a)).

Clients (1..16) each randomly write ``ops_per_client`` 4KB requests
through a NoOp + Kernel Driver LabStack on NVMe; the Runtime runs with
1 worker, 8 workers, or the dynamic policy.  We measure aggregate IOPS
and the average number of cores the worker pool burned (awake time).

Paper shape: 1 worker saturates around 2 clients and loses ~50% IOPS by
4+; 8 workers hit max performance but use ~25% more CPU than dynamic,
which converges to ~4 cores mid-range; at 16 clients dynamic ≈ 8 workers
in both metrics.
"""

from __future__ import annotations

from ..core.labstack import StackSpec
from ..core.runtime import RuntimeConfig
from ..system import LabStorSystem
from ..units import msec, sec
from ..workloads.fio import FioJob, LabStackEngine, run_fio
from .report import format_table

__all__ = ["run_orchestration_cpu", "sweep_orchestration_cpu", "format_orchestration_cpu"]


def _worker_setting(kind: str) -> dict:
    if kind == "1worker":
        return {"nworkers": 1, "policy": "rr", "min_workers": 1, "max_workers": 1}
    if kind == "8workers":
        return {"nworkers": 8, "policy": "rr", "min_workers": 8, "max_workers": 8}
    if kind == "dynamic":
        return {"nworkers": 1, "policy": "dynamic", "min_workers": 1, "max_workers": 8}
    raise ValueError(f"unknown worker setting {kind!r}")


def run_orchestration_cpu(
    *, nclients: int, workers: str, ops_per_client: int = 1500, seed: int = 0
) -> dict:
    cfg = RuntimeConfig(orchestrator_interval_ns=msec(1.0), **_worker_setting(workers))
    sys_ = LabStorSystem(seed=seed, devices=("nvme",), config=cfg)
    spec = StackSpec.linear("blk::/w", [("NoOpSchedMod", "ocpu.noop"),
                                        ("KernelDriverMod", "ocpu.drv")])
    spec.nodes[0].attrs = {"nqueues": sys_.devices["nvme"].nqueues}
    spec.nodes[1].attrs = {"device": "nvme"}
    stack = sys_.runtime.mount_stack(spec)

    engines = []
    for c in range(nclients):
        client = sys_.client()
        engines.append(LabStackEngine(client, stack, sys_.devices["nvme"]))

    # measure from a clean accounting window
    for w in sys_.runtime.orchestrator.workers:
        w.reset_accounting()
    start = sys_.env.now
    results = []

    import numpy as np

    procs = []
    total_ops = 0
    from ..workloads.fio import _job_proc, FioResult

    result = FioResult()
    for c, engine in enumerate(engines):
        job = FioJob(rw="randwrite", bs=4096, nops=ops_per_client, core=c)
        payload = bytes([c % 251]) * 4096
        rng = np.random.default_rng(seed * 131 + c)
        procs.append(sys_.process(_job_proc(sys_.env, engine, job, rng, result, payload)))
        total_ops += ops_per_client
    sys_.run(sys_.env.all_of(procs))
    elapsed = sys_.env.now - start
    # cores burned by the worker pool (busy-polling counts, sleeping doesn't)
    awake = sum(w.awake_time() for w in sys_.runtime.orchestrator.workers)
    return {
        "nclients": nclients,
        "workers": workers,
        "iops": total_ops / (elapsed / sec(1)),
        "busy_cores": awake / elapsed,
        "final_workers": sys_.runtime.orchestrator.worker_count(),
        "lat_p99_us": result.latency.p99 / 1000,
    }


def sweep_orchestration_cpu(
    *, client_counts=(1, 2, 4, 8, 16), ops_per_client: int = 1000, seed: int = 0
) -> list[dict]:
    rows = []
    for workers in ("1worker", "8workers", "dynamic"):
        for n in client_counts:
            rows.append(
                run_orchestration_cpu(
                    nclients=n, workers=workers, ops_per_client=ops_per_client, seed=seed
                )
            )
    return rows


def format_orchestration_cpu(rows: list[dict]) -> str:
    return format_table(
        ["config", "clients", "KIOPS", "busy cores", "workers@end"],
        [[r["workers"], r["nclients"], r["iops"] / 1000, r["busy_cores"], r["final_workers"]]
         for r in rows],
        title="Fig 5(a) — dynamic CPU allocation (IOPS + cores burned)",
    )
