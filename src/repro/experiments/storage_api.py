"""E5 — Storage interface performance (paper Fig 6).

Single-thread qd1 fio against raw devices through every interface:
kernel APIs (posix, posix_aio, libaio, io_uring with O_DIRECT) vs LabStor
driver stacks (Kernel Driver everywhere, SPDK on NVMe, DAX on PMEM,
executed synchronously in the client as driver-only LabStacks).
Request sizes 4KB and 128KB; devices HDD / SSD / NVMe / PMEM.
IOPS are normalized per device (best = 1.0), as in the paper's figure.

Paper shape: on NVMe 4KB the Kernel Driver beats io_uring by >=15% and
SPDK adds ~12% more; POSIX AIO is 60-70% off the pace on NVMe/PMEM;
at 128KB the whole spread collapses to ~6%; on HDD everything ties.
"""

from __future__ import annotations

from ..core.labstack import StackSpec
from ..core.runtime import RuntimeConfig
from ..kernel.interfaces import make_interface
from ..system import LabStorSystem
from ..units import KiB
from ..workloads.fio import FioJob, LabStackEngine, RawDeviceEngine, run_fio
from .report import format_table, normalize

__all__ = ["run_storage_api", "sweep_storage_api", "format_storage_api", "INTERFACE_MATRIX"]

KERNEL_APIS = ("posix", "posix_aio", "libaio", "io_uring")

# device -> LabStor driver stacks available on it
LAB_DRIVERS = {
    "hdd": ("KernelDriverMod",),
    "ssd": ("KernelDriverMod",),
    "nvme": ("KernelDriverMod", "SpdkDriverMod"),
    "pmem": ("KernelDriverMod", "DaxDriverMod"),
}

_LAB_LABEL = {
    "KernelDriverMod": "lab_kernel_driver",
    "SpdkDriverMod": "lab_spdk",
    "DaxDriverMod": "lab_dax",
}

INTERFACE_MATRIX = {
    dev: KERNEL_APIS + tuple(_LAB_LABEL[d] for d in LAB_DRIVERS[dev])
    for dev in LAB_DRIVERS
}


def _lab_engine(device: str, driver: str, seed: int):
    """Driver-only LabStack, executed synchronously in the client."""
    sys_ = LabStorSystem(seed=seed, devices=(device,), config=RuntimeConfig(nworkers=1))
    spec = StackSpec.linear(f"blk::/{device}", [(driver, f"sapi.{device}.{driver}")],
                            exec_mode="sync")
    spec.nodes[0].attrs = {"device": device}
    stack = sys_.runtime.mount_stack(spec)
    client = sys_.client()
    return sys_.env, LabStackEngine(client, stack, sys_.devices[device])


def run_storage_api(device: str, interface: str, *, bs: int = 4096, nops: int = 300,
                    rw: str = "randwrite", seed: int = 0) -> dict:
    if interface.startswith("lab_"):
        driver = {v: k for k, v in _LAB_LABEL.items()}[interface]
        env, engine = _lab_engine(device, driver, seed)
    else:
        from ..devices.profiles import make_device
        from ..sim import Environment

        env = Environment()
        dev = make_device(env, device)
        engine = RawDeviceEngine(make_interface(interface, env, dev))
    result = run_fio(env, engine, [FioJob(rw=rw, bs=bs, nops=nops)], seed=seed)
    return {
        "device": device,
        "interface": interface,
        "bs": bs,
        "iops": result.iops,
        "lat_mean_us": result.latency.mean / 1000,
    }


def sweep_storage_api(*, devices=("hdd", "ssd", "nvme", "pmem"), sizes=(4 * KiB, 128 * KiB),
                      nops: int = 200, hdd_nops: int = 40, seed: int = 0) -> list[dict]:
    rows = []
    for device in devices:
        for bs in sizes:
            n = hdd_nops if device == "hdd" else nops
            for interface in INTERFACE_MATRIX[device]:
                rows.append(run_storage_api(device, interface, bs=bs, nops=n, seed=seed))
    return rows


def format_storage_api(rows: list[dict]) -> str:
    out = []
    combos = sorted({(r["device"], r["bs"]) for r in rows})
    for device, bs in combos:
        sel = {r["interface"]: r["iops"] for r in rows if r["device"] == device and r["bs"] == bs}
        norm = normalize(sel)
        out.append(format_table(
            ["interface", "IOPS", "normalized"],
            [[i, f"{sel[i]:.0f}", f"{norm[i]:.3f}"] for i in sorted(sel, key=lambda k: -sel[k])],
            title=f"Fig 6 — {device}, bs={bs // 1024}KB (normalized IOPS)",
        ))
    return "\n\n".join(out)
