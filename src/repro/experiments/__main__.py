"""Regenerate the paper's tables from the command line.

Usage::

    python -m repro.experiments              # every figure (several minutes)
    python -m repro.experiments anatomy fig6 # selected figures
    python -m repro.experiments --list

Figure names: anatomy, table1, fig5a, fig5b, fig6, fig7, fig8, fig9a,
fig9b, fig9c, ablations, faults, batching, openloop, cluster,
cluster-par, pfs-cluster, control.
"""

from __future__ import annotations

import sys

from . import (
    ablations,
    anatomy,
    batching,
    cluster_scaling,
    control_plane,
    fault_recovery,
    filebench_eval,
    labios_eval,
    live_upgrade,
    metadata,
    openloop,
    orchestration_cpu,
    orchestration_partition,
    pfs_eval,
    schedulers,
    storage_api,
)


def _run_anatomy():
    for op in ("write", "read"):
        print(anatomy.format_anatomy(anatomy.run_anatomy(op, nops=64)))
        print()


def _run_ablations():
    print(ablations.format_ablation(ablations.ablate_allocator(),
                                    "Ablation — allocator"))
    print()
    print(ablations.format_ablation(ablations.ablate_ipc_cost(),
                                    "Ablation — IPC hop cost"))
    print()
    print(ablations.format_ablation(ablations.ablate_exec_mode(),
                                    "Ablation — exec mode"))
    print()
    print(ablations.format_ablation(ablations.ablate_consistency(),
                                    "Ablation — consistency"))
    print()
    print(ablations.format_ablation(ablations.ablate_cache_capacity(),
                                    "Ablation — LRU capacity"))


FIGURES = {
    "anatomy": _run_anatomy,
    "table1": lambda: print(live_upgrade.format_live_upgrade(
        live_upgrade.sweep_live_upgrade(nmessages=4000, upgrade_counts=(0, 8, 16, 32)))),
    "fig5a": lambda: print(orchestration_cpu.format_orchestration_cpu(
        orchestration_cpu.sweep_orchestration_cpu(ops_per_client=500))),
    "fig5b": lambda: print(orchestration_partition.format_partition(
        orchestration_partition.sweep_partition(creates_per_thread=100, writes_per_thread=5))),
    "fig6": lambda: print(storage_api.format_storage_api(
        storage_api.sweep_storage_api(nops=200, hdd_nops=30))),
    "fig7": lambda: print(metadata.format_metadata(
        metadata.sweep_metadata(files_per_thread=50))),
    "fig8": lambda: print(schedulers.format_schedulers(
        schedulers.sweep_schedulers(l_nops=100, t_nops=100))),
    "fig9a": lambda: print(pfs_eval.format_pfs(pfs_eval.sweep_pfs())),
    "fig9b": lambda: print(labios_eval.format_labios(
        labios_eval.sweep_labios(nlabels=120))),
    "fig9c": lambda: print(filebench_eval.format_filebench(
        filebench_eval.sweep_filebench(nthreads=4, loops=4))),
    "ablations": _run_ablations,
    "faults": lambda: print(fault_recovery.format_fault_recovery(
        fault_recovery.sweep_fault_recovery(nwrites=120))),
    "batching": lambda: print(batching.format_batching(
        batching.sweep_batching(nops=256))),
    "openloop": lambda: print(openloop.format_openloop(
        openloop.sweep_openloop())),
    "cluster": lambda: print(cluster_scaling.format_cluster_scaling(
        cluster_scaling.sweep_cluster_scaling())),
    "cluster-par": lambda: print(cluster_scaling.format_cluster_scaling_par(
        cluster_scaling.sweep_cluster_scaling_par())),
    "pfs-cluster": lambda: print(cluster_scaling.format_pfs_cluster(
        cluster_scaling.sweep_pfs_cluster())),
    "control": lambda: print(control_plane.format_control_plane(
        control_plane.sweep_control_plane())),
}


def main(argv: list[str]) -> int:
    if "--list" in argv:
        print("\n".join(FIGURES))
        return 0
    names = [a for a in argv if not a.startswith("-")] or list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; try --list", file=sys.stderr)
        return 2
    for name in names:
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        FIGURES[name]()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
