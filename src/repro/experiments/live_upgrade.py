"""E2 — Live upgrade service interruption (paper Table I).

An app sends ``nmessages`` to a dummy LabMod; partway through the run a
batch of upgrade requests is queued.  We measure total app running time
for upgrade counts {0, 256, 512, 1024} under both the centralized and
decentralized protocols.

Paper shape: baseline 29.08s; ~5ms per upgrade (dominated by reading the
1MB module image from NVMe); decentralized slightly slower than
centralized; +~5s at 1024 upgrades.

Scaling: the defaults use 1/8 of the paper's message and upgrade counts
so a sweep completes in seconds of wall time; per-upgrade cost and the
relative growth are unchanged.
"""

from __future__ import annotations

from ..core.requests import LabRequest
from ..core.runtime import RuntimeConfig
from ..core.labstack import StackSpec
from ..core.module_manager import UpgradeRequest
from ..mods.dummy import DummyMod, DummyModV2
from ..system import LabStorSystem
from ..units import msec, to_sec, usec
from .report import format_table

__all__ = [
    "run_live_upgrade",
    "run_live_upgrade_under_load",
    "sweep_live_upgrade",
    "format_live_upgrade",
]

# per-message LabMod processing delay chosen so that the unscaled paper
# workload (100k messages) lasts ~29s: 100k x ~290us
MESSAGE_DELAY_NS = usec(286.0)


def run_live_upgrade(
    *,
    nmessages: int = 12_500,
    nupgrades: int = 0,
    upgrade_type: str = "centralized",
    trigger_after: int | None = None,
    seed: int = 0,
) -> dict:
    """Returns {"elapsed_s", "upgrades_done", "messages"}."""
    sys_ = LabStorSystem(
        seed=seed, devices=("nvme",),
        config=RuntimeConfig(nworkers=1, admin_poll_ns=msec(1.0)),
    )
    spec = StackSpec.linear("msg::/d", [("DummyMod", "upg.dummy")])
    spec.nodes[0].attrs = {"delay_ns": MESSAGE_DELAY_NS}
    stack = sys_.runtime.mount_stack(spec)
    client = sys_.client()
    trigger = trigger_after if trigger_after is not None else nmessages * 2 // 3

    def app():
        for i in range(nmessages):
            if i == trigger and nupgrades:
                for _ in range(nupgrades):
                    sys_.runtime.modify_mods(
                        UpgradeRequest(
                            mod_name="DummyMod", new_cls=DummyModV2, upgrade_type=upgrade_type
                        )
                    )
            yield from client.call(stack, LabRequest(op="msg.send", payload={"value": i}))

    start = sys_.env.now
    sys_.run(sys_.process(app()))
    return {
        "elapsed_s": to_sec(sys_.env.now - start),
        "upgrades_done": sys_.runtime.module_manager.upgrades_done,
        "messages": nmessages,
        "upgrade_type": upgrade_type,
    }


def run_live_upgrade_under_load(
    *,
    seed: int = 0,
    duration_ns: int | None = None,
    load: float = 1.0,
    nupgrades: int = 1,
    upgrade_type: str = "centralized",
) -> dict:
    """E2 rerun under open-loop tenant load, with a mid-upgrade snapshot.

    The dummy-mod version above measures upgrade *cost* in isolation;
    this one puts the claim under stress: the overload tenants of
    :mod:`repro.traffic` keep firing while ``LabKvs`` hot-swaps to
    ``LabKvsV2``, and a :class:`~repro.snap.ReplaySnapshot` is captured
    *while the upgrade request is in flight*.  The run proves three
    things at once — no in-flight op is lost across the state transfer
    (the program's own asserts), the capture did not perturb the run
    (full digests equal), and the restored continuation is seamless
    (suffix digests equal).
    """
    from ..snap import restore_run, snapshot_run, straight_run
    from ..snap.programs import UpgradeUnderLoadProgram

    def program():
        kw = {"load": load, "nupgrades": nupgrades, "upgrade_type": upgrade_type}
        if duration_ns is not None:
            kw["duration_ns"] = duration_ns
        return UpgradeUnderLoadProgram(seed, **kw)

    outcome, snap = snapshot_run(program())
    base = straight_run(program(), arm_at_ns=snap.time_ns)
    cont = restore_run(snap)
    return {
        **base.result,
        "pause_ns": snap.time_ns,
        "snapshot_bytes": snap.state.size_bytes(),
        "capture_invisible": outcome.digest == base.digest,
        "restore_seamless": (
            cont.suffix_digest == base.suffix_digest
            and cont.result == base.result
        ),
    }


def sweep_live_upgrade(
    *, nmessages: int = 12_500, upgrade_counts=(0, 32, 64, 128), seed: int = 0
) -> dict:
    """Table I at 1/8 scale (counts scale with nmessages)."""
    rows = {}
    for kind in ("centralized", "decentralized"):
        rows[kind] = {}
        for n in upgrade_counts:
            r = run_live_upgrade(nmessages=nmessages, nupgrades=n, upgrade_type=kind, seed=seed)
            rows[kind][n] = r["elapsed_s"]
    return {"counts": list(upgrade_counts), "rows": rows, "nmessages": nmessages}


def format_live_upgrade(result: dict) -> str:
    counts = result["counts"]
    rows = [
        [kind.capitalize()] + [f"{result['rows'][kind][n]:.3f}" for n in counts]
        for kind in ("centralized", "decentralized")
    ]
    return format_table(
        ["#Upgrades"] + [str(c) for c in counts],
        rows,
        title=f"Table I — app running time (s), {result['nmessages']} messages "
              f"(paper scale / 8)",
    )
