"""E10 — Cloud workloads: Filebench (paper Fig 9(c,d)).

The four default Filebench personalities over NVMe (the paper notes PMEM
gives identical trends, which this harness can also run), comparing
ext4/xfs/f2fs against Lab-All / Lab-Min / Lab-D LabFS stacks with the
Runtime at 8 workers.

Paper shape: LabFS stacks up to ~2.5x on varmail/webserver/webproxy
(metadata- and small-I/O-bound); fileserver is bandwidth-bound and shows
little difference.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..workloads.filebench import PERSONALITIES, run_personality
from .common import KERNEL_FSES, LabFsFixture, kernel_fs_api
from .report import format_table

__all__ = ["run_filebench", "sweep_filebench", "format_filebench", "FB_CONFIGS"]

FB_CONFIGS = ("ext4", "xfs", "f2fs", "lab-all", "lab-min", "lab-d")


def run_filebench(config: str, personality: str, *, device: str = "nvme",
                  nthreads: int = 4, loops: int = 6, seed: int = 0) -> dict:
    if config in KERNEL_FSES:
        # page cache sized so sustained fileserver writes trigger writeback
        # during the (scaled) run, as on a real machine under steady state
        env, api, _fs, _dev = kernel_fs_api(device, config, cache_pages=4096)
        result = run_personality(env, lambda tid: api, personality,
                                 nthreads=nthreads, loops=loops, seed=seed)
    else:
        variant = config.split("-", 1)[1]
        fixture = LabFsFixture.build(
            variant=variant, nworkers=8, device=device,
            config=RuntimeConfig(nworkers=8, min_workers=8, max_workers=16, ncores=32),
        )
        result = run_personality(fixture.env, fixture.api_factory(), personality,
                                 nthreads=nthreads, loops=loops, seed=seed)
    return {
        "config": config,
        "personality": personality,
        "kops_per_sec": result.ops_per_sec / 1000,
        "MBps": result.throughput_MBps,
    }


def sweep_filebench(*, personalities=tuple(PERSONALITIES), configs=FB_CONFIGS,
                    device: str = "nvme", nthreads: int = 4, loops: int = 5,
                    seed: int = 0) -> list[dict]:
    rows = []
    for personality in personalities:
        for config in configs:
            rows.append(run_filebench(config, personality, device=device,
                                      nthreads=nthreads, loops=loops, seed=seed))
    return rows


def format_filebench(rows: list[dict]) -> str:
    personalities = []
    configs = []
    for r in rows:
        if r["personality"] not in personalities:
            personalities.append(r["personality"])
        if r["config"] not in configs:
            configs.append(r["config"])
    table = []
    for config in configs:
        vals = {r["personality"]: r["kops_per_sec"] for r in rows if r["config"] == config}
        table.append([config] + [f"{vals.get(p, 0):.1f}" for p in personalities])
    return format_table(
        ["config \\ workload"] + list(personalities),
        table,
        title="Fig 9(c) — Filebench throughput (K ops/sec) on NVMe",
    )
