"""E1 — I/O stack anatomy (paper Fig 4).

Reads/writes 4KB through a LabFS stack (Permissions, LabFS, LRU cache,
NoOp scheduler, Kernel Driver) with a single Runtime worker and derives
the per-component time breakdown from live request telemetry
(:mod:`repro.obs`): every measured operation carries a SpanContext whose
stamps and category totals feed both the legacy Fig 4(a) per-LabMod
fractions and the submit/queue/module/device/completion phase anatomy.

Paper shape: device I/O ~66% of a 4KB write; page cache ~17% (copying);
IPC ~8.4%; NoOp scheduler ~5%; FS metadata ~3%; permissions ~3%;
driver ~1%.

``run_phase_anatomy`` runs the full Fig 4 matrix — Lab-All, Lab-Min,
Lab-D, and the ext4 kernel baseline — and is what
``python -m repro.obs.report`` drives.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..devices.profiles import make_device
from ..kernel import make_filesystem
from ..mods.generic_fs import GenericFS
from ..obs import Telemetry, phase_breakdown
from ..sim import Environment
from ..sim.sanitizer import maybe_attach
from ..system import LabStorSystem
from .report import format_table

__all__ = ["run_anatomy", "run_kernel_anatomy", "run_phase_anatomy", "format_anatomy"]

# telemetry category -> paper label
SPAN_LABELS = {
    "device_io": "Device I/O",
    "cache": "Page cache (LRU)",
    "ipc": "IPC (shm queues)",
    "sched": "I/O sched (NoOp)",
    "fs_meta": "FS metadata",
    "permissions": "Permissions",
    "driver": "Driver",
}


def run_anatomy(
    op: str = "write", nops: int = 64, bs: int = 4096, seed: int = 0,
    variant: str = "all",
) -> dict:
    """Anatomy of one LabFS stack variant, measured from request spans.

    Returns the legacy keys ``fractions`` / ``total_ns_per_op`` /
    ``span_ns`` plus ``breakdown`` (the span-derived phase anatomy of
    :func:`repro.obs.report.phase_breakdown`) and ``variant``.
    """
    telemetry = Telemetry()
    sys_ = LabStorSystem(
        seed=seed, devices=("nvme",), config=RuntimeConfig(nworkers=1),
        telemetry=telemetry,
    )
    sys_.stack("fs::/a").fs(variant=variant).device("nvme").uuid_prefix("anat").mount()
    client = sys_.client()
    gfs = GenericFS(client)

    def setup():
        fd = yield from gfs.open("fs::/a/target", create=True)
        # touch every page so reads/overwrites hit allocated blocks
        yield from gfs.write(fd, b"\x00" * (bs * nops), offset=0)
        if op == "read":
            # drop the LRU cache so reads exercise the device path
            sys_.runtime.registry.get("anat.lru").pages.clear()
        return fd

    fd = sys_.run(sys_.process(setup()))
    telemetry.reset()  # measure only the steady-state ops
    start = sys_.env.now

    def measured():
        for i in range(nops):
            if op == "write":
                yield from gfs.write(fd, b"w" * bs, offset=i * bs)
            else:
                sys_.runtime.registry.get("anat.lru").pages.clear()
                yield from gfs.read(fd, bs, offset=i * bs)

    sys_.run(sys_.process(measured()))
    elapsed = sys_.env.now - start
    spans = list(telemetry.spans)
    breakdown = phase_breakdown(spans)
    sys_.shutdown()

    # legacy Fig 4(a) per-LabMod fractions, now summed from span categories
    cats = breakdown["cats"]
    fractions = {}
    total_spans = sum(cats.get(k, 0) for k in SPAN_LABELS)
    for cat, label in SPAN_LABELS.items():
        fractions[label] = cats.get(cat, 0) / total_spans if total_spans else 0.0
    return {
        "op": op,
        "variant": variant,
        "fractions": fractions,
        "total_ns_per_op": elapsed / nops,
        "span_ns": {SPAN_LABELS[k]: v / nops for k, v in cats.items() if k in SPAN_LABELS},
        "breakdown": breakdown,
    }


def run_kernel_anatomy(
    op: str = "write", nops: int = 64, bs: int = 4096, seed: int = 0,
    fs_name: str = "ext4",
) -> dict:
    """Span-derived anatomy of a kernel-FS baseline (write+fsync / read).

    Writes are paired with fsync so the measured window includes the
    device I/O a buffered write defers; reads drop the page cache each
    iteration so every read exercises the block path.
    """
    env = Environment()
    maybe_attach(env)
    telemetry = Telemetry().install(env)
    dev = make_device(env, "nvme")
    fs = make_filesystem(fs_name, env, dev)

    def setup():
        fd = yield env.process(fs.open("/anat", create=True))
        yield env.process(fs.write(fd, b"\x00" * (bs * nops), offset=0))
        yield env.process(fs.fsync(fd))
        return fd

    fd = env.run(env.process(setup()))
    ino = fs._fds[fd].inode.ino
    telemetry.reset()
    start = env.now

    def measured():
        for i in range(nops):
            if op == "write":
                yield env.process(fs.write(fd, b"w" * bs, offset=i * bs))
                yield env.process(fs.fsync(fd))
            else:
                fs.cache.invalidate(ino)
                yield env.process(fs.read(fd, bs, offset=i * bs))

    env.run(env.process(measured()))
    elapsed = env.now - start
    return {
        "op": op,
        "fs": fs_name,
        "total_ns_per_op": elapsed / nops,
        "breakdown": phase_breakdown(telemetry.spans),
    }


def run_phase_anatomy(
    op: str = "write", nops: int = 32, bs: int = 4096, seed: int = 0,
) -> dict[str, dict]:
    """The Fig 4 matrix: phase breakdowns for Lab-All, Lab-Min, Lab-D,
    and the ext4 kernel baseline, all from live spans."""
    results = {}
    for variant in ("all", "min", "d"):
        results[f"lab-{variant}"] = run_anatomy(
            op, nops=nops, bs=bs, seed=seed, variant=variant
        )
    results["ext4"] = run_kernel_anatomy(op, nops=nops, bs=bs, seed=seed)
    return results


def format_anatomy(result: dict) -> str:
    rows = sorted(result["fractions"].items(), key=lambda kv: -kv[1])
    return format_table(
        ["Component", "Fraction", "ns/op"],
        [[label, f"{frac * 100:.1f}%", f"{result['span_ns'].get(label, 0):.0f}"]
         for label, frac in rows],
        title=f"Fig 4(a) I/O anatomy — 4KB {result['op']} "
              f"(total {result['total_ns_per_op']:.0f} ns/op)",
    )
