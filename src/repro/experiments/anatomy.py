"""E1 — I/O stack anatomy (paper Fig 4(a)).

Reads/writes 4KB through the full Lab-All stack (Permissions, LabFS, LRU
cache, NoOp scheduler, Kernel Driver) with a single Runtime worker and
accumulates the per-LabMod time breakdown via trace spans.

Paper shape: device I/O ~66% of a 4KB write; page cache ~17% (copying);
IPC ~8.4%; NoOp scheduler ~5%; FS metadata ~3%; permissions ~3%;
driver ~1%.
"""

from __future__ import annotations

from ..core.requests import LabRequest
from ..core.runtime import RuntimeConfig
from ..mods.generic_fs import GenericFS
from ..sim import SpanAccumulator
from ..system import LabStorSystem
from .report import format_table

__all__ = ["run_anatomy", "format_anatomy"]

# trace span -> paper category
SPAN_LABELS = {
    "device_io": "Device I/O",
    "cache": "Page cache (LRU)",
    "ipc": "IPC (shm queues)",
    "sched": "I/O sched (NoOp)",
    "fs_meta": "FS metadata",
    "permissions": "Permissions",
    "driver": "Driver",
}


def run_anatomy(op: str = "write", nops: int = 64, bs: int = 4096, seed: int = 0) -> dict:
    """Returns {"fractions": {label: fraction}, "total_ns": per-op ns}."""
    sys_ = LabStorSystem(
        seed=seed, devices=("nvme",), config=RuntimeConfig(nworkers=1, trace=True)
    )
    sys_.mount_fs_stack("fs::/a", variant="all", uuid_prefix="anat")
    client = sys_.client()
    gfs = GenericFS(client)
    acc = SpanAccumulator()

    def setup():
        fd = yield from gfs.open("fs::/a/target", create=True)
        # touch every page so reads/overwrites hit allocated blocks
        yield from gfs.write(fd, b"\x00" * (bs * nops), offset=0)
        if op == "read":
            # drop the LRU cache so reads exercise the device path
            sys_.runtime.registry.get("anat.lru").pages.clear()
        return fd

    fd = sys_.run(sys_.process(setup()))
    sys_.runtime.tracer.add_sink(acc)  # measure only the steady-state ops
    start = sys_.env.now

    def measured():
        for i in range(nops):
            if op == "write":
                yield from gfs.write(fd, b"w" * bs, offset=i * bs)
            else:
                sys_.runtime.registry.get("anat.lru").pages.clear()
                yield from gfs.read(fd, bs, offset=i * bs)

    sys_.run(sys_.process(measured()))
    elapsed = sys_.env.now - start
    fractions = {}
    total_spans = sum(acc.totals.get(k, 0) for k in SPAN_LABELS)
    for span, label in SPAN_LABELS.items():
        fractions[label] = acc.totals.get(span, 0) / total_spans if total_spans else 0.0
    return {
        "op": op,
        "fractions": fractions,
        "total_ns_per_op": elapsed / nops,
        "span_ns": {SPAN_LABELS[k]: v / nops for k, v in acc.totals.items() if k in SPAN_LABELS},
    }


def format_anatomy(result: dict) -> str:
    rows = sorted(result["fractions"].items(), key=lambda kv: -kv[1])
    return format_table(
        ["Component", "Fraction", "ns/op"],
        [[label, f"{frac * 100:.1f}%", f"{result['span_ns'].get(label, 0):.0f}"]
         for label, frac in rows],
        title=f"Fig 4(a) I/O anatomy — 4KB {result['op']} "
              f"(total {result['total_ns_per_op']:.0f} ns/op)",
    )
