"""E13 — open-loop overload: goodput vs offered load, with admission control.

The first production-traffic experiment: the canonical two-tenant
population (``repro.traffic.presets``) is driven open-loop at a sweep of
offered-load multipliers, once with no admission control and once with a
queue-depth threshold.  Each point is an independent seeded simulation,
fanned across processes by :mod:`repro.experiments.sweep`.

Expected shape — the textbook open-loop curve:

- below saturation goodput tracks offered load (the 45-degree line);
- past the knee the **none** policy collapses: arrivals keep landing on a
  saturated system, queues grow without bound, every admitted op blows
  its deadline, goodput falls toward zero;
- **queue-depth** admission sheds the excess at the door instead, so the
  admitted ops still meet their SLO and goodput plateaus near capacity.
"""

from __future__ import annotations

from ..units import msec
from .report import format_table
from .sweep import run_sweep

__all__ = ["OFFERED_LOADS", "POLICIES", "run_openloop_point", "sweep_openloop",
           "format_openloop"]

OFFERED_LOADS = (0.25, 0.5, 1.0, 1.5, 2.5, 4.0)
POLICIES = ("none", "queue-depth")


def run_openloop_point(point: dict, seed: int) -> dict:
    """One sweep point (module-level: must cross a process pool)."""
    from ..traffic.engine import QueueDepthAdmission
    from ..traffic.presets import build_overload_engine

    policy = None
    if point["policy"] == "queue-depth":
        policy = QueueDepthAdmission(point.get("max_inflight", 4))
    system, engine = build_overload_engine(
        seed=seed,
        duration_ns=msec(point.get("duration_ms", 2.0)),
        load=point["load"],
        policy=policy,
    )
    s = engine.run()
    fe = s["tenants"]["frontend"]
    row = {
        "policy": point["policy"],
        "load": point["load"],
        "offered_ops_s": s["offered_ops_s"],
        "goodput_ops_s": s["goodput_ops_s"],
        "achieved_ops_s": s["achieved_ops_s"],
        "launched": s["totals"]["launched"],
        "good": s["totals"]["good"],
        "violations": s["totals"]["violations"],
        "rejected": s["totals"]["rejected"],
        "peak_inflight": s["peak_inflight"],
        "frontend_p50_ns": fe.get("p50_ns", 0.0),
        "frontend_p99_ns": fe.get("p99_ns", 0.0),
        "frontend_p999_ns": fe.get("p999_ns", 0.0),
        "seed": seed,
    }
    system.shutdown()
    return row


def sweep_openloop(loads=OFFERED_LOADS, policies=POLICIES, *,
                   duration_ms: float = 2.0, max_inflight: int = 4,
                   base_seed: int = 0, processes: int | None = None) -> list[dict]:
    """The goodput-vs-offered-load grid; rows in configuration order."""
    points = [
        {"policy": p, "load": load, "duration_ms": duration_ms,
         "max_inflight": max_inflight}
        for p in policies for load in loads
    ]
    return run_sweep(run_openloop_point, points, base_seed=base_seed,
                     processes=processes)


def format_openloop(rows: list[dict]) -> str:
    return format_table(
        ["policy", "load", "offered K/s", "goodput K/s", "done K/s",
         "viol", "rej", "peak qd", "fe p99 us", "fe p999 us"],
        [[r["policy"], f"{r['load']:.2f}",
          f"{r['offered_ops_s'] / 1000:.0f}",
          f"{r['goodput_ops_s'] / 1000:.1f}",
          f"{r['achieved_ops_s'] / 1000:.1f}",
          str(r["violations"]), str(r["rejected"]), str(r["peak_inflight"]),
          f"{r['frontend_p99_ns'] / 1000:.0f}",
          f"{r['frontend_p999_ns'] / 1000:.0f}"]
         for r in rows],
        title="E13 — open-loop overload (2 tenants, YCSB on LabKVS, NVMe)",
    )
