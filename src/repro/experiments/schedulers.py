"""E7 — Developing & customizing I/O policies (paper Fig 8 / Table II).

A throughput app (T-App: 64KB random writes, qd32, 8 threads) and a
latency app (L-App: 4KB random writes, qd1, 8 threads) run isolated or
colocated on shared cores.  Four schedulers:

- ``linux-noop`` / ``linux-blk``: in-kernel, through the full block layer
  (blk-switch requires its custom kernel in the paper; here it is the
  KernelBlkSwitch elevator).
- ``lab-noop`` / ``lab-blk``: the LabStor LabMod ports in a scheduler +
  Kernel Driver stack.

Both apps share cores 0..3, so the NoOp core→hctx mapping funnels the
L-App into the T-App's hardware queues (head-of-line blocking), while
blk-switch steers by load.  We report L-App average and P99 latency.

Paper shape: isolated, NoOp <= blk-switch (and Lab-NoOp ~5% better than
Linux-NoOp); colocated, Linux-NoOp latency explodes, blk-switch restores
QoS, and Lab-Blk is ~20% below Linux-Blk.
"""

from __future__ import annotations

from ..core.labstack import StackSpec
from ..core.runtime import RuntimeConfig
from ..devices.profiles import make_device
from ..kernel.block_layer import BlockLayer, KernelBlkSwitch, KernelNoop
from ..kernel.interfaces import IoUring
from ..sim import Environment
from ..system import LabStorSystem
from ..units import KiB
from ..workloads.fio import FioJob, LabStackEngine, RawDeviceEngine, run_fio
from .report import format_table

__all__ = ["run_schedulers", "sweep_schedulers", "format_schedulers", "SCHEDULERS"]

SCHEDULERS = ("linux-noop", "linux-blk", "lab-noop", "lab-blk")

_SHARED_CORES = 4  # both apps pinned to cores 0..3 when colocated


def _jobs(colocated: bool, l_nops: int, t_nops: int):
    l_jobs = [FioJob(rw="randwrite", bs=4 * KiB, nops=l_nops, iodepth=1, core=c % _SHARED_CORES,
                     region_offset=0, region_size=1 << 30)
              for c in range(8)]
    t_jobs = []
    if colocated:
        t_jobs = [FioJob(rw="randwrite", bs=64 * KiB, nops=t_nops, iodepth=32,
                         core=c % _SHARED_CORES, region_offset=1 << 30, region_size=1 << 30)
                  for c in range(8)]
    return l_jobs, t_jobs


def run_schedulers(scheduler: str, *, colocated: bool, l_nops: int = 150,
                   t_nops: int = 120, seed: int = 0) -> dict:
    make_engine = None
    if scheduler.startswith("linux-"):
        env = Environment()
        dev = make_device(env, "nvme")
        iface = IoUring(env, dev)  # the paper drives kernel schedulers via fio
        iface.block_layer.set_scheduler(
            KernelNoop() if scheduler == "linux-noop" else KernelBlkSwitch()
        )
        engine = RawDeviceEngine(iface)
        make_engine = lambda: engine  # noqa: E731 - kernel path is stateless per thread
    else:
        sched_mod = "NoOpSchedMod" if scheduler == "lab-noop" else "BlkSwitchSchedMod"
        sys_ = LabStorSystem(seed=seed, devices=("nvme",),
                             config=RuntimeConfig(nworkers=8, ncores=48))
        attrs = ({"nqueues": sys_.devices["nvme"].nqueues}
                 if sched_mod == "NoOpSchedMod" else {"device": "nvme"})
        spec = StackSpec.linear(
            "blk::/sched", [(sched_mod, f"schedx.{scheduler}.s"),
                            ("KernelDriverMod", f"schedx.{scheduler}.d")])
        spec.nodes[0].attrs = attrs
        spec.nodes[1].attrs = {"device": "nvme"}
        stack = sys_.runtime.mount_stack(spec)
        env = sys_.env
        # one client (one unordered queue pair) per fio thread, as in the
        # paper — unordered so qd32 stays 32-outstanding inside the Runtime
        make_engine = lambda: LabStackEngine(  # noqa: E731
            sys_.client(ordered=False), stack, sys_.devices["nvme"]
        )

    l_jobs, t_jobs = _jobs(colocated, l_nops, t_nops)
    # run T-jobs and L-jobs together but record only L latency
    from ..workloads.fio import FioResult, _job_proc
    import numpy as np

    l_result = FioResult()
    t_result = FioResult()
    procs = []
    rng = np.random.default_rng(seed)
    for job, result in [(j, t_result) for j in t_jobs] + [(j, l_result) for j in l_jobs]:
        payload = bytes([job.core]) * job.bs
        procs.append(env.process(
            _job_proc(env, make_engine(), job, np.random.default_rng(rng.integers(2**63)),
                      result, payload)))
    start = env.now
    env.run(env.all_of(procs))
    l_result.elapsed_ns = env.now - start
    return {
        "scheduler": scheduler,
        "colocated": colocated,
        "l_lat_mean_us": l_result.latency.mean / 1000,
        "l_lat_p99_us": l_result.latency.p99 / 1000,
        "l_iops": l_result.iops,
    }


def sweep_schedulers(*, l_nops: int = 120, t_nops: int = 100, seed: int = 0) -> list[dict]:
    rows = []
    for colocated in (False, True):
        for sched in SCHEDULERS:
            rows.append(run_schedulers(sched, colocated=colocated,
                                       l_nops=l_nops, t_nops=t_nops, seed=seed))
    return rows


def format_schedulers(rows: list[dict]) -> str:
    return format_table(
        ["scheduler", "placement", "L-App mean (us)", "L-App p99 (us)"],
        [[r["scheduler"], "colocated" if r["colocated"] else "isolated",
          r["l_lat_mean_us"], r["l_lat_p99_us"]] for r in rows],
        title="Fig 8 / Table II — I/O scheduler comparison (L-App latency)",
    )
