"""High-level facade: build a complete LabStor deployment in one call.

Wraps environment + devices + Runtime + standard LabMod repo + the
paper's canonical LabStack configurations:

- ``Lab-All``  — Permissions, LabFS/LabKVS, LRU cache, NoOp sched,
  Kernel Driver; asynchronous execution (in the Runtime).
- ``Lab-Min``  — Lab-All minus the Permissions LabMod.
- ``Lab-D``    — Lab-Min executed synchronously in the client (no
  centralized authority / IPC on the data path).

Stacks are composed through the fluent :class:`~repro.builder.StackBuilder`::

    sys_ = LabStorSystem()
    stack = sys_.stack("/labfs").fs(variant="all").device("nvme").mount()

The old ``fs_stack_spec``/``kvs_stack_spec`` methods still work but emit
a :class:`DeprecationWarning`; ``mount_fs_stack``/``mount_kvs_stack``
remain supported conveniences (they delegate to the builder).

Telemetry: pass ``telemetry=True`` (or a configured
:class:`repro.obs.Telemetry`) or set ``REPRO_TELEMETRY=1`` to record
per-request spans; see DESIGN.md "Observability".
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, Optional, Union

from .builder import VARIANTS, StackBuilder
from .core.client import LabStorClient
from .core.labstack import LabStack, StackSpec
from .core.runtime import LabStorRuntime, RuntimeConfig
from .devices.profiles import DeviceSpec, make_device
from .faults.plan import plan_from_env as _plan_from_env
from .kernel.cpu import DEFAULT_COST, CostModel
from .mods import STANDARD_REPO
from .obs.telemetry import Telemetry
from .obs.telemetry import maybe_attach as _maybe_attach_telemetry
from .sim import Environment, RngRegistry
from .sim.sanitizer import maybe_attach

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultEngine, FaultPlan

__all__ = ["LabStorSystem", "VARIANTS"]


class LabStorSystem:
    def __init__(
        self,
        *,
        seed: int = 0,
        devices: Iterable[Union[str, DeviceSpec]] = ("nvme",),
        config: RuntimeConfig | None = None,
        cost: CostModel = DEFAULT_COST,
        device_overrides: dict[str, dict] | None = None,
        env: Environment | None = None,
        telemetry: Union[Telemetry, bool, None] = None,
        fault_plan: Union["FaultPlan", str, None] = None,
    ) -> None:
        self.env = env if env is not None else Environment()
        # REPRO_SANITIZE=1 arms the invariant checker for every deployment
        # built through this facade (covers all experiment drivers)
        self.sanitizer = maybe_attach(self.env)
        # telemetry: explicit argument wins; None defers to REPRO_TELEMETRY
        self.telemetry: Optional[Telemetry] = None
        if isinstance(telemetry, Telemetry):
            self.telemetry = telemetry.install(self.env)
        elif telemetry is True:
            self.telemetry = Telemetry().install(self.env)
        elif telemetry is None:
            self.telemetry = _maybe_attach_telemetry(self.env)
        self.rngs = RngRegistry(seed)
        self.cost = cost
        if device_overrides is not None:
            warnings.warn(
                "device_overrides is deprecated; pass DeviceSpec entries in "
                "`devices` instead, e.g. devices=[DeviceSpec('nvme', nqueues=16)]",
                DeprecationWarning,
                stacklevel=2,
            )
        overrides = device_overrides or {}
        self.devices = {}
        for dev in devices:
            spec = dev if isinstance(dev, DeviceSpec) else DeviceSpec(
                dev, **overrides.get(dev, {})
            )
            self.devices[spec.kind] = spec.build(
                self.env, rng=self.rngs.stream(f"device.{spec.kind}")
            )
        self.runtime = LabStorRuntime(self.env, self.devices, cost=cost, config=config)
        self.runtime.mount_repo("standard", STANDARD_REPO)
        self._clients: list[LabStorClient] = []
        # fault injection: explicit plan wins; None defers to REPRO_FAULTS.
        # self.faults stays None on the no-plan fast path (zero overhead).
        self.faults = None
        plan = fault_plan if fault_plan is not None else _plan_from_env()
        if plan is not None:
            self.install_faults(plan)

    def install_faults(self, plan: Union["FaultPlan", str]) -> "FaultEngine":
        """Arm (or extend) deterministic fault injection on this system.

        Accepts a :class:`repro.faults.FaultPlan` or its text form (the
        ``REPRO_FAULTS`` syntax).  All randomness draws from the seeded
        ``"faults"`` RNG stream, so runs replay bit-for-bit."""
        from .faults import FaultEngine, FaultPlan

        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if self.faults is None:
            self.faults = FaultEngine(
                self.env, plan, rng=self.rngs.stream("faults")
            ).install(self)
        else:
            self.faults.extend(plan)
        return self.faults

    # ------------------------------------------------------------------
    # canonical stacks
    # ------------------------------------------------------------------
    def stack(self, mount: str) -> StackBuilder:
        """Begin a fluent stack configuration rooted at ``mount``."""
        return StackBuilder(self, mount)

    def _fs_builder(
        self,
        mount: str,
        *,
        variant: str = "all",
        device: str = "nvme",
        driver: str = "KernelDriverMod",
        cache: bool = True,
        sched: str = "NoOpSchedMod",
        uuid_prefix: str | None = None,
        capacity_bytes: int | None = None,
        nworkers: int = 8,
    ) -> StackBuilder:
        b = (
            self.stack(mount)
            .fs(variant=variant, capacity_bytes=capacity_bytes, nworkers=nworkers)
            .device(device)
            .driver(driver)
            .cache(cache)
            .sched(sched)
        )
        if uuid_prefix:
            b.uuid_prefix(uuid_prefix)
        return b

    def _kvs_builder(
        self,
        mount: str,
        *,
        variant: str = "all",
        device: str = "nvme",
        driver: str = "KernelDriverMod",
        sched: str = "NoOpSchedMod",
        uuid_prefix: str | None = None,
        capacity_bytes: int | None = None,
        nworkers: int = 8,
    ) -> StackBuilder:
        b = (
            self.stack(mount)
            .kvs(variant=variant, capacity_bytes=capacity_bytes, nworkers=nworkers)
            .device(device)
            .driver(driver)
            .sched(sched)
        )
        if uuid_prefix:
            b.uuid_prefix(uuid_prefix)
        return b

    def fs_stack_spec(self, mount: str, **kw) -> StackSpec:
        """Deprecated: use ``system.stack(mount).fs(...)...build()``."""
        warnings.warn(
            "LabStorSystem.fs_stack_spec() is deprecated; use "
            "system.stack(mount).fs(...).device(...).build() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._fs_builder(mount, **kw).build()

    def kvs_stack_spec(self, mount: str, **kw) -> StackSpec:
        """Deprecated: use ``system.stack(mount).kvs(...)...build()``."""
        warnings.warn(
            "LabStorSystem.kvs_stack_spec() is deprecated; use "
            "system.stack(mount).kvs(...).device(...).build() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._kvs_builder(mount, **kw).build()

    def mount_fs_stack(self, mount: str, **kw) -> LabStack:
        return self._fs_builder(mount, **kw).mount()

    def mount_kvs_stack(self, mount: str, **kw) -> LabStack:
        return self._kvs_builder(mount, **kw).mount()

    # ------------------------------------------------------------------
    def client(self, ordered: bool = True) -> LabStorClient:
        """Create and connect a client (runs the connect handshake now)."""
        c = LabStorClient(self.env, self.runtime)
        self.env.run(self.env.process(c.connect(ordered=ordered)))
        self._clients.append(c)
        return c

    def shutdown(self, drain: bool = True) -> None:
        """Tear the deployment down: drain in-flight work, close every
        client, and stop the Runtime's daemon pollers.

        After shutdown the simulation holds no live daemon processes from
        this system, so repeated build/measure cycles (the anatomy
        experiment, parameter sweeps) cannot accumulate pollers.
        """
        if drain:
            for c in self._clients:
                if c.conn is not None:
                    self.env.run(c.conn.qp.drained())
        for c in self._clients:
            c.close()
        self._clients.clear()
        self.runtime.shutdown()
        # unwind the interrupts delivered above (they are scheduled as
        # immediate events); without this the dead processes would only
        # clean up on the next unrelated env.run()
        while (
            self.env._urgent or self.env._due or self.env._heap
        ) and self.env.peek() <= self.env.now:
            self.env.step()

    def run(self, *args, **kw):
        return self.env.run(*args, **kw)

    def process(self, gen, **kw):
        return self.env.process(gen, **kw)
