"""High-level facade: build a complete LabStor deployment in one call.

Wraps environment + devices + Runtime + standard LabMod repo + the
paper's canonical LabStack configurations:

- ``Lab-All``  — Permissions, LabFS/LabKVS, LRU cache, NoOp sched,
  Kernel Driver; asynchronous execution (in the Runtime).
- ``Lab-Min``  — Lab-All minus the Permissions LabMod.
- ``Lab-D``    — Lab-Min executed synchronously in the client (no
  centralized authority / IPC on the data path).

This is what the examples and every benchmark harness build on.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from .core.client import LabStorClient
from .core.labstack import LabStack, NodeSpec, StackRules, StackSpec
from .core.runtime import LabStorRuntime, RuntimeConfig
from .devices.profiles import make_device
from .errors import LabStorError
from .kernel.cpu import DEFAULT_COST, CostModel
from .mods import STANDARD_REPO
from .sim import Environment, RngRegistry
from .sim.sanitizer import maybe_attach

__all__ = ["LabStorSystem", "VARIANTS"]

VARIANTS = ("all", "min", "d")

_uuid_seq = itertools.count(1)


class LabStorSystem:
    def __init__(
        self,
        *,
        seed: int = 0,
        devices: Iterable[str] = ("nvme",),
        config: RuntimeConfig | None = None,
        cost: CostModel = DEFAULT_COST,
        device_overrides: dict[str, dict] | None = None,
        env: Environment | None = None,
    ) -> None:
        self.env = env if env is not None else Environment()
        # REPRO_SANITIZE=1 arms the invariant checker for every deployment
        # built through this facade (covers all experiment drivers)
        self.sanitizer = maybe_attach(self.env)
        self.rngs = RngRegistry(seed)
        self.cost = cost
        overrides = device_overrides or {}
        self.devices = {
            kind: make_device(
                self.env, kind, rng=self.rngs.stream(f"device.{kind}"), **overrides.get(kind, {})
            )
            for kind in devices
        }
        self.runtime = LabStorRuntime(self.env, self.devices, cost=cost, config=config)
        self.runtime.mount_repo("standard", STANDARD_REPO)
        self._clients: list[LabStorClient] = []

    # ------------------------------------------------------------------
    # canonical stacks
    # ------------------------------------------------------------------
    def fs_stack_spec(
        self,
        mount: str,
        *,
        variant: str = "all",
        device: str = "nvme",
        driver: str = "KernelDriverMod",
        cache: bool = True,
        sched: str = "NoOpSchedMod",
        uuid_prefix: str | None = None,
        capacity_bytes: int | None = None,
        nworkers: int = 8,
    ) -> StackSpec:
        """Build the spec for one of the paper's LabFS stack variants."""
        if variant not in VARIANTS:
            raise LabStorError(f"variant must be one of {VARIANTS}")
        u = uuid_prefix or f"s{next(_uuid_seq)}"
        dev = self.devices[device]
        cap = capacity_bytes or dev.profile.capacity_bytes
        nodes: list[NodeSpec] = []
        chain: list[str] = []

        def add(mod_name: str, uuid: str, attrs: dict) -> None:
            nodes.append(NodeSpec(mod_name=mod_name, uuid=uuid, attrs=attrs))
            chain.append(uuid)

        if variant == "all":
            add("PermissionsMod", f"{u}.perm", {})
        add("LabFs", f"{u}.labfs", {"capacity_bytes": cap, "nworkers": nworkers, "device": device})
        if cache:
            add("LruCacheMod", f"{u}.lru", {})
        if sched:
            sched_attrs = {"nqueues": dev.nqueues}
            if sched == "BlkSwitchSchedMod":
                sched_attrs = {"device": device}
            add(sched, f"{u}.sched", sched_attrs)
        add(driver, f"{u}.driver", {"device": device})
        for i in range(len(nodes) - 1):
            nodes[i].outputs = [nodes[i + 1].uuid]
        exec_mode = "sync" if variant == "d" else "async"
        return StackSpec(mount=mount, nodes=nodes, rules=StackRules(exec_mode=exec_mode))

    def kvs_stack_spec(
        self,
        mount: str,
        *,
        variant: str = "all",
        device: str = "nvme",
        driver: str = "KernelDriverMod",
        sched: str = "NoOpSchedMod",
        uuid_prefix: str | None = None,
        capacity_bytes: int | None = None,
        nworkers: int = 8,
    ) -> StackSpec:
        """The paper's LabKVS stacks: [Permissions,] LabKVS, NoOp, Driver."""
        if variant not in VARIANTS:
            raise LabStorError(f"variant must be one of {VARIANTS}")
        u = uuid_prefix or f"s{next(_uuid_seq)}"
        dev = self.devices[device]
        cap = capacity_bytes or dev.profile.capacity_bytes
        nodes: list[NodeSpec] = []
        if variant == "all":
            nodes.append(NodeSpec(mod_name="PermissionsMod", uuid=f"{u}.perm", attrs={}))
        nodes.append(
            NodeSpec(
                mod_name="LabKvs",
                uuid=f"{u}.labkvs",
                attrs={"capacity_bytes": cap, "nworkers": nworkers},
            )
        )
        if sched:
            sched_attrs = {"nqueues": dev.nqueues}
            if sched == "BlkSwitchSchedMod":
                sched_attrs = {"device": device}
            nodes.append(NodeSpec(mod_name=sched, uuid=f"{u}.sched", attrs=sched_attrs))
        nodes.append(NodeSpec(mod_name=driver, uuid=f"{u}.driver", attrs={"device": device}))
        for i in range(len(nodes) - 1):
            nodes[i].outputs = [nodes[i + 1].uuid]
        exec_mode = "sync" if variant == "d" else "async"
        return StackSpec(mount=mount, nodes=nodes, rules=StackRules(exec_mode=exec_mode))

    def mount_fs_stack(self, mount: str, **kw) -> LabStack:
        return self.runtime.mount_stack(self.fs_stack_spec(mount, **kw))

    def mount_kvs_stack(self, mount: str, **kw) -> LabStack:
        return self.runtime.mount_stack(self.kvs_stack_spec(mount, **kw))

    # ------------------------------------------------------------------
    def client(self, ordered: bool = True) -> LabStorClient:
        """Create and connect a client (runs the connect handshake now)."""
        c = LabStorClient(self.env, self.runtime)
        self.env.run(self.env.process(c.connect(ordered=ordered)))
        self._clients.append(c)
        return c

    def run(self, *args, **kw):
        return self.env.run(*args, **kw)

    def process(self, gen, **kw):
        return self.env.process(gen, **kw)
