"""Unit helpers.

All simulated time is kept as integer **nanoseconds** for determinism and
all sizes as integer **bytes**.  These helpers exist so that calibration
constants read like the paper ("4KB request", "20ms compression") instead
of raw integers.
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------
NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def usec(x: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return round(x * USEC)


def msec(x: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return round(x * MSEC)


def sec(x: float) -> int:
    """Seconds -> integer nanoseconds."""
    return round(x * SEC)


def to_usec(ns: int) -> float:
    return ns / USEC


def to_msec(ns: int) -> float:
    return ns / MSEC


def to_sec(ns: int) -> float:
    return ns / SEC


# --- sizes ---------------------------------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def kib(x: float) -> int:
    return round(x * KiB)


def mib(x: float) -> int:
    return round(x * MiB)


def gib(x: float) -> int:
    return round(x * GiB)


def fmt_size(nbytes: int) -> str:
    """Human-readable size, e.g. ``fmt_size(4096) == '4.0KiB'``."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or suffix == "GiB":
            return f"{value:.1f}{suffix}" if suffix != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(ns: int) -> str:
    """Human-readable duration, e.g. ``fmt_time(1500) == '1.50us'``."""
    if ns < USEC:
        return f"{ns}ns"
    if ns < MSEC:
        return f"{ns / USEC:.2f}us"
    if ns < SEC:
        return f"{ns / MSEC:.2f}ms"
    return f"{ns / SEC:.3f}s"
