"""Canonical control-plane scenarios shared across the harnesses.

One builder so the ``"control"`` determinism scenario
(:mod:`repro.sim.check`), the chaos-convergence property tests
(``tests/test_ctl.py``), the report CLI (``python -m repro.ctl.report``)
and the benchmark gate all drive the *same* deployment shape:

a 2-worker KVS under open-loop tenant traffic, with the orchestrator's
inline respawn reflex **off** (``worker_auto_respawn=False``) and a
seeded chaos plan — two worker crashes, a power cut with **no**
scheduled administrator restart, a probabilistic device latency tax and
a device stall.  Every repair must therefore come from the
:class:`~repro.ctl.daemon.ControlDaemon`: without it the run never
recovers (the contrast the convergence tests measure).
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..faults.plan import FaultPlan, FaultSpec
from ..faults.policies import RetryPolicy
from ..mods.generic_kvs import GenericKVS
from ..sim import Environment
from ..system import LabStorSystem
from ..traffic.engine import OpenLoopEngine, QueueDepthAdmission
from ..traffic.tenants import TenantSLO, TenantSpec
from ..traffic.ycsb import YcsbWorkload
from ..units import msec, usec
from .actuators import Actuators
from .controllers import (
    RetryTuneController,
    SelfHealController,
    WorkerScaleController,
)
from .daemon import ControlDaemon

__all__ = ["CHAOS_MOUNT", "chaos_plan", "chaos_tenant", "build_chaos_control"]

MOUNT = CHAOS_MOUNT = "kvs::/ctl"


def chaos_plan(device: str = "nvme") -> FaultPlan:
    """The canned control-plane storm (all times virtual, seeded draws).

    - 2ms, 3ms: a random worker crashes — and stays dead (no inline
      respawn) until the daemon's healer notices;
    - 6ms: power cut with **no** ``restart_after`` — only the daemon's
      ``restart_runtime`` actuator brings the Runtime back (~5ms);
    - throughout: a 2% per-op latency tax on the device;
    - 14ms: the device controller stalls for 1ms (service starts frozen),
      which the retry-tune controller rides out with a wider budget.
    """
    return FaultPlan.of(
        FaultSpec(kind="worker_crash", at=msec(2)),
        FaultSpec(kind="worker_crash", at=msec(3)),
        FaultSpec(kind="power_cut", at=msec(6)),
        FaultSpec(kind="latency", device=device, probability=0.02,
                  extra_ns=usec(30)),
        FaultSpec(kind="stall", at=msec(14), device=device, extra_ns=msec(1)),
    )


def chaos_tenant() -> TenantSpec:
    """One Poisson tenant at ~20K ops/s with a 1ms deadline — enough load
    that dead workers and the power cut visibly dent goodput, loose
    enough SLO that a healed system serves in-deadline again."""
    return TenantSpec(
        name="kv",
        users=400_000,
        ops_per_user_per_sec=0.05,  # 20K ops/s aggregate
        slo=TenantSLO(deadline_ns=msec(1)),
        schedule="poisson",
    )


def build_chaos_control(
    *,
    seed: int = 0,
    duration_ns: int = msec(20),
    interval_ns: int = usec(500),
    with_daemon: bool = True,
    with_faults: bool = True,
    env: Environment | None = None,
    load: float = 1.0,
    nworkers: int = 2,
    max_inflight: int = 32,
) -> tuple[LabStorSystem, OpenLoopEngine, ControlDaemon | None]:
    """Build the canonical chaos-control deployment.

    Returns ``(system, engine, daemon)``; ``daemon`` is None with
    ``with_daemon=False`` (the uncontrolled baseline).  ``env`` lets a
    determinism audit attach its tracer first (the
    :mod:`repro.sim.check` protocol).
    """
    system = LabStorSystem(
        env=env, seed=seed, devices=("nvme",), telemetry=True,
        config=RuntimeConfig(nworkers=nworkers, worker_auto_respawn=False,
                             max_workers=8),
        fault_plan=chaos_plan() if with_faults else None,
    )
    system.mount_kvs_stack(MOUNT, variant="all")
    retry = RetryPolicy(max_attempts=4, timeout_ns=msec(2))
    wl = YcsbWorkload(GenericKVS(system.client(), MOUNT, retry=retry),
                      mix="A", nkeys=64, theta=0.9, value_size=256)
    system.run(system.process(wl.preload()))
    policy = QueueDepthAdmission(max_inflight)
    engine = OpenLoopEngine(system, duration_ns=duration_ns, policy=policy)
    engine.add_tenant(chaos_tenant(), wl.make_op, load_factor=load)
    daemon = None
    if with_daemon:
        actuators = Actuators(system).bind_admission(policy).bind_retry(retry)
        daemon = ControlDaemon(
            system,
            interval_ns=interval_ns,
            controllers=[SelfHealController(), RetryTuneController(),
                         WorkerScaleController()],
            actuators=actuators,
        )
    return system, engine, daemon
