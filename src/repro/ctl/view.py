"""Read-only windowed metrics for the control daemon.

The daemon must never mutate the telemetry it steers by — and it must
react to the *last interval*, not the whole run (a lifetime histogram
stops moving once it holds enough history to drown any new tail).
:class:`MetricsView` therefore wraps a
:class:`~repro.obs.metrics.MetricsRegistry` and, once per control tick,
produces an immutable :class:`MetricsWindow`:

- counter **deltas** and per-second **rates** over the interval
  (:meth:`MetricsRegistry.mark` / :meth:`MetricsRegistry.deltas`);
- per-window **histograms** via
  :meth:`~repro.sim.stats.Histogram.fork_window`, so quantiles cover only
  the interval's samples;
- read-through **gauges** with an explicit absent/zero distinction
  (:meth:`MetricsRegistry.has_gauge`).

The registry's window primitives are a single rolling window — one
MetricsView per registry, the daemon its sole driver.
"""

from __future__ import annotations

from typing import Any

from ..obs.metrics import MetricsRegistry, _key
from ..sim.stats import Histogram

__all__ = ["MetricsView", "MetricsWindow"]


def _matches(key: tuple, name: str, labels: dict[str, Any]) -> bool:
    """Does a registry key carry ``name`` and at least ``labels``?"""
    if key[0] != name:
        return False
    if not labels:
        return True
    have = dict(key[1:])
    return all(have.get(k) == v for k, v in labels.items())


class MetricsWindow:
    """One control interval's worth of metrics, frozen at the tick."""

    __slots__ = ("start_ns", "end_ns", "_deltas", "_hists", "_registry")

    def __init__(self, start_ns: int, end_ns: int,
                 deltas: dict[tuple, int],
                 hists: dict[tuple, Histogram],
                 registry: MetricsRegistry) -> None:
        self.start_ns = start_ns
        self.end_ns = end_ns
        self._deltas = deltas
        self._hists = hists
        self._registry = registry

    @property
    def elapsed_ns(self) -> int:
        return self.end_ns - self.start_ns

    # -- counters ---------------------------------------------------------
    def delta(self, name: str, **labels: Any) -> int:
        """Counter increase over this window (exact label match)."""
        return self._deltas.get(_key(name, labels), 0)

    def delta_sum(self, name: str, **labels: Any) -> int:
        """Window increase summed over every label set matching ``labels``
        (a partial filter: ``delta_sum("device_ops_total", device="nvme")``
        sums across ops)."""
        return sum(v for k, v in self._deltas.items()
                   if _matches(k, name, labels))

    def delta_values(self, name: str, **labels: Any) -> list[tuple[dict, int]]:
        """All ``(labels, window delta)`` pairs under ``name`` matching the
        partial filter — e.g. which tenants actually moved this window."""
        return [(dict(k[1:]), v) for k, v in self._deltas.items()
                if _matches(k, name, labels)]

    def rate(self, name: str, **labels: Any) -> float:
        """Per-second rate of the counter over this window."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.delta(name, **labels) * 1e9 / self.elapsed_ns

    def rate_sum(self, name: str, **labels: Any) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.delta_sum(name, **labels) * 1e9 / self.elapsed_ns

    # -- histograms -------------------------------------------------------
    def _matching_hists(self, name: str, labels: dict[str, Any]) -> list:
        return [h for k, h in self._hists.items() if _matches(k, name, labels)]

    def count(self, name: str, **labels: Any) -> int:
        """Samples received this window, summed over every label set
        matching the partial ``labels`` filter."""
        return sum(h.total for h in self._matching_hists(name, labels))

    def quantile(self, name: str, q: float, default: float | None = None,
                 **labels: Any) -> float | None:
        """Quantile over this window's samples only, merged across every
        label set matching the partial filter (so an aggregate p99 over
        per-tenant latency histograms just works); ``default`` when no
        matching histogram received samples this interval."""
        hists = [h for h in self._matching_hists(name, labels) if h.total]
        if not hists:
            return default
        if len(hists) == 1:
            return hists[0].quantile(q)
        merged = Histogram(min_ns=hists[0].min_ns, max_ns=hists[0].max_ns)
        for h in hists:
            if len(h.buckets) == len(merged.buckets) and h.min_ns == merged.min_ns:
                merged.buckets = merged.buckets + h.buckets
                merged.total += h.total
        return merged.quantile(q)

    # -- gauges (read-through: last-write-wins values have no window) -----
    def gauge(self, name: str, default: float | None = None,
              **labels: Any) -> float | None:
        """Current gauge value, or ``default`` if it was never set — a
        health check must be able to tell "absent" from a real 0.0."""
        if not self._registry.has_gauge(name, **labels):
            return default
        return self._registry.gauge(name, **labels)

    def has_gauge(self, name: str, **labels: Any) -> bool:
        return self._registry.has_gauge(name, **labels)

    def gauge_values(self, name: str, **labels: Any) -> list[tuple[dict, float]]:
        """All ``(labels, value)`` pairs under ``name`` matching the
        partial ``labels`` filter (e.g. every tenant's SLO deadline)."""
        return self._registry.gauge_values(name, **labels)

    def __repr__(self) -> str:
        return (f"<MetricsWindow [{self.start_ns}, {self.end_ns}]ns "
                f"deltas={len(self._deltas)} hists={len(self._hists)}>")


class MetricsView:
    """Rolling-window reader over one registry; :meth:`advance` per tick."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._window_start: int | None = None

    def advance(self, now_ns: int) -> MetricsWindow:
        """Close the current window at ``now_ns`` and open the next one.

        The first call returns a window covering everything recorded so
        far (start pinned to 0); metrics created mid-run enter the
        windows from their first sample on.
        """
        start = self._window_start if self._window_start is not None else 0
        window = MetricsWindow(
            start, now_ns,
            deltas=self.registry.deltas(),
            hists=self.registry.window_histograms(),
            registry=self.registry,
        )
        self.registry.mark()
        self._window_start = now_ns
        return window

    def __repr__(self) -> str:
        return f"<MetricsView over {self.registry!r}>"
