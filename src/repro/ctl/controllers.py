"""Controllers: map health verdicts + window metrics onto actuator calls.

A :class:`Controller` runs once per control tick, after every health
check, and talks to the system exclusively through the tick's
:class:`~repro.ctl.actuators.Actuators`.  Any randomness (probing,
victim choice) must come from ``ctx.rng`` — the daemon's seeded ``"ctl"``
RNG stream — so a controlled run replays digest-identically.

Shipped controllers:

- :class:`SelfHealController` — restart a power-cut Runtime, respawn
  crashed workers, rebalance after a stall clears (chaos recovery);
- :class:`AdmissionController` — AIMD on the admission limit driven by
  window SLO burn vs. rejections, with RNG-jittered headroom probes;
- :class:`WorkerScaleController` — queue-saturation driven pool scaling;
- :class:`RetryTuneController` — widen the retry budget while a device
  is stalled, restore it once healthy;
- :class:`BatchTuneController` — shrink the batch plug window under SLO
  burn (latency mode), regrow it under saturation (throughput mode);
- :class:`CacheSizeController` — grow the LRU cache while the window hit
  ratio is poor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .actuators import Actuators
    from .daemon import ControlContext

__all__ = ["Controller", "SelfHealController", "AdmissionController",
           "WorkerScaleController", "RetryTuneController",
           "BatchTuneController", "CacheSizeController"]


class Controller:
    """Base class: subclasses set :attr:`name` and implement
    :meth:`actuate`."""

    name = "abstract"

    def actuate(self, ctx: "ControlContext", act: "Actuators") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SelfHealController(Controller):
    """Chaos recovery: the liveness/stall verdicts drive urgent repairs.

    - Runtime offline → schedule a restart (idempotent);
    - dead workers (orchestrator ``auto_respawn`` off) → respawn them;
    - a device stall that just cleared → one rebalance, so queues that
      drained elsewhere during the stall spread back out.
    """

    name = "self_heal"

    def __init__(self) -> None:
        self._was_stalled = False

    def actuate(self, ctx: "ControlContext", act: "Actuators") -> None:
        liveness = ctx.health.get("worker_liveness")
        if liveness is not None and liveness.crit:
            if not ctx.runtime.online:
                act.restart_runtime(reason=liveness.reason)
            elif ctx.runtime.orchestrator.dead_workers:
                act.heal_workers(reason=liveness.reason)
        stall = ctx.health.get("device_stall")
        if stall is not None:
            if self._was_stalled and stall.ok:
                act.rebalance(reason="device stall cleared", urgent=True)
            self._was_stalled = not stall.ok


class AdmissionController(Controller):
    """AIMD-style admission-limit control from window SLO burn.

    - burn ≥ ``burn_hi`` → cut.  The floor of the cut is Little's law:
      the window's own completion rate times the active SLO deadline is
      the largest inflight count the pipeline can drain in-deadline, so
      the limit drops to ``max(limit/2, rate × deadline)`` — one cut
      lands at the knee instead of halving blindly past it tick after
      tick while stale over-admitted ops keep the burn pinned high;
    - burn ≤ ``burn_lo`` with window rejections → grow.  Cautious mode
      steps +1 for the first ``ramp_ticks`` grows of a streak, then
      doubles per grow up to ``max_step`` (the streak counts grows since
      the last burn, not consecutive ticks, so bursty rejection signals
      compound across the quiet gaps between bursts);
    - **ceiling memory** — the limit whose burn forced the last cut is
      remembered, and cautious growth parks one slot under it instead of
      re-probing into the same wall every few ticks.  A saturated phase
      settles just below its knee;
    - **hungry mode** — when burn has been quiet for ``quiet_ticks``
      control ticks *and* the window's p99 sits below ``hungry_margin``
      of the active tenants' SLO deadline, rejections mean the workload
      shifted under us: grow by the observed overflow (the window's
      rejected count, up to ``max_step``) and ignore the ceiling — it
      was learned against the old mix;
    - mid-zone burn → hold (and reset the streak);
    - stable with no rejections → probe headroom with probability
      ``probe_prob`` (seeded ``"ctl"`` stream via ``ctx.rng``): one step
      normally, a doubling when the margin is *deep* (p99 under
      ``deep_margin`` of the deadline with burn long-quiet) — that is a
      loose-deadline phase warming up between bursts, and meeting the
      next burst with a wide-open door is free;
    - **drain cap** — every growth path (cautious, hungry, probes) is
      additionally bounded by ``peak completions/window × deadline /
      window``: a queue deeper than the peak service rate can drain
      in-deadline just converts rejections into violations, so no probe
      opens the door past it.  The peak decays mildly (×0.98/tick) so a
      slowed pipeline re-learns its capacity.
    """

    name = "admission"

    def __init__(self, *, min_limit: int = 2, max_limit: int = 256,
                 burn_hi: float = 0.10, burn_lo: float = 0.02,
                 probe_prob: float = 0.25, max_step: int = 16,
                 ramp_ticks: int = 3, hungry_margin: float = 0.5,
                 deep_margin: float = 0.25, quiet_ticks: int = 8,
                 urgent_burn: float = 0.5, settle_ticks: int = 2) -> None:
        if not 0 < min_limit <= max_limit:
            raise ValueError(f"need 0 < min <= max, got {min_limit}/{max_limit}")
        if max_step < 1:
            raise ValueError(f"need max_step >= 1, got {max_step}")
        if quiet_ticks < 1:
            raise ValueError(f"need quiet_ticks >= 1, got {quiet_ticks}")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.burn_hi = burn_hi
        self.burn_lo = burn_lo
        self.probe_prob = probe_prob
        self.max_step = max_step
        self.ramp_ticks = ramp_ticks
        self.hungry_margin = hungry_margin
        self.deep_margin = deep_margin
        self.quiet_ticks = quiet_ticks
        self.urgent_burn = urgent_burn
        self.settle_ticks = settle_ticks
        self._streak = 0
        self._ceiling: int | None = None
        self._last_burn_tick: int | None = None
        self._last_cut_tick: int | None = None
        self._peak_done = 0.0  # best completions-per-window seen (decayed)

    def _growth_cap(self, data: dict, elapsed_ns: int) -> int:
        """Largest limit worth growing to: a queue deeper than
        (peak service rate × deadline) cannot drain in-deadline, so
        admitting past it just converts rejections into violations."""
        deadline = data.get("deadline_ns")
        if not deadline or elapsed_ns <= 0 or self._peak_done <= 0:
            return self.max_limit
        cap = int(self._peak_done * deadline / elapsed_ns)
        return max(self.min_limit, min(self.max_limit, cap))

    def _is_hungry(self, ctx: "ControlContext", data: dict) -> bool:
        margin = data.get("margin")
        if margin is None or margin >= self.hungry_margin:
            return False
        return (self._last_burn_tick is None
                or ctx.daemon.ticks - self._last_burn_tick >= self.quiet_ticks)

    def actuate(self, ctx: "ControlContext", act: "Actuators") -> None:
        burn_health = ctx.health.get("slo_burn")
        if burn_health is None:
            return
        data = burn_health.data
        if not data.get("completed") and not data.get("rejected"):
            return  # idle window: nothing to learn from
        burn = data.get("burn", 0.0)
        limit = act._admission.max_inflight
        # rolling capacity estimate: peak completions per window, mildly
        # decayed so a slowing device (stall, fewer workers) re-learns
        self._peak_done = max(float(data.get("completed", 0)),
                              self._peak_done * 0.98)
        cap = self._growth_cap(data, ctx.window.elapsed_ns)
        if burn >= self.burn_hi:
            self._streak = 0
            self._last_burn_tick = ctx.daemon.ticks
            # Little's-law floor: inflight beyond (completion rate ×
            # deadline) cannot drain in-deadline, but cutting below it
            # just throws away capacity the pipeline demonstrably has
            sustainable = 0
            deadline = data.get("deadline_ns")
            if deadline and ctx.window.elapsed_ns > 0:
                sustainable = int(data.get("completed", 0) * deadline
                                  / ctx.window.elapsed_ns)
            if (sustainable >= limit and self._last_cut_tick is not None
                    and ctx.daemon.ticks - self._last_cut_tick
                    <= self.settle_ticks):
                # already at/below the sustainable point right after a
                # cut: this burn is drain debt from the old limit still
                # completing late — cutting further only sheds capacity
                return
            # trust the measured sustainable point when we have one —
            # halving is the blind fallback
            target = sustainable if sustainable > 0 else limit // 2
            new = max(self.min_limit, min(limit - 1, target))
            # catastrophic burn is a protective shed: skip the cooldown
            # like the self-healers do.  Only remember the ceiling when
            # the cut actually lands — a suppressed tick is reporting
            # *stale* burn from a limit we already left
            if act.set_admission_limit(new, reason=f"slo burn {burn:.0%}",
                                       urgent=burn >= self.urgent_burn):
                self._ceiling = limit
                self._last_cut_tick = ctx.daemon.ticks
        elif burn <= self.burn_lo and data.get("rejected", 0) > 0:
            if self._is_hungry(ctx, data):
                # wide latency headroom and a long burn-quiet run: the
                # rejections are pure loss — open by (double) the
                # observed overflow so the next burst fits outright
                step = min(2 * int(data["rejected"]), 2 * self.max_step)
                new = min(cap, limit + step)
                if new > limit and act.set_admission_limit(
                        new, reason=f"margin {data['margin']:.0%}, "
                                    f"rejected {data['rejected']}"):
                    self._streak += 1
                return
            margin = data.get("margin")
            if margin is not None and margin >= 1.0:
                # the measured tail already spans the deadline: there is
                # no headroom to grow into, whatever the rejections say
                return
            if self._streak < self.ramp_ticks:
                step = 1
            else:
                step = min(1 << (self._streak - self.ramp_ticks + 1),
                           self.max_step)
            new = min(cap, limit + step)
            if self._ceiling is not None:
                new = min(new, max(self.min_limit, self._ceiling - 1))
            if new > limit:
                # streak advances only when the grow lands — the actuator
                # cooldown is the settle time that lets each new limit's
                # burn reach the window before the next (bigger) step
                if act.set_admission_limit(
                        new, reason=f"rejecting at burn {burn:.0%}"):
                    self._streak += 1
        elif burn <= self.burn_lo:
            # quiet window with nothing rejected: keep the streak (bursty
            # rejection signals compound across the gaps) and occasionally
            # probe headroom — doubling while the margin is deep, so the
            # door is already open when the next burst lands
            margin = data.get("margin")
            deep = (margin is not None and margin < self.deep_margin
                    and (self._last_burn_tick is None
                         or ctx.daemon.ticks - self._last_burn_tick
                         >= self.quiet_ticks))
            if deep:
                # deterministic: the gates above (and the drain cap) are
                # the safety check
                new = min(cap, limit * 2)
                if new > limit:
                    act.set_admission_limit(new, reason="deep-margin probe")
            elif (margin is None or margin < 1.0) and (
                    float(ctx.rng.random()) < self.probe_prob):
                new = min(cap, limit + 1)
                if new > limit:
                    act.set_admission_limit(new, reason="headroom probe")
        else:
            self._streak = 0


class WorkerScaleController(Controller):
    """Scale the worker pool on queue saturation, one step per change."""

    name = "worker_scale"

    def __init__(self, *, min_workers: int | None = None,
                 max_workers: int | None = None) -> None:
        self.min_workers = min_workers
        self.max_workers = max_workers

    def actuate(self, ctx: "ControlContext", act: "Actuators") -> None:
        sat = ctx.health.get("queue_saturation")
        if sat is None or not ctx.runtime.online:
            return
        orch = ctx.runtime.orchestrator
        lo = self.min_workers if self.min_workers is not None else orch.min_workers
        hi = self.max_workers if self.max_workers is not None else orch.max_workers
        n = orch.worker_count()
        if sat.crit and n < hi:
            act.set_worker_target(n + 1, reason=sat.reason)
        elif sat.ok and n > lo and sat.data.get("backlog", 0) == 0:
            act.set_worker_target(n - 1, reason="idle queues")


class RetryTuneController(Controller):
    """Ride out flaky devices: widen the bound retry policy while a
    device stall is in force, restore the baseline once it clears."""

    name = "retry_tune"

    def __init__(self, *, boost_attempts: int = 8,
                 boost_backoff_ns: int = 2_000_000) -> None:
        self.boost_attempts = boost_attempts
        self.boost_backoff_ns = boost_backoff_ns
        self._baseline: tuple | None = None

    def actuate(self, ctx: "ControlContext", act: "Actuators") -> None:
        stall = ctx.health.get("device_stall")
        policy = act._retry
        if stall is None or policy is None:
            return
        if stall.crit and self._baseline is None:
            self._baseline = (policy.max_attempts, policy.max_backoff_ns)
            act.set_retry(
                max_attempts=max(policy.max_attempts, self.boost_attempts),
                max_backoff_ns=max(policy.max_backoff_ns, self.boost_backoff_ns),
                reason=stall.reason, urgent=True)
        elif stall.ok and self._baseline is not None:
            attempts, backoff = self._baseline
            self._baseline = None
            act.set_retry(max_attempts=attempts, max_backoff_ns=backoff,
                          reason="device recovered", urgent=True)


class BatchTuneController(Controller):
    """Workload-aware batch plug window (the E12 curve's knee moves with
    the mix): SLO burn → latency mode (narrow window, small merges);
    saturation with burn quiet → throughput mode (wide window)."""

    name = "batch_tune"

    def __init__(self, *, latency_window_ns: int = 0,
                 throughput_window_ns: int = 20_000,
                 throughput_batch_max: int = 32) -> None:
        self.latency_window_ns = latency_window_ns
        self.throughput_window_ns = throughput_window_ns
        self.throughput_batch_max = throughput_batch_max

    def actuate(self, ctx: "ControlContext", act: "Actuators") -> None:
        if not act.batch_mods():
            return
        burn = ctx.health.get("slo_burn")
        sat = ctx.health.get("queue_saturation")
        if burn is not None and burn.crit:
            act.set_batch_params(window_ns=self.latency_window_ns,
                                 batch_max=1, reason=burn.reason)
        elif sat is not None and not sat.ok and (burn is None or burn.ok):
            act.set_batch_params(window_ns=self.throughput_window_ns,
                                 batch_max=self.throughput_batch_max,
                                 reason="backlog with SLO quiet")


class CacheSizeController(Controller):
    """Grow the LRU cache while the window hit ratio is poor (bounded
    doubling); leaves well-hit caches alone."""

    name = "cache_size"

    def __init__(self, *, min_hit_ratio: float = 0.5,
                 max_pages: int = 262_144, min_window_ops: int = 16) -> None:
        self.min_hit_ratio = min_hit_ratio
        self.max_pages = max_pages
        self.min_window_ops = min_window_ops
        self._prev: dict[str, tuple[int, int]] = {}  # uuid -> (hits, misses)

    def actuate(self, ctx: "ControlContext", act: "Actuators") -> None:
        for mod in act.cache_mods():
            ph, pm = self._prev.get(mod.uuid, (0, 0))
            dh, dm = mod.hits - ph, mod.misses - pm
            self._prev[mod.uuid] = (mod.hits, mod.misses)
            total = dh + dm
            if total < self.min_window_ops:
                continue
            if dh / total < self.min_hit_ratio and mod.capacity_pages < self.max_pages:
                act.set_cache_capacity(
                    min(self.max_pages, mod.capacity_pages * 2),
                    reason=f"hit ratio {dh / total:.0%} over {total} ops")
