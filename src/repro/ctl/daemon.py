"""The closed-loop control daemon: sample → check → actuate, every tick.

:class:`ControlDaemon` is a DES process (LabStor's monitor daemon,
transplanted to the simulator): every ``interval_ns`` of virtual time it

1. advances its :class:`~repro.ctl.view.MetricsView` — a read-only
   window over the deployment's :class:`MetricsRegistry`;
2. evaluates every registered :class:`~repro.ctl.health.HealthCheck`
   into a per-tick verdict map;
3. lets each :class:`~repro.ctl.controllers.Controller` actuate through
   the shared hysteresis-gated :class:`~repro.ctl.actuators.Actuators`.

Determinism: every random draw a controller makes comes from the
daemon's seeded ``"ctl"`` RNG stream, and the daemon itself only touches
the system through the declared actuator seams — so a controlled run
replays byte-identically (the ``"control"`` scenario of
``python -m repro.sim.check`` pins this), and an idle daemon (all
checks green → zero actions) leaves the data path's observable
behaviour untouched (the no-op safety test in ``tests/test_ctl.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..errors import LabStorError
from .actuators import Actuators
from .health import DeviceStall, Health, QueueSaturation, SloBurn, WorkerLiveness
from .view import MetricsView, MetricsWindow

if TYPE_CHECKING:  # pragma: no cover
    from .controllers import Controller
    from .health import HealthCheck

__all__ = ["ControlContext", "ControlDaemon", "TickRecord"]


@dataclass
class ControlContext:
    """Everything one tick's checks and controllers get to see."""

    daemon: "ControlDaemon"
    window: MetricsWindow
    health: dict[str, Health] = field(default_factory=dict)

    @property
    def system(self):
        return self.daemon.system

    @property
    def runtime(self):
        return self.daemon.system.runtime

    @property
    def devices(self) -> dict:
        return self.daemon.system.devices

    @property
    def env(self):
        return self.daemon.env

    @property
    def now(self) -> int:
        return self.daemon.env.now

    @property
    def rng(self):
        return self.daemon.rng

    def worst(self) -> str:
        """Highest severity across this tick's verdicts."""
        if not self.health:
            return "ok"
        return max(self.health.values(), key=lambda h: h.severity).level


@dataclass(frozen=True)
class TickRecord:
    """One row of the daemon's history: verdicts + actions of a tick."""

    tick: int
    t_ns: int
    levels: dict[str, str]
    actions: int
    suppressed: int


def default_checks() -> list:
    return [WorkerLiveness(), DeviceStall(), QueueSaturation(), SloBurn()]


def default_controllers() -> list:
    from .controllers import SelfHealController

    return [SelfHealController()]


class ControlDaemon:
    """Periodic closed-loop controller over one :class:`LabStorSystem`.

    Parameters
    ----------
    system:
        The deployment to steer (anything with ``env``/``runtime``/
        ``devices`` — a :class:`~repro.system.LabStorSystem` or a cluster
        :class:`~repro.cluster.node.Node`).
    interval_ns:
        Control period in virtual nanoseconds.
    checks / controllers:
        Health checks and controllers, in evaluation order.  Default:
        the four stock checks and the self-healing controller.
    registry:
        Metrics registry to window.  Defaults to the system's installed
        telemetry registry; required explicitly when telemetry is off.
    rng:
        Seeded stream for control randomness.  Defaults to the system's
        ``"ctl"`` stream (cluster Nodes don't own an RngRegistry — pass
        the fabric's stream explicitly there).
    actuators:
        Pre-configured :class:`Actuators` (hysteresis bounds, bound
        admission/retry policies).  A default one is built otherwise.
    """

    def __init__(self, system, *, interval_ns: int,
                 checks: Optional[list] = None,
                 controllers: Optional[list] = None,
                 registry=None, rng=None,
                 actuators: Optional[Actuators] = None,
                 history_limit: int = 4096) -> None:
        if interval_ns <= 0:
            raise LabStorError(
                f"control interval must be positive, got {interval_ns}")
        self.system = system
        self.env = system.env
        self.interval_ns = int(interval_ns)
        if registry is None:
            telemetry = getattr(system, "telemetry", None)
            if telemetry is None:
                raise LabStorError(
                    "ControlDaemon needs a MetricsRegistry: enable telemetry "
                    "on the system or pass registry= explicitly")
            registry = telemetry.registry
        self.view = MetricsView(registry)
        if rng is None:
            rngs = getattr(system, "rngs", None)
            if rngs is None:
                raise LabStorError(
                    "ControlDaemon needs an RNG: the system has no RngRegistry "
                    "(cluster Node?) — pass rng= explicitly")
            rng = rngs.stream("ctl")
        self.rng = rng
        self.checks: list["HealthCheck"] = (
            list(checks) if checks is not None else default_checks())
        self.controllers: list["Controller"] = (
            list(controllers) if controllers is not None else default_controllers())
        self.actuators = actuators if actuators is not None else Actuators(system)
        self.history: list[TickRecord] = []
        self.history_limit = history_limit
        self.ticks = 0
        self._stopped = False
        self._last_health: dict[str, Health] = {}
        self._proc = self.env.process(self._loop(), name="ctl.daemon",
                                      daemon=True)

    # ------------------------------------------------------------------
    @property
    def actions_taken(self) -> int:
        return self.actuators.actions_taken

    @property
    def last_health(self) -> dict[str, Health]:
        return self._last_health

    def stop(self) -> None:
        """Stop ticking (takes effect before the next tick fires)."""
        self._stopped = True

    # ------------------------------------------------------------------
    def tick(self) -> TickRecord:
        """Run one control cycle now (the loop calls this; tests may too)."""
        self.ticks += 1
        window = self.view.advance(self.env.now)
        ctx = ControlContext(daemon=self, window=window)
        for check in self.checks:
            ctx.health[check.name] = check.evaluate(ctx)
        self._last_health = ctx.health
        before_actions = self.actuators.actions_taken
        before_supp = self.actuators.suppressed
        self.actuators.begin_tick(self.ticks)
        for controller in self.controllers:
            controller.actuate(ctx, self.actuators)
        record = TickRecord(
            tick=self.ticks, t_ns=self.env.now,
            levels={name: h.level for name, h in ctx.health.items()},
            actions=self.actuators.actions_taken - before_actions,
            suppressed=self.actuators.suppressed - before_supp,
        )
        self.history.append(record)
        if len(self.history) > self.history_limit:
            del self.history[:len(self.history) - self.history_limit]
        return record

    def _loop(self):
        while not self._stopped:
            yield self.env.timeout(self.interval_ns)
            if self._stopped:
                return
            self.tick()

    def __repr__(self) -> str:
        return (f"<ControlDaemon interval={self.interval_ns}ns "
                f"ticks={self.ticks} actions={self.actions_taken}>")
