"""Closed-loop control plane: health checks, controllers, actuator seams.

ROADMAP item 5: generalize the orchestrator's dynamic CPU allocation
(E3) into a daemon that watches live :mod:`repro.obs` metrics and
retunes the running system — and heals it under :mod:`repro.faults`
chaos.  The loop, every ``interval_ns`` of virtual time:

1. **sample** — :class:`MetricsView` closes a read-only window over the
   deployment's :class:`~repro.obs.metrics.MetricsRegistry` (counter
   deltas, per-window histogram quantiles, gauges);
2. **check** — pluggable :class:`HealthCheck`\\ s (worker liveness,
   device stall, queue saturation, SLO burn) produce ok/warn/crit
   verdicts;
3. **actuate** — typed :class:`Controller`\\ s drive the declared
   :class:`Actuators` seams (worker counts, batch plug window, cache
   size, admission limits and per-tenant quotas, retry budgets, runtime
   restart), hysteresis-gated against flapping.

Determinism rules for adaptive policies: controllers draw randomness
only from the daemon's seeded ``"ctl"`` RNG stream and touch the system
only through the actuator seams; the ``"control"`` scenario of
``python -m repro.sim.check`` holds the whole loop to byte-identical
replay.  CLI: ``python -m repro.ctl.report``.  Experiment: E15
(``repro.experiments.control_plane``, controller vs static-best vs
oracle on a shifting mix).
"""

from .actuators import ActuatorAction, Actuators
from .controllers import (
    AdmissionController,
    BatchTuneController,
    CacheSizeController,
    Controller,
    RetryTuneController,
    SelfHealController,
    WorkerScaleController,
)
from .daemon import ControlContext, ControlDaemon, TickRecord
from .health import (
    DeviceStall,
    Health,
    HealthCheck,
    QueueSaturation,
    SloBurn,
    WorkerLiveness,
)
from .presets import build_chaos_control, chaos_plan, chaos_tenant
from .view import MetricsView, MetricsWindow

__all__ = [
    "MetricsView",
    "MetricsWindow",
    "Health",
    "HealthCheck",
    "WorkerLiveness",
    "DeviceStall",
    "QueueSaturation",
    "SloBurn",
    "ActuatorAction",
    "Actuators",
    "Controller",
    "SelfHealController",
    "AdmissionController",
    "WorkerScaleController",
    "RetryTuneController",
    "BatchTuneController",
    "CacheSizeController",
    "ControlContext",
    "ControlDaemon",
    "TickRecord",
    "build_chaos_control",
    "chaos_plan",
    "chaos_tenant",
]
