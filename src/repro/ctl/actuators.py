"""Typed actuator seams: every way the control daemon may touch the system.

Controllers never reach into the deployment directly — they go through
one :class:`Actuators` instance, which (a) knows the declared seams and
nothing else, (b) logs every change as an :class:`ActuatorAction`, and
(c) enforces **hysteresis**: a knob may change at most once per
``cooldown_ticks`` control ticks, and a tick may carry at most
``max_actions_per_tick`` non-urgent changes.  Oscillating controllers
therefore cannot flap the system faster than the cooldown (the
anti-flapping property test in ``tests/test_ctl.py`` pins this).
Self-healing actions (runtime restart, worker respawn) pass
``urgent=True`` and bypass both bounds — a healer must never queue
behind a tuning budget.

Seams (all no-ops when the new value equals the current one):

======================  ====================================================
``set_worker_target``   spawn/retire workers via the WorkOrchestrator
``heal_workers``        respawn crashed workers (``auto_respawn`` off)
``restart_runtime``     bring a power-cut Runtime back (urgent, idempotent)
``rebalance``           force a queue→worker rebalance
``set_batch_params``    BatchSchedMod plug ``window_ns`` / ``batch_max``
``set_cache_capacity``  LruCacheMod ``capacity_pages``
``set_admission_limit`` engine-wide ``QueueDepthAdmission.max_inflight``
``set_tenant_quota``    per-tenant ``TenantQuotaAdmission`` quota
``set_retry``           bound retry policy's attempts/backoff/timeout
======================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import LabStorError

__all__ = ["ActuatorAction", "Actuators"]


@dataclass(frozen=True)
class ActuatorAction:
    """One applied actuator change (the daemon's audit log entry)."""

    tick: int
    t_ns: int
    knob: str
    old: Any
    new: Any
    reason: str
    urgent: bool = False


class Actuators:
    """The daemon's write surface over one deployment."""

    def __init__(self, system, *, cooldown_ticks: int = 2,
                 max_actions_per_tick: int = 2) -> None:
        if cooldown_ticks < 1:
            raise ValueError(f"cooldown_ticks must be >= 1, got {cooldown_ticks}")
        if max_actions_per_tick < 1:
            raise ValueError(
                f"max_actions_per_tick must be >= 1, got {max_actions_per_tick}")
        self.system = system
        self.cooldown_ticks = cooldown_ticks
        self.max_actions_per_tick = max_actions_per_tick
        self.actions: list[ActuatorAction] = []
        self.suppressed = 0  # changes refused by hysteresis
        self._tick = 0
        self._tick_actions = 0
        self._last_change: dict[str, int] = {}  # knob -> tick of last change
        self._admission = None
        self._retry = None
        self._restarting = None  # live restart process, if any

    # ------------------------------------------------------------------
    @property
    def env(self):
        return self.system.env

    @property
    def runtime(self):
        return self.system.runtime

    def bind_admission(self, policy) -> "Actuators":
        """Attach the admission policy the daemon may retune."""
        self._admission = policy
        return self

    def bind_retry(self, policy) -> "Actuators":
        """Attach the retry policy the daemon may retune."""
        self._retry = policy
        return self

    # ------------------------------------------------------------------
    def begin_tick(self, tick: int) -> None:
        self._tick = tick
        self._tick_actions = 0

    @property
    def actions_taken(self) -> int:
        return len(self.actions)

    def _apply(self, knob: str, old: Any, new: Any, reason: str,
               urgent: bool, fn: Callable[[], None]) -> bool:
        """Hysteresis gate + audit log around one knob change."""
        if new == old:
            return False  # steady state must cost nothing
        if not urgent:
            last = self._last_change.get(knob)
            if last is not None and self._tick - last < self.cooldown_ticks:
                self.suppressed += 1
                return False
            if self._tick_actions >= self.max_actions_per_tick:
                self.suppressed += 1
                return False
            self._tick_actions += 1
        fn()
        self._last_change[knob] = self._tick
        self.actions.append(ActuatorAction(
            tick=self._tick, t_ns=self.env.now, knob=knob,
            old=old, new=new, reason=reason, urgent=urgent,
        ))
        t = self.env.tracer
        if t.enabled:
            t.emit(self.env.now, "ctl.action", knob=knob,
                   old=repr(old), new=repr(new), urgent=urgent)
        return True

    # ------------------------------------------------------------------
    # worker pool / runtime
    # ------------------------------------------------------------------
    def set_worker_target(self, n: int, *, reason: str,
                          urgent: bool = False) -> bool:
        """Scale the worker pool to ``n`` (bounded by the orchestrator's
        min/max); skipped while the Runtime is down."""
        orch = self.runtime.orchestrator
        if orch.paused:
            return False
        n = max(orch.min_workers, min(orch.max_workers, int(n)))
        current = orch.worker_count()

        def scale() -> None:
            while orch.worker_count() < n:
                orch.spawn_worker()
            while orch.worker_count() > n:
                victim = min(orch.workers,
                             key=lambda w: sum(q.est_queued_ns for q in w.queues))
                orch.decommission_worker(victim)
            orch.rebalance()

        return self._apply("workers", current, n, reason, urgent, scale)

    def heal_workers(self, *, reason: str) -> bool:
        """Respawn every crashed-and-unreplaced worker (urgent)."""
        orch = self.runtime.orchestrator
        if orch.paused or not orch.dead_workers:
            return False
        dead = orch.dead_workers
        current = orch.worker_count()

        def heal() -> None:
            for _ in range(dead):
                orch.heal_worker()

        return self._apply("workers", current, current + dead, reason,
                           True, heal)

    def restart_runtime(self, *, reason: str) -> bool:
        """Bring a crashed Runtime back (urgent, idempotent: a restart
        already in flight is never doubled)."""
        runtime = self.runtime
        if runtime.online:
            return False
        if self._restarting is not None and self._restarting.is_alive:
            return False

        def go() -> None:
            self._restarting = self.env.process(
                runtime.restart(), name="ctl.restart")

        return self._apply("runtime", "offline", "restarting", reason,
                           True, go)

    def rebalance(self, *, reason: str, urgent: bool = False) -> bool:
        orch = self.runtime.orchestrator
        if orch.paused:
            return False
        before = orch.rebalances
        return self._apply("rebalance", before, before + 1, reason, urgent,
                           orch.rebalance)

    # ------------------------------------------------------------------
    # LabMod knobs
    # ------------------------------------------------------------------
    def _mods_of(self, cls) -> list:
        registry = self.runtime.registry
        return [m for m in (registry.get(u) for u in registry.uuids())
                if isinstance(m, cls)]

    def batch_mods(self) -> list:
        from ..mods.sched_batch import BatchSchedMod

        return self._mods_of(BatchSchedMod)

    def cache_mods(self) -> list:
        from ..mods.cache_lru import LruCacheMod

        return self._mods_of(LruCacheMod)

    def set_batch_params(self, *, window_ns: int | None = None,
                         batch_max: int | None = None, reason: str,
                         urgent: bool = False) -> bool:
        """Retune every mounted BatchSchedMod's plug window / merge cap
        (E12: the optimum is workload-dependent)."""
        if window_ns is None and batch_max is None:
            raise LabStorError("set_batch_params: nothing to set")
        changed = False
        for mod in self.batch_mods():
            old = (mod.window_ns, mod.batch_max)
            new = (window_ns if window_ns is not None else mod.window_ns,
                   max(1, batch_max) if batch_max is not None else mod.batch_max)

            def set_it(mod=mod, new=new) -> None:
                mod.window_ns, mod.batch_max = new

            changed |= self._apply(f"batch:{mod.uuid}", old, new, reason,
                                   urgent, set_it)
        return changed

    def set_cache_capacity(self, pages: int, *, reason: str,
                           urgent: bool = False) -> bool:
        """Resize every mounted LRU cache (pages evict lazily on the next
        insert, so shrinking is safe mid-run)."""
        if pages < 1:
            raise LabStorError(f"cache capacity must be >= 1 page, got {pages}")
        changed = False
        for mod in self.cache_mods():
            def set_it(mod=mod) -> None:
                mod.capacity_pages = pages

            changed |= self._apply(f"cache:{mod.uuid}", mod.capacity_pages,
                                   pages, reason, urgent, set_it)
        return changed

    # ------------------------------------------------------------------
    # admission / retry policies
    # ------------------------------------------------------------------
    def set_admission_limit(self, n: int, *, reason: str,
                            urgent: bool = False) -> bool:
        policy = self._admission
        if policy is None:
            raise LabStorError(
                "no admission policy bound; call bind_admission() first")
        n = max(1, int(n))

        def set_it() -> None:
            policy.max_inflight = n

        return self._apply("admission", policy.max_inflight, n, reason,
                           urgent, set_it)

    def set_tenant_quota(self, tenant: str, quota: int, *, reason: str,
                         urgent: bool = False) -> bool:
        policy = self._admission
        if policy is None or not hasattr(policy, "set_quota"):
            raise LabStorError(
                "no per-tenant admission policy bound; bind a "
                "TenantQuotaAdmission first")
        quota = max(1, int(quota))
        old = policy.quota(tenant)
        return self._apply(f"quota:{tenant}", old, quota, reason, urgent,
                           lambda: policy.set_quota(tenant, quota))

    def set_retry(self, *, max_attempts: int | None = None,
                  max_backoff_ns: int | None = None,
                  timeout_ns: Optional[int] = None,
                  reason: str, urgent: bool = False) -> bool:
        policy = self._retry
        if policy is None:
            raise LabStorError("no retry policy bound; call bind_retry() first")
        old = (policy.max_attempts, policy.max_backoff_ns, policy.timeout_ns)
        new = (max_attempts if max_attempts is not None else old[0],
               max_backoff_ns if max_backoff_ns is not None else old[1],
               timeout_ns if timeout_ns is not None else old[2])

        def set_it() -> None:
            policy.max_attempts, policy.max_backoff_ns, policy.timeout_ns = new

        return self._apply("retry", old, new, reason, urgent, set_it)

    def __repr__(self) -> str:
        return (f"<Actuators actions={len(self.actions)} "
                f"suppressed={self.suppressed}>")
