"""Pluggable health checks evaluated every control tick.

A :class:`HealthCheck` maps one failure mode onto a three-level
:class:`Health` verdict (``ok`` / ``warn`` / ``crit``) from the tick's
:class:`~repro.ctl.view.MetricsWindow` plus read-only system state.
Checks never actuate — controllers read the verdicts and decide
(:mod:`repro.ctl.controllers`).

Shipped checks:

- :class:`WorkerLiveness` — Runtime offline, or the worker pool below its
  configured size (crashed workers awaiting a healer when the
  orchestrator's ``auto_respawn`` reflex is off);
- :class:`DeviceStall` — a device frozen by an injected controller stall,
  or with queued commands and zero completions in the window;
- :class:`QueueSaturation` — aggregate SQ backlog past warn/crit depths;
- :class:`SloBurn` — fraction of this window's tenant ops that blew
  their SLO (violations and errors over completions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .daemon import ControlContext

__all__ = ["Health", "HealthCheck", "WorkerLiveness", "DeviceStall",
           "QueueSaturation", "SloBurn", "LEVELS"]

#: severity order: index compares (ok < warn < crit)
LEVELS = ("ok", "warn", "crit")


@dataclass(frozen=True)
class Health:
    """One check's verdict for one tick."""

    level: str
    reason: str = ""
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(f"unknown health level {self.level!r}; "
                             f"expected one of {LEVELS}")

    @property
    def ok(self) -> bool:
        return self.level == "ok"

    @property
    def crit(self) -> bool:
        return self.level == "crit"

    @property
    def severity(self) -> int:
        return LEVELS.index(self.level)


def ok(reason: str = "", **data: Any) -> Health:
    return Health("ok", reason, data)


def warn(reason: str, **data: Any) -> Health:
    return Health("warn", reason, data)


def crit(reason: str, **data: Any) -> Health:
    return Health("crit", reason, data)


class HealthCheck:
    """Base class: subclasses set :attr:`name` and implement
    :meth:`evaluate`."""

    name = "abstract"

    def evaluate(self, ctx: "ControlContext") -> Health:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class WorkerLiveness(HealthCheck):
    """Is the Runtime up, with no crashed-and-unreplaced workers?

    Goes crit on an offline Runtime, an empty pool, or any worker the
    orchestrator counts as dead (``auto_respawn`` off).  A *deliberate*
    scale-in by the worker-scale controller is healthy — only pass
    ``target_workers`` to additionally treat any pool below that floor
    as a failure.
    """

    name = "worker_liveness"

    def __init__(self, target_workers: int | None = None) -> None:
        self.target_workers = target_workers

    def evaluate(self, ctx: "ControlContext") -> Health:
        runtime = ctx.runtime
        if not runtime.online:
            return crit("runtime offline", crashes=runtime.crashes)
        orch = runtime.orchestrator
        have = orch.worker_count()
        if have == 0:
            return crit("no live workers")
        if orch.dead_workers:
            return crit(f"{orch.dead_workers} worker(s) missing",
                        have=have, missing=orch.dead_workers)
        if self.target_workers is not None and have < self.target_workers:
            return crit(f"pool below target ({have}/{self.target_workers})",
                        have=have, target=self.target_workers)
        return ok(have=have)


class DeviceStall(HealthCheck):
    """A device that stopped making progress.

    Two independent signals: the fault engine's injected stalls
    (:meth:`~repro.faults.engine.FaultEngine.stalled_devices`, read-only)
    and, from the metrics alone, a device with queued commands but zero
    completions this window.
    """

    name = "device_stall"

    def evaluate(self, ctx: "ControlContext") -> Health:
        stalled = []
        faults = getattr(ctx.system, "faults", None)
        if faults is not None:
            stalled.extend(faults.stalled_devices(ctx.now))
        for name, dev in ctx.devices.items():
            if name in stalled:
                continue
            backlog = sum(dev.queue_depth(h) for h in range(dev.nqueues))
            if backlog and ctx.window.delta_sum("device_ops_total",
                                                device=name) == 0:
                stalled.append(name)
        if stalled:
            return crit(f"stalled device(s): {', '.join(sorted(stalled))}",
                        devices=sorted(stalled))
        return ok()


class QueueSaturation(HealthCheck):
    """Aggregate submission-queue backlog across the Runtime's queues."""

    name = "queue_saturation"

    def __init__(self, warn_depth: int = 32, crit_depth: int = 128) -> None:
        if not 0 < warn_depth <= crit_depth:
            raise ValueError(f"need 0 < warn_depth <= crit_depth, got "
                             f"{warn_depth}/{crit_depth}")
        self.warn_depth = warn_depth
        self.crit_depth = crit_depth

    def evaluate(self, ctx: "ControlContext") -> Health:
        backlog = sum(qp.sq_depth for qp in ctx.runtime.orchestrator.queues)
        if backlog >= self.crit_depth:
            return crit(f"backlog {backlog} >= {self.crit_depth}", backlog=backlog)
        if backlog >= self.warn_depth:
            return warn(f"backlog {backlog} >= {self.warn_depth}", backlog=backlog)
        return ok(backlog=backlog)


class SloBurn(HealthCheck):
    """Window SLO-burn rate over the tenant accounting counters.

    burn = (slo violations + op errors) / completions, all deltas over
    this window only — the :meth:`Histogram.fork_window` seam keeps the
    latency quantiles windowed the same way (exposed in ``data`` as
    ``p99_ns`` when any tenant latency landed this interval).
    """

    name = "slo_burn"

    def __init__(self, warn_burn: float = 0.05, crit_burn: float = 0.25,
                 tenant: str | None = None) -> None:
        if not 0.0 <= warn_burn <= crit_burn <= 1.0:
            raise ValueError(f"need 0 <= warn <= crit <= 1, got "
                             f"{warn_burn}/{crit_burn}")
        self.warn_burn = warn_burn
        self.crit_burn = crit_burn
        self.tenant = tenant

    def evaluate(self, ctx: "ControlContext") -> Health:
        w = ctx.window
        labels = {} if self.tenant is None else {"tenant": self.tenant}
        done = w.delta_sum("tenant_ops_total", **labels)
        bad = (w.delta_sum("tenant_slo_violations_total", **labels)
               + w.delta_sum("tenant_op_errors_total", **labels))
        rejected = w.delta_sum("tenant_rejected_total", **labels)
        data: dict[str, Any] = {"completed": done, "bad": bad,
                                "rejected": rejected}
        if self.tenant is None:
            p99 = w.quantile("tenant_latency_ns", 0.99)
        else:
            p99 = w.quantile("tenant_latency_ns", 0.99, tenant=self.tenant)
        if p99 is not None:
            data["p99_ns"] = p99
        # latency headroom: window p99 against the tightest SLO deadline
        # among tenants that actually moved this window (stale tenants
        # from an earlier phase keep their deadline gauge but see no
        # traffic, so they must not pin the margin)
        active = {lbl.get("tenant")
                  for metric in ("tenant_ops_total", "tenant_rejected_total")
                  for lbl, v in w.delta_values(metric, **labels) if v}
        deadlines = [v for lbl, v in w.gauge_values("tenant_slo_deadline_ns")
                     if lbl.get("tenant") in active and v > 0]
        if deadlines:
            data["deadline_ns"] = min(deadlines)
            if p99 is not None:
                data["margin"] = p99 / data["deadline_ns"]
        if done == 0:
            # no completions: only alarming if ops are actually in flight
            inflight = w.gauge("traffic_inflight", default=0.0)
            if inflight:
                return crit("in-flight ops but zero completions",
                            burn=1.0, **data)
            return ok(burn=0.0, **data)
        burn = bad / done
        data["burn"] = burn
        if burn >= self.crit_burn:
            return crit(f"burn {burn:.0%} >= {self.crit_burn:.0%}", **data)
        if burn >= self.warn_burn:
            return warn(f"burn {burn:.0%} >= {self.warn_burn:.0%}", **data)
        return ok(**data)
