"""Control-plane report CLI: run the chaos scenario, show the daemon at work.

::

    python -m repro.ctl.report                       # controlled run
    python -m repro.ctl.report --no-daemon           # uncontrolled baseline
    python -m repro.ctl.report --seed 3 --json -     # machine-readable

Rides the shared :mod:`repro.cli` output seam (``--json`` / ``--csv`` /
``--out``), like the obs/faults/traffic report CLIs.
"""

from __future__ import annotations

import argparse
from typing import Any, Sequence

from ..cli import EXIT_OK, Report, add_output_flags, emit
from ..units import msec, usec
from .presets import build_chaos_control

__all__ = ["main", "build_report"]


def _fmt_levels(levels: dict[str, str]) -> str:
    """Compact one tick's verdicts: checks at ok collapse to '.'"""
    marks = {"ok": ".", "warn": "w", "crit": "C"}
    return "".join(marks[levels[name]] for name in sorted(levels))


def build_report(args: argparse.Namespace) -> Report:
    system, engine, daemon = build_chaos_control(
        seed=args.seed,
        duration_ns=int(args.duration_ms * 1e6),
        interval_ns=int(args.interval_us * 1e3),
        with_daemon=not args.no_daemon,
        load=args.load,
    )
    summary = engine.run()
    tenant = summary["tenants"]["kv"]

    lines = [
        f"control-plane chaos run  seed={args.seed}  "
        f"daemon={'off' if args.no_daemon else 'on'}",
        f"  duration {args.duration_ms:g}ms virtual, "
        f"load {args.load:g}x (~{summary['offered_ops_s']:,.0f} ops/s offered)",
        "",
        f"  goodput   {summary['goodput_ops_s']:>12,.0f} ops/s "
        f"({tenant['good']}/{tenant['completed']} in-SLO)",
        f"  errors    {tenant['errors']:>12,} "
        f"  violations {tenant['slo_violations']:,} "
        f"  rejected {tenant['rejected']:,}",
        f"  runtime   crashes={system.runtime.crashes} "
        f"workers={system.runtime.orchestrator.worker_count()} "
        f"online={system.runtime.online}",
    ]
    csv_headers: Sequence[str] = ("tick", "t_ms", "worst", "levels",
                                  "actions", "suppressed")
    csv_rows: list[Sequence[Any]] = []
    data: dict[str, Any] = {
        "seed": args.seed,
        "daemon": not args.no_daemon,
        "summary": summary,
    }
    if daemon is not None:
        lines += [
            "",
            f"  daemon    {daemon.ticks} ticks @ {args.interval_us:g}us, "
            f"{daemon.actions_taken} actions, "
            f"{daemon.actuators.suppressed} suppressed by hysteresis",
            "",
            f"  {'tick':>5} {'t_ms':>7} {'worst':>5}  "
            f"{'checks':<8} {'actions':>7}",
        ]
        interesting = 0
        for rec in daemon.history:
            worst = max(rec.levels.values(),
                        key=lambda lv: ("ok", "warn", "crit").index(lv))
            csv_rows.append((rec.tick, rec.t_ns / 1e6, worst,
                             _fmt_levels(rec.levels), rec.actions,
                             rec.suppressed))
            if worst != "ok" or rec.actions:
                interesting += 1
                if interesting <= args.max_rows:
                    lines.append(
                        f"  {rec.tick:>5} {rec.t_ns / 1e6:>7.2f} {worst:>5}  "
                        f"{_fmt_levels(rec.levels):<8} {rec.actions:>7}")
        if interesting > args.max_rows:
            lines.append(f"  ... {interesting - args.max_rows} more "
                         f"non-green ticks (--csv for all)")
        lines.append("")
        lines.append("  actions:")
        for a in daemon.actuators.actions:
            lines.append(
                f"    t={a.t_ns / 1e6:7.2f}ms  {a.knob:<12} "
                f"{a.old!r} -> {a.new!r}  [{a.reason}]"
                f"{'  (urgent)' if a.urgent else ''}")
        data["ticks"] = daemon.ticks
        data["actions"] = [
            {"tick": a.tick, "t_ns": a.t_ns, "knob": a.knob,
             "old": repr(a.old), "new": repr(a.new), "reason": a.reason,
             "urgent": a.urgent}
            for a in daemon.actuators.actions
        ]
        data["suppressed"] = daemon.actuators.suppressed
    return Report(text="\n".join(lines), data=data,
                  csv_headers=csv_headers, csv_rows=csv_rows)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ctl.report",
        description="Run the canonical chaos-control scenario and report "
                    "the daemon's health verdicts and actuator actions.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--load", type=float, default=1.0,
                        help="offered-load multiplier (default 1.0)")
    parser.add_argument("--duration-ms", type=float, default=msec(20) / 1e6,
                        help="virtual run length in ms (default 20)")
    parser.add_argument("--interval-us", type=float, default=usec(500) / 1e3,
                        help="control period in us (default 500)")
    parser.add_argument("--no-daemon", action="store_true",
                        help="uncontrolled baseline (chaos, no healer)")
    parser.add_argument("--max-rows", type=int, default=24,
                        help="non-green ticks to print (default 24)")
    add_output_flags(parser)
    args = parser.parse_args(argv)
    return emit(args, build_report(args))


if __name__ == "__main__":
    raise SystemExit(main())
