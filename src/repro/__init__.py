"""repro — a Python reproduction of LabStor (SC 2022).

LabStor is a modular, extensible platform for developing high-performance,
customized I/O stacks in userspace.  This package rebuilds the full
platform — LabMods, LabStacks, the LabStor Runtime, driver/kernel
substrates, and every workload from the paper's evaluation — on top of a
deterministic discrete-event simulation with nanosecond virtual time and
real (byte-accurate) storage backing.

Quickstart::

    from repro.core import LabStorSystem, StackSpec

See ``examples/quickstart.py`` and DESIGN.md for the full tour.
"""

from .errors import ReproError
from .units import GiB, KiB, MiB, msec, sec, usec

__version__ = "1.0.0"

__all__ = ["ReproError", "KiB", "MiB", "GiB", "usec", "msec", "sec", "__version__"]
