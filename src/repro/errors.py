"""Exception hierarchy shared by every repro subsystem."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Internal inconsistency in the discrete-event simulation kernel."""


class SanitizerError(SimulationError):
    """An invariant checked by :mod:`repro.sim.sanitizer` was violated."""


class DeviceError(ReproError):
    """Invalid operation against a simulated storage device."""

    def __init__(self, message: str, *, device: str | None = None) -> None:
        super().__init__(message if device is None else f"{device}: {message}")
        self.device = device


class OutOfSpaceError(DeviceError):
    """A block/byte allocation could not be satisfied."""


class KernelError(ReproError):
    """Errors raised by the simulated Linux kernel substrate."""


class FsError(KernelError):
    """Filesystem-level failure; carries a POSIX-style errno name."""

    def __init__(self, errno_name: str, message: str) -> None:
        super().__init__(f"[{errno_name}] {message}")
        self.errno_name = errno_name


class PermissionDenied(FsError):
    def __init__(self, message: str = "permission denied") -> None:
        super().__init__("EACCES", message)


class IpcError(ReproError):
    """Queue-pair / shared-memory violations (bad grant, full queue, ...)."""


class ShmAccessError(IpcError):
    """A process touched a shared-memory region it was never granted."""


class LabStorError(ReproError):
    """Errors raised by the LabStor core (modules, stacks, runtime)."""


class ModuleNotFound(LabStorError):
    """A LabMod UUID was not present in the Module Registry."""


class StackValidationError(LabStorError):
    """A LabStack specification failed validation at mount time."""


class UpgradeError(LabStorError):
    """A live-upgrade protocol step failed."""


class RuntimeCrashed(LabStorError):
    """The LabStor Runtime is offline and did not restart within the wait window."""
