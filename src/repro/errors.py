"""Exception hierarchy shared by every repro subsystem."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Internal inconsistency in the discrete-event simulation kernel."""


class SanitizerError(SimulationError):
    """An invariant checked by :mod:`repro.sim.sanitizer` was violated."""


class DeviceError(ReproError):
    """Invalid operation against a simulated storage device."""

    def __init__(self, message: str, *, device: str | None = None) -> None:
        super().__init__(message if device is None else f"{device}: {message}")
        self.device = device


class OutOfSpaceError(DeviceError):
    """A block/byte allocation could not be satisfied."""


class MediaError(DeviceError):
    """An I/O command failed at the media (the simulated EIO).

    Raised into the submitter by failing the request's completion event;
    produced by :mod:`repro.faults` media-error and torn-write injectors.
    """


class KernelError(ReproError):
    """Errors raised by the simulated Linux kernel substrate."""


class FsError(KernelError):
    """Filesystem-level failure; carries a POSIX-style errno name."""

    def __init__(self, errno_name: str, message: str) -> None:
        super().__init__(f"[{errno_name}] {message}")
        self.errno_name = errno_name


class PermissionDenied(FsError):
    def __init__(self, message: str = "permission denied") -> None:
        super().__init__("EACCES", message)


class IpcError(ReproError):
    """Queue-pair / shared-memory violations (bad grant, full queue, ...)."""


class ShmAccessError(IpcError):
    """A process touched a shared-memory region it was never granted."""


class QueueFull(IpcError):
    """A submission was rejected because the SQ exerted backpressure."""


class LabStorError(ReproError):
    """Errors raised by the LabStor core (modules, stacks, runtime)."""


class ModuleNotFound(LabStorError):
    """A LabMod UUID was not present in the Module Registry."""


class StackValidationError(LabStorError):
    """A LabStack specification failed validation at mount time."""


class UpgradeError(LabStorError):
    """A live-upgrade protocol step failed."""


class RuntimeCrashed(LabStorError):
    """The LabStor Runtime is offline and did not restart within the wait window."""


class TimeoutError(LabStorError):  # noqa: A001 - deliberate, scoped to repro.*
    """A request did not complete within its per-op deadline.

    The client fails the request's pending :class:`~repro.sim.Event` with
    this error instead of letting the simulation hang; a late completion
    for the timed-out attempt is dropped by the completion poller.
    """


class WorkerCrashed(LabStorError):
    """The worker executing a request was killed mid-flight.

    The dying worker converts the interrupt into an error completion so
    queue-pair conservation stays balanced; clients may retry (LabFS
    block writes are idempotent at a given offset).
    """


class RetriesExhausted(LabStorError):
    """A :class:`repro.faults.RetryPolicy` gave up after its attempt budget."""


class ConsistencyError(LabStorError):
    """Crash-consistency check failed: recovered state is not a
    prefix-consistent view of the acknowledged operations."""


class FabricError(LabStorError):
    """No usable network path between two cluster nodes (missing link,
    unknown node, or a route used before the cluster was built)."""


class QuorumError(LabStorError):
    """A replicated KVS operation could not reach its ack quorum.

    Raised by :class:`repro.cluster.ShardedKVS` once enough replicas have
    failed that the required quorum is unreachable; carries the last
    replica error as ``__cause__``-style context in the message."""


class SnapshotError(LabStorError):
    """Snapshot capture or restore failed (unpicklable module state, a
    pause point in the past, or a program that finished before it)."""


class ReplayDivergence(SnapshotError):
    """Replay-to-point restore reached the snapshot timestamp with state
    that does not match the capture — the program is not deterministic
    (or global counters were not reset before the replay)."""
