"""Opt-in invariant checking and determinism auditing for the simulator.

The sanitizer has three layers:

1. **event-lifecycle auditing** — leaked never-triggered events that still
   have a live non-daemon process waiting on them, failed-but-never-defused
   events silently dropped at teardown, and double resume of a dead process;
2. **conservation invariants** — queue-pair counters (``inflight >= 0``,
   ``submitted_total == completed_total + inflight``, ``est_queued_ns``
   non-negative and zero whenever the SQ is empty), store capacity/service
   discipline, worker in-flight accounting, orchestrator coverage
   (every registered queue assigned to a live worker after each rebalance,
   no stale worker ids in the busy-time bookkeeping), and batch
   conservation — queue-pair batch counters stay consistent with the
   per-op totals, and every ``san.batch`` record (emitted when a merged
   run settles) shows N ops ⇒ N outcomes delivered, none twice;
3. **a determinism checker** — see :mod:`repro.sim.check`, which runs a
   scenario twice under the same seed and compares trace-stream hashes.

Hooks ride the :class:`~repro.sim.trace.Tracer` pub/sub seam: instrumented
components emit ``san.*`` trace events only when ``tracer.audit`` is set,
so with the sanitizer disabled each emission site costs a single branch.

Enable it either programmatically::

    san = Sanitizer().install(env)      # strict: violations raise
    ...
    report = san.finish()               # teardown audit

or for every :class:`~repro.system.LabStorSystem` / experiment driver by
setting ``REPRO_SANITIZE=1`` in the process environment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..config import SANITIZE_ENV_VAR
from ..config import current as _config
from ..errors import SanitizerError
from .core import Environment, Process
from .trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from .core import Event

__all__ = ["Sanitizer", "SanitizerError", "AUDIT_ENV_VAR", "sanitize_requested", "maybe_attach"]

#: set to a non-empty value (other than "0") to attach a strict sanitizer
#: to every system/experiment environment built by the harnesses
#: (legacy alias; the parse itself lives in :mod:`repro.config`)
AUDIT_ENV_VAR = SANITIZE_ENV_VAR


def sanitize_requested() -> bool:
    return _config().sanitize


def maybe_attach(env: Environment) -> "Sanitizer | None":
    """Attach a strict sanitizer to ``env`` iff ``REPRO_SANITIZE`` is set."""
    if not sanitize_requested():
        return None
    return Sanitizer().install(env)


class Sanitizer:
    """Invariant checker wired into a tracer as a ``san.*`` event sink.

    ``strict=True`` (the default) raises :class:`SanitizerError` at the
    violating emission; ``strict=False`` collects violations for a report
    (the mode the CLI checker uses so one run surfaces every problem).
    """

    def __init__(self, strict: bool = True, track_events: bool = True) -> None:
        self.strict = strict
        self.track_events = track_events
        self.env: Environment | None = None
        self.violations: list[str] = []
        self.checks: dict[str, int] = {}
        self._events: dict[int, Any] = {}  # id(event) -> event (strong refs)
        self._finished = False

    # ------------------------------------------------------------------
    def install(self, env: Environment) -> "Sanitizer":
        self.env = env
        env.tracer.audit = True
        env.tracer.add_sink(self)
        return self

    def _violate(self, msg: str) -> None:
        self.violations.append(msg)
        if self.strict:
            raise SanitizerError(msg)

    def _count(self, kind: str) -> None:
        self.checks[kind] = self.checks.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # sink entry point
    # ------------------------------------------------------------------
    def __call__(self, ev: TraceEvent) -> None:
        cat = ev.category
        if cat == "san.ev_new":
            if self.track_events:
                e = ev.fields["event"]
                self._events[id(e)] = e
        elif cat == "san.resume":
            self._check_resume(ev.fields["process"], ev.time_ns)
        elif cat == "san.qp":
            self._check_qp(ev.fields["qp"], ev.time_ns)
        elif cat == "san.store":
            self._check_store(ev.fields["store"], ev.time_ns)
        elif cat == "san.worker":
            self._check_worker(ev.fields["worker"], ev.time_ns)
        elif cat == "san.rebalance":
            self._check_orchestrator(ev.fields["orch"], ev.time_ns)
        elif cat == "san.batch":
            self._check_batch(ev.fields, ev.time_ns)

    # ------------------------------------------------------------------
    # per-category invariant checks
    # ------------------------------------------------------------------
    def _check_resume(self, proc: Process, now: int) -> None:
        self._count("resume")
        if proc._triggered:
            self._violate(
                f"t={now}: double resume of dead process {proc.name!r}"
            )

    def _check_qp(self, qp: Any, now: int) -> None:
        self._count("qp")
        # owner_tag names the responsible endpoint ("client1001",
        # "fabric:n0->n1"), so a cross-node conservation failure says
        # which node's QP leaked instead of a bare process-global qid
        tag = f"t={now}: {getattr(qp, 'owner_tag', None) or f'QP {qp.qid}'}"
        if qp.inflight < 0:
            self._violate(f"{tag} inflight went negative ({qp.inflight})")
        if qp.submitted_total != qp.completed_total + qp.inflight:
            self._violate(
                f"{tag} conservation broken: submitted={qp.submitted_total} "
                f"!= completed={qp.completed_total} + inflight={qp.inflight}"
            )
        if qp.est_queued_ns < 0:
            self._violate(f"{tag} est_queued_ns went negative ({qp.est_queued_ns})")
        if qp.sq_depth == 0 and not qp.sq._putters and qp.est_queued_ns != 0:
            self._violate(
                f"{tag} est_queued_ns={qp.est_queued_ns} but the SQ is empty"
            )
        # batch conservation: batch_ops_submitted counts at the doorbell,
        # batch_ops_accepted at SQ acceptance — accepted may lag (full
        # ring) but never exceed submitted, and every batch-accepted op is
        # also in the per-op total
        b_doorbells = getattr(qp, "batches_submitted", 0)
        b_ops = getattr(qp, "batch_ops_submitted", 0)
        b_acc = getattr(qp, "batch_ops_accepted", 0)
        if b_doorbells < 0 or b_ops < b_doorbells:
            self._violate(
                f"{tag} batch counters inconsistent: doorbells={b_doorbells} "
                f"> batch_ops={b_ops}"
            )
        if b_acc > b_ops:
            self._violate(
                f"{tag} accepted {b_acc} batch ops but only {b_ops} were submitted"
            )
        if b_acc > qp.submitted_total:
            self._violate(
                f"{tag} batch-accepted ops ({b_acc}) exceed the per-op "
                f"submitted total ({qp.submitted_total}): double accounting"
            )

    def _check_store(self, store: Any, now: int) -> None:
        self._count("store")
        if store.capacity is not None and len(store.items) > store.capacity:
            self._violate(
                f"t={now}: store over capacity ({len(store.items)} > {store.capacity})"
            )
        if store.items and store._getters:
            self._violate(
                f"t={now}: store has {len(store.items)} item(s) while "
                f"{len(store._getters)} getter(s) are blocked"
            )

    def _check_worker(self, worker: Any, now: int) -> None:
        self._count("worker")
        tag = f"t={now}: worker {worker.worker_id}"
        if worker.inflight < 0:
            self._violate(f"{tag} inflight went negative ({worker.inflight})")
        for qid, n in worker._inflight_per_qp.items():
            if n < 0:
                self._violate(f"{tag} per-queue inflight negative for QP {qid} ({n})")
        bp = getattr(worker, "batch_pops", 0)
        bpo = getattr(worker, "batch_pop_ops", 0)
        if bpo < 2 * bp:  # a batch pop by definition drained >= 2 SQEs
            self._violate(
                f"{tag} batch-pop accounting broken: {bp} batch pops but "
                f"only {bpo} ops drained"
            )

    def _check_batch(self, fields: dict, now: int) -> None:
        """A merged run settled: N constituents must yield exactly N
        outcomes, each delivered exactly once (no double accounting)."""
        self._count("batch")
        source = fields.get("source", "?")
        ops = fields.get("ops", 0)
        delivered = fields.get("delivered", 0)
        double = fields.get("double", 0)
        if ops < 1:
            self._violate(f"t={now}: batch from {source} with {ops} ops")
        if delivered != ops:
            self._violate(
                f"t={now}: batch from {source} delivered {delivered}/{ops} outcomes"
            )
        if double:
            self._violate(
                f"t={now}: batch from {source} double-delivered {double} outcome(s)"
            )

    def _check_orchestrator(self, orch: Any, now: int) -> None:
        self._count("rebalance")
        live_ids = {w.worker_id for w in orch.workers}
        stale = set(orch._prev_busy) - live_ids
        if stale:
            self._violate(
                f"t={now}: orchestrator has stale worker ids in _prev_busy: {sorted(stale)}"
            )
        if orch.workers:
            assigned = {qp.qid for w in orch.workers for qp in w.queues}
            orphans = [qp.qid for qp in orch.queues if qp.qid not in assigned]
            if orphans:
                self._violate(
                    f"t={now}: rebalance left queue(s) {orphans} assigned to no live worker"
                )

    # ------------------------------------------------------------------
    # teardown audit
    # ------------------------------------------------------------------
    def finish(self) -> dict[str, Any]:
        """Run the event-lifecycle audit and return a report dict.

        Leak detection (a non-daemon process parked on an event nobody can
        trigger any more) only makes sense once the heap has run dry; with
        events still scheduled, a pending wait is just a pending wait.
        """
        self._finished = True
        heap_live = (
            bool(self.env._heap or self.env._urgent or self.env._due)
            if self.env is not None
            else True
        )
        for e in self._events.values():
            if e._triggered and not e._ok and not e._defused and not e._processed:
                self._violate(
                    f"failed event {e!r} swallowed at teardown: "
                    f"{e._value!r} was never defused or delivered"
                )
            elif not e._triggered and not heap_live:
                for cb in e.callbacks or ():
                    proc = getattr(cb, "__self__", None)
                    if (
                        isinstance(proc, Process)
                        and proc.is_alive
                        and not proc.daemon
                    ):
                        self._violate(
                            f"leaked event {e!r}: process {proc.name!r} "
                            "waits on it forever (heap exhausted)"
                        )
                        break
        return self.report()

    def report(self) -> dict[str, Any]:
        return {
            "violations": list(self.violations),
            "events_tracked": len(self._events),
            "checks": dict(self.checks),
            "finished": self._finished,
        }
