"""Online statistics used by experiments and the Work Orchestrator.

- :class:`OnlineStats`: Welford mean/variance plus min/max.
- :class:`LatencyRecorder`: reservoir of samples with exact percentiles
  (bounded memory via optional reservoir sampling).
- :class:`Histogram`: fixed log-spaced latency histogram (HDR-style).
- :class:`Counter`: monotonically increasing named counters.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["OnlineStats", "LatencyRecorder", "Histogram", "Counter", "percentile"]


def percentile(samples: Iterable[float], p: float) -> float:
    """Exact percentile (linear interpolation); p in [0, 100]."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("percentile of empty sample set")
    return float(np.percentile(arr, p))


class OnlineStats:
    """Welford single-pass mean/variance with min/max tracking."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Chan et al. parallel merge; returns self."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            self.min, self.max = other.min, other.max
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


class LatencyRecorder:
    """Collects latency samples (ns) and reports mean/percentiles.

    With ``reservoir`` set, keeps at most that many samples via reservoir
    sampling (deterministic given the rng), so memory stays bounded on
    million-request runs while percentiles stay unbiased.
    """

    def __init__(self, reservoir: int | None = None, rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        self.stats = OnlineStats()
        self.reservoir = reservoir
        self.name = name
        self._rng = rng or np.random.default_rng(0)
        self._samples: list[float] = []

    def add(self, latency_ns: float) -> None:
        self.stats.add(latency_ns)
        if self.reservoir is None or len(self._samples) < self.reservoir:
            self._samples.append(latency_ns)
        else:
            j = int(self._rng.integers(0, self.stats.n))
            if j < self.reservoir:
                self._samples[j] = latency_ns

    @property
    def count(self) -> int:
        return self.stats.n

    @property
    def mean(self) -> float:
        return self.stats.mean

    def pct(self, p: float) -> float:
        return self.pcts((p,))[0]

    def pcts(self, ps: Iterable[float]) -> list[float]:
        """All requested percentiles from a single sample-array build.

        Million-sample runs pay the list→ndarray conversion once here, not
        once per percentile.
        """
        if not self._samples:
            who = f" (recorder {self.name!r})" if self.name else ""
            raise ValueError(f"percentile of empty sample set{who}")
        arr = np.asarray(self._samples, dtype=np.float64)
        return [float(v) for v in np.percentile(arr, list(ps))]

    @property
    def p50(self) -> float:
        return self.pct(50)

    @property
    def p99(self) -> float:
        return self.pct(99)

    @property
    def p999(self) -> float:
        return self.pct(99.9)

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "p999": 0.0,
                    "min": 0.0, "max": 0.0}
        p50, p99, p999 = self.pcts((50, 99, 99.9))
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": p50,
            "p99": p99,
            "p999": p999,
            "min": self.stats.min,
            "max": self.stats.max,
        }


class Histogram:
    """Log2-bucketed histogram of nanosecond latencies (HDR-style)."""

    def __init__(self, min_ns: int = 1, max_ns: int = 10**12) -> None:
        self.min_ns = max(1, min_ns)
        self.max_ns = max_ns
        nbuckets = int(math.ceil(math.log2(max_ns / self.min_ns))) + 1
        self.buckets = np.zeros(nbuckets, dtype=np.int64)
        self.total = 0

    def add(self, ns: float) -> None:
        ns = max(self.min_ns, min(ns, self.max_ns))
        idx = int(math.log2(ns / self.min_ns))
        idx = min(idx, len(self.buckets) - 1)
        self.buckets[idx] += 1
        self.total += 1

    def bucket_bounds(self, idx: int) -> tuple[int, int]:
        # samples are clamped to max_ns on add(); the reported bounds must
        # be clamped the same way or quantiles exceed the largest value the
        # histogram can actually have recorded
        lo = self.min_ns * (2**idx)
        return min(lo, self.max_ns), min(lo * 2, self.max_ns)

    def dump(self) -> dict:
        """Plain-data capture for snapshot/restore."""
        return {
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "buckets": [int(c) for c in self.buckets],
            "total": self.total,
        }

    @classmethod
    def load(cls, state: dict) -> "Histogram":
        h = cls(min_ns=state["min_ns"], max_ns=state["max_ns"])
        h.buckets = np.array(state["buckets"], dtype=np.int64)
        h.total = state["total"]
        return h

    def fork_window(self) -> "Histogram":
        """Snapshot-and-reset seam for windowed consumers: return a new
        Histogram holding only the samples added since the previous
        ``fork_window()`` call (all samples, on the first call), without
        disturbing this cumulative histogram.

        SLO-burn health checks quantile the *last interval*, not the whole
        run — a lifetime histogram stops reacting once it holds enough
        history to drown any new tail.  One rolling window per histogram:
        the control daemon's sampling loop is the intended (sole) caller.
        """
        win = Histogram(min_ns=self.min_ns, max_ns=self.max_ns)
        base = getattr(self, "_window_base", None)
        diff = self.buckets.copy() if base is None else self.buckets - base
        win.buckets = diff
        win.total = int(diff.sum())
        self._window_base = self.buckets.copy()
        return win

    def quantile(self, q: float) -> float:
        """Approximate quantile (bucket upper bound)."""
        if self.total == 0:
            raise ValueError("empty histogram")
        target = q * self.total
        cum = 0
        for i, c in enumerate(self.buckets):
            cum += int(c)
            # `c` guard: quantile(0.0) must report the lowest *occupied*
            # bucket, not bucket 0 (cum >= 0 is vacuously true there)
            if c and cum >= target:
                return float(self.bucket_bounds(i)[1])
        return float(self.bucket_bounds(len(self.buckets) - 1)[1])


class Counter:
    """A bag of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def asdict(self) -> dict[str, int]:
        return dict(self._values)

    def __getitem__(self, name: str) -> int:
        return self.get(name)
