"""Seeded, named random-number streams.

Every stochastic component draws from its own named stream so that adding
a new consumer of randomness never perturbs the draws seen by existing
components (a classic DES reproducibility requirement).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("device.nvme0")
    >>> b = rngs.stream("workload.fio")
    >>> a is rngs.stream("device.nvme0")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from (root seed, stable hash of name).
            child = np.random.SeedSequence([self.seed, zlib.crc32(name.encode())])
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """A sub-registry whose streams are independent of this one's."""
        return RngRegistry(seed=(self.seed * 1_000_003 + zlib.crc32(name.encode())) % 2**63)
