"""Conservative, windowed parallel DES: node-sharded execution.

The cluster layer (PR 7) made nodes loosely coupled by construction:
cross-node interaction happens only through :class:`~repro.cluster.
fabric.FabricLink` hops, each costing at least ``link_lat_ns`` of
virtual time.  That latency floor is a classic conservative-parallel
**lookahead**: if every inter-node link takes at least ``L`` ns, then a
message sent at or after virtual time ``T`` cannot arrive anywhere
before ``T + L`` — so every node may safely simulate the window
``[T, T + L)`` without hearing from anyone.

This module exploits that:

- every node runs on its **own private Environment** (at *every* shard
  count — ``shards=1`` is the same composition executed serially in one
  process, which is what makes the digests comparable byte-for-byte);
- a coordinator advances all nodes in lockstep windows ``[T, T + L)``
  where ``T`` is the global minimum next-event time and ``L`` the
  minimum inter-node link latency;
- cross-node calls are pickled into timestamped :class:`ParMessage`
  envelopes (generator frames never cross an Environment, let alone a
  process) and exchanged at window barriers; arrivals are injected in
  canonical ``(arrival, port, seq)`` order so delivery is independent of
  transport timing;
- with ``shards=N`` the node set is partitioned round-robin over ``N``
  forked OS processes; the only difference from ``shards=1`` is that
  the barrier exchange crosses a pipe instead of a function call.

Because each node-Environment sees an identical event stream at every
shard count (same build, same epoch alignment, same injected messages
at the same barriers), the per-node trace streams are identical — and
the merged digest (ordered by ``(time, node, seq)``) is byte-identical
by construction.  ``python -m repro.sim.check cluster --shards 1,2,4``
pins that claim in CI.

Safety sketch (see DESIGN.md "Parallel simulation" for the full
argument): a window bounded by ``W = T + L`` only processes events with
``t < W``; any send it performs happens at ``t ≥ T``, and its arrival is
``wire_release + link_lat ≥ t + L ≥ T + L = W`` — i.e. no message can
arrive inside the window that produced it, so exchanging messages only
at barriers never delivers into a receiver's past.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .check import CounterScope, _canon, reset_global_counters
from .core import Environment
from .trace import TraceEvent

__all__ = [
    "ParMessage",
    "OutPort",
    "TraceCollector",
    "ParWorld",
    "ShardHost",
    "ParResult",
    "run_program",
    "main",
]

#: matches Environment.peek()'s empty-heap sentinel
TIME_SENTINEL = 2**63

#: runaway-window backstop (a real run is O(duration / lookahead))
MAX_ROUNDS = 2_000_000


class ParMessage:
    """One timestamped cross-node envelope.

    ``port`` is the directed pair ``"src->dst"``; ``seq`` a per-port
    counter assigned at send time on the source env.  ``(arrival_ns,
    port, seq)`` is the canonical injection order — a pure function of
    virtual time, so identical at every shard count.
    """

    __slots__ = ("port", "seq", "kind", "req_id", "arrival_ns", "nbytes",
                 "payload")

    def __init__(self, port: str, seq: int, kind: str, req_id: int,
                 arrival_ns: int, nbytes: int, payload: bytes) -> None:
        self.port = port
        self.seq = seq
        self.kind = kind            # "req" | "resp"
        self.req_id = req_id        # wire id (initiator's request id)
        self.arrival_ns = arrival_ns
        self.nbytes = nbytes
        self.payload = payload      # pickled body (value semantics always)

    def __getstate__(self):
        return (self.port, self.seq, self.kind, self.req_id,
                self.arrival_ns, self.nbytes, self.payload)

    def __setstate__(self, state):
        (self.port, self.seq, self.kind, self.req_id,
         self.arrival_ns, self.nbytes, self.payload) = state

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<ParMessage {self.port}#{self.seq} {self.kind} "
                f"req={self.req_id} at={self.arrival_ns}>")


class OutPort:
    """Egress buffer for one directed pair, owned by the source world.

    Always pickles the body — even when source and destination worlds
    share a process — so a message has value semantics at every shard
    count (mode-equality is a *construction*, not a hope).
    """

    __slots__ = ("world", "name", "seq", "buf")

    def __init__(self, world: "ParWorld", name: str) -> None:
        self.world = world
        self.name = name
        self.seq = 0
        self.buf: list[ParMessage] = []

    def send(self, kind: str, arrival_ns: int, req_id: int, nbytes: int,
             payload: bytes) -> ParMessage:
        self.seq += 1
        msg = ParMessage(self.name, self.seq, kind, req_id, arrival_ns,
                         nbytes, payload)
        self.buf.append(msg)
        env = self.world.env
        t = env.tracer
        if t.enabled:
            t.emit(env.now, "par.msg", port=self.name, seq=self.seq,
                   kind=kind, bytes=nbytes, arrival=arrival_ns)
        return msg


class TraceCollector:
    """Per-world trace sink: canonicalizes each event to the exact line
    :class:`~repro.sim.check.TraceHasher` would hash, tagged with the
    emission sequence number.  ``san.*`` events are excluded — the
    sanitizer's audit stream watches one Environment's internals, which
    is not part of the cross-mode digest surface."""

    __slots__ = ("node", "events", "_seq")

    def __init__(self, node: str) -> None:
        self.node = node
        self.events: list[tuple[int, int, str]] = []
        self._seq = 0

    def __call__(self, ev: TraceEvent) -> None:
        if ev.category.startswith("san."):
            return
        self._seq += 1
        parts = [str(ev.time_ns), ev.category]
        parts += [f"{k}={_canon(ev.fields[k])}" for k in sorted(ev.fields)]
        self.events.append((ev.time_ns, self._seq, "|".join(parts)))


class _Deliver:
    """Injection callback bound to one (handler, message) pair."""

    __slots__ = ("fn", "msg")

    def __init__(self, fn: Callable[[ParMessage], None], msg: ParMessage):
        self.fn = fn
        self.msg = msg

    def __call__(self, _ev) -> None:
        self.fn(self.msg)


class ParWorld:
    """One node's private universe: Environment, egress ports, ingress
    handlers, driver processes, and the trace collector.

    The program builds its node host through :meth:`build` (stacks,
    routes, executors), then the runner aligns every world to the
    program's epoch and starts the drivers — so daemon timer phases and
    driver start times are independent of *which other nodes* share the
    process, the property the whole digest-equality argument rests on.
    """

    def __init__(self, program, node_name: str, *, trace: bool = False) -> None:
        self.program = program
        self.node_name = node_name
        # private identity counters: id draws must depend only on THIS
        # world's history, not on co-resident worlds' (see CounterScope)
        self.scope = CounterScope()
        self.env = Environment()
        self.collector: Optional[TraceCollector] = None
        if trace:
            self.collector = TraceCollector(node_name)
            t = self.env.tracer
            t.add_sink(self.collector)
            t.obs = True
        self._ports: dict[str, OutPort] = {}
        self._ingress: dict[tuple[str, str], Callable[[ParMessage], None]] = {}
        self.routes: list[Any] = []       # RemoteRoute-likes (.inflight)
        self.executors: list[Any] = []    # RouteExecutor-likes (.active)
        self.drivers: list[Any] = []
        self.ctx: Any = None

    # -- program-facing API --------------------------------------------
    def out_port(self, dst: str) -> OutPort:
        name = f"{self.node_name}->{dst}"
        port = self._ports.get(name)
        if port is None:
            port = self._ports[name] = OutPort(self, name)
        return port

    def on_message(self, port: str, kind: str,
                   handler: Callable[[ParMessage], None]) -> None:
        key = (port, kind)
        if key in self._ingress:
            raise SimulationError(f"duplicate ingress handler for {key}")
        self._ingress[key] = handler

    def register_route(self, route) -> None:
        self.routes.append(route)

    def register_executor(self, executor) -> None:
        self.executors.append(executor)

    # -- lifecycle (driven by ShardHost) -------------------------------
    def build(self) -> None:
        self.scope.activate()
        self.ctx = self.program.build(self)

    def align(self, epoch_ns: int) -> None:
        self.scope.activate()
        env = self.env
        if env.now > epoch_ns:
            raise SimulationError(
                f"node {self.node_name!r}: build ended at {env.now} ns, past "
                f"the program epoch {epoch_ns} — raise epoch_ns")
        if env.now < epoch_ns:
            if env._heap or env._urgent or env._due:
                env.run(until=epoch_ns)
            if env._now < epoch_ns:  # empty env: run() can't advance it
                env._now = epoch_ns

    def start_drivers(self) -> None:
        self.scope.activate()
        for name, gen in self.program.drivers(self):
            self.drivers.append(self.env.process(gen, name=name))

    def inject(self, messages) -> None:
        env = self.env
        for msg in sorted(messages, key=lambda m: (m.arrival_ns, m.port, m.seq)):
            handler = self._ingress.get((msg.port, msg.kind))
            if handler is None:
                raise SimulationError(
                    f"node {self.node_name!r}: no ingress handler for "
                    f"{msg.port}/{msg.kind}")
            delay = msg.arrival_ns - env._now
            if delay <= 0:
                raise SimulationError(
                    f"lookahead violated: {msg!r} arrives at {msg.arrival_ns} "
                    f"but node {self.node_name!r} is already at {env._now}")
            env.timeout(delay).callbacks.append(_Deliver(handler, msg))

    def run_window(self, until_window: int) -> None:
        self.scope.activate()
        self.env.run(until_window=until_window)

    def drain_outbox(self) -> list[ParMessage]:
        out: list[ParMessage] = []
        for name in sorted(self._ports):
            port = self._ports[name]
            if port.buf:
                out.extend(port.buf)
                port.buf = []
        return out

    # -- termination inputs --------------------------------------------
    @property
    def drivers_done(self) -> bool:
        return all(not p.is_alive for p in self.drivers)

    @property
    def inflight(self) -> int:
        return sum(r.inflight for r in self.routes)

    @property
    def active(self) -> int:
        return sum(x.active for x in self.executors)

    def finish(self) -> Any:
        self.scope.activate()
        return self.program.finish(self)


class ShardHost:
    """Hosts one shard's worlds in the current process and implements the
    per-barrier protocol step (the same code drives the in-process and
    forked transports)."""

    def __init__(self, program, node_names, *, trace: bool = False) -> None:
        self.program = program
        self.worlds = [ParWorld(program, n, trace=trace)
                       for n in sorted(node_names)]
        self.busy_s = 0.0
        #: CPU seconds actually burned in this shard's process — unlike
        #: ``busy_s`` (wall), immune to time-slicing on oversubscribed
        #: hosts, so it supports an honest critical-path projection
        self.cpu_s = 0.0

    def setup(self) -> int:
        c0 = time.process_time()
        t0 = time.perf_counter()
        epoch = self.program.epoch_ns
        for w in self.worlds:
            w.build()
        for w in self.worlds:
            w.align(epoch)
        for w in self.worlds:
            w.start_drivers()
        self.busy_s += time.perf_counter() - t0
        self.cpu_s += time.process_time() - c0
        return min(w.env.peek() for w in self.worlds)

    def step(self, inbox: list[ParMessage], until_window: int):
        """One window: inject, advance every world to the bound, report
        ``(outbox, local_min_next_event, drivers_done, inflight, active)``."""
        c0 = time.process_time()
        t0 = time.perf_counter()
        if inbox:
            by_node: dict[str, list[ParMessage]] = {}
            for msg in inbox:
                by_node.setdefault(msg.port.split("->", 1)[1], []).append(msg)
            for w in self.worlds:
                msgs = by_node.get(w.node_name)
                if msgs:
                    w.inject(msgs)
        outbox: list[ParMessage] = []
        tmin = TIME_SENTINEL
        done = True
        inflight = 0
        active = 0
        for w in self.worlds:
            w.run_window(until_window)
            outbox.extend(w.drain_outbox())
            t = w.env.peek()
            if t < tmin:
                tmin = t
            done = done and w.drivers_done
            inflight += w.inflight
            active += w.active
        self.busy_s += time.perf_counter() - t0
        self.cpu_s += time.process_time() - c0
        return outbox, tmin, done, inflight, active

    def finish(self) -> dict[str, Any]:
        c0 = time.process_time()
        t0 = time.perf_counter()
        worlds: dict[str, Any] = {}
        for w in self.worlds:
            worlds[w.node_name] = {
                "result": w.finish(),
                "events": w.env._eid,
                "virtual_ns": w.env.now,
                "trace": w.collector.events if w.collector else [],
            }
        self.busy_s += time.perf_counter() - t0
        self.cpu_s += time.process_time() - c0
        return {"worlds": worlds, "busy_s": self.busy_s, "cpu_s": self.cpu_s,
                "events": sum(v["events"] for v in worlds.values())}


# ----------------------------------------------------------------------
# shard transports
# ----------------------------------------------------------------------
class _InProcessShard:
    """All worlds in this process; barriers are plain function calls."""

    def __init__(self, program, names, trace: bool) -> None:
        self.host = ShardHost(program, names, trace=trace)
        self._reply: Any = None

    def post_setup(self) -> None:
        self._reply = self.host.setup()

    def post_step(self, inbox, until_window) -> None:
        self._reply = self.host.step(inbox, until_window)

    def post_finish(self) -> None:
        self._reply = self.host.finish()

    def wait(self) -> Any:
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


def _shard_worker(conn, program, names, trace) -> None:
    """Forked shard main loop: deterministic construction then barriers."""
    try:
        reset_global_counters()
        host = ShardHost(program, names, trace=trace)
        conn.send(("ok", host.setup()))
        while True:
            cmd, payload = conn.recv()
            if cmd == "step":
                conn.send(("ok", host.step(*payload)))
            elif cmd == "finish":
                conn.send(("ok", host.finish()))
                conn.close()
                return
            else:  # pragma: no cover - protocol error
                raise SimulationError(f"unknown shard command {cmd!r}")
    except BaseException:  # noqa: BLE001 - ship the traceback home
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass


class _ForkedShard:
    """One shard in a forked child; barriers cross a Pipe.

    Fork (not spawn) start method: the child inherits the imported
    modules and the parent's hash seed, and the program object crosses
    by memory inheritance — the same trick ``run_sweep`` uses for its
    point workers.
    """

    def __init__(self, ctx, program, names, trace: bool) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_shard_worker, args=(child, program, names, trace),
            daemon=True,
        )
        self.proc.start()
        child.close()

    def post_setup(self) -> None:
        pass  # the worker runs setup eagerly; its reply is already queued

    def post_step(self, inbox, until_window) -> None:
        self.conn.send(("step", (inbox, until_window)))

    def post_finish(self) -> None:
        self.conn.send(("finish", None))

    def wait(self) -> Any:
        tag, payload = self.conn.recv()
        if tag == "error":
            raise SimulationError(f"shard worker failed:\n{payload}")
        return payload

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:  # pragma: no cover
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.terminate()


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
class ParResult:
    """Outcome of one parallel (or ``shards=1`` serial-windowed) run."""

    def __init__(self, **kw) -> None:
        self.__dict__.update(kw)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<ParResult shards={self.shards} rounds={self.rounds} "
                f"wall={self.wall_s:.3f}s digest={self.digest[:12] if self.digest else None}>")


def merge_digest(streams: dict[str, list[tuple[int, int, str]]]) -> tuple[str, int]:
    """SHA-256 over all worlds' trace lines merged in ``(time, node,
    seq)`` order.

    Each world's stream is already (time, seq)-sorted; the node name
    breaks cross-world ties.  All three key components are pure virtual
    quantities, so the merged order — hence the digest — is independent
    of the shard count and of wall-clock interleaving.
    """
    merged = sorted(
        ((t, node, seq, line)
         for node, events in streams.items()
         for (t, seq, line) in events),
        key=lambda it: it[:3],
    )
    h = hashlib.sha256()
    for _t, _node, _seq, line in merged:
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest(), len(merged)


def run_program(program, *, shards: int = 1, trace: bool = False,
                reset_counters: bool = True) -> ParResult:
    """Execute a parallel program across ``shards`` OS processes.

    ``shards=1`` hosts every node-world in this process — identical
    window schedule and message protocol, so it is both the serial
    fallback and the digest baseline the parallel runs must match.
    """
    names = sorted(program.nodes())
    if not names:
        raise SimulationError("program declares no nodes")
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    shards = min(shards, len(names))
    lookahead = program.lookahead_ns()
    min_virtual = getattr(program, "min_virtual_ns", 0)

    # node i -> shard i % N: a pure function of the sorted node list
    assignment = [names[i::shards] for i in range(shards)]
    shard_of = {n: i for i, part in enumerate(assignment) for n in part}

    if reset_counters:
        reset_global_counters()

    wall0 = time.perf_counter()
    handles: list[Any] = []
    try:
        if shards == 1:
            handles.append(_InProcessShard(program, names, trace))
        else:
            import multiprocessing as mp
            ctx = mp.get_context("fork")
            for part in assignment:
                handles.append(_ForkedShard(ctx, program, part, trace))

        for h in handles:
            h.post_setup()
        tmins = [h.wait() for h in handles]
        t_next = min(tmins)

        rounds = 0
        messages = 0
        inboxes: list[list[ParMessage]] = [[] for _ in handles]
        done_ok = False
        last_window = 0
        while True:
            if t_next >= TIME_SENTINEL:
                if done_ok or rounds == 0:
                    break
                raise SimulationError(
                    "parallel run out of events with work outstanding "
                    "(a driver is blocked on an event nobody will fire)")
            if lookahead is None:
                raise SimulationError(
                    "program has cross-node traffic potential but no links "
                    "to derive a lookahead from")
            window = t_next + lookahead
            last_window = window
            for h, inbox in zip(handles, inboxes):
                h.post_step(inbox, window)
            replies = [h.wait() for h in handles]
            rounds += 1
            if rounds > MAX_ROUNDS:  # pragma: no cover - runaway backstop
                raise SimulationError(f"exceeded {MAX_ROUNDS} windows")

            inboxes = [[] for _ in handles]
            t_next = TIME_SENTINEL
            routed = 0
            all_done = True
            inflight = 0
            active = 0
            for outbox, tmin, done, infl, act in replies:
                if tmin < t_next:
                    t_next = tmin
                all_done = all_done and done
                inflight += infl
                active += act
                for msg in outbox:
                    dst = msg.port.split("->", 1)[1]
                    inboxes[shard_of[dst]].append(msg)
                    routed += 1
                    if msg.arrival_ns < t_next:
                        t_next = msg.arrival_ns
            messages += routed
            done_ok = (all_done and inflight == 0 and active == 0
                       and routed == 0)
            if done_ok and (t_next >= TIME_SENTINEL or last_window >= min_virtual):
                break

        for h in handles:
            h.post_finish()
        bundles = [h.wait() for h in handles]
    finally:
        for h in handles:
            h.close()
    wall_s = time.perf_counter() - wall0

    results: dict[str, Any] = {}
    streams: dict[str, list[tuple[int, int, str]]] = {}
    shard_stats: list[dict[str, Any]] = []
    for idx, bundle in enumerate(bundles):
        busy = bundle["busy_s"]
        shard_stats.append({
            "shard": idx,
            "nodes": assignment[idx],
            "events": bundle["events"],
            "busy_s": busy,
            "cpu_s": bundle["cpu_s"],
            "events_per_sec": bundle["events"] / busy if busy > 0 else 0.0,
        })
        for node, info in bundle["worlds"].items():
            results[node] = info["result"]
            if trace:
                streams[node] = info["trace"]

    digest = None
    merged_events = 0
    if trace:
        digest, merged_events = merge_digest(streams)

    reduced = None
    reduce = getattr(program, "reduce", None)
    if reduce is not None:
        reduced = reduce(results)

    return ParResult(
        shards=shards,
        assignment=assignment,
        lookahead_ns=lookahead,
        rounds=rounds,
        messages=messages,
        wall_s=wall_s,
        shard_stats=shard_stats,
        events=sum(s["events"] for s in shard_stats),
        results=results,
        reduced=reduced,
        digest=digest,
        merged_events=merged_events,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    from .profile import format_par_stats

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.par",
        description="Run a par-capable scenario under the sharded runner.",
    )
    parser.add_argument("scenario", help="par scenario name (cluster, control, e14)")
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-trace", action="store_true",
                        help="skip trace collection/digest (bench mode)")
    args = parser.parse_args(argv)

    from ..cluster.par import PAR_SCENARIOS

    if args.scenario not in PAR_SCENARIOS:
        parser.error(f"unknown scenario {args.scenario!r}; "
                     f"known: {sorted(PAR_SCENARIOS)}")
    program = PAR_SCENARIOS[args.scenario](args.seed)
    res = run_program(program, shards=args.shards, trace=not args.no_trace)
    print(f"{args.scenario}: shards={res.shards} rounds={res.rounds} "
          f"messages={res.messages} events={res.events} "
          f"wall={res.wall_s:.3f}s")
    print(format_par_stats(res.shard_stats, res.wall_s))
    if res.digest is not None:
        print(f"merged digest ({res.merged_events} events): {res.digest}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
