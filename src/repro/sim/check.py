"""Determinism checker: replay a scenario and compare trace hashes.

The reproducibility contract of the DES kernel is that a seeded scenario
always produces the same event stream.  This module makes that claim
testable: it runs a named scenario twice in the same process, hashes every
trace event (spans plus the sanitizer's ``san.*`` kernel audit stream),
and reports whether the two digests match — alongside the sanitizer's
invariant report for each run.

Usage::

    python -m repro.sim.check                    # all scenarios, twice each
    python -m repro.sim.check quickstart         # one scenario
    python -m repro.sim.check --list

or from a test via the ``determinism_check`` pytest fixture
(``tests/conftest.py``).
"""

from __future__ import annotations

import hashlib
import itertools
import sys
from typing import Any, Callable

from .core import Environment
from .sanitizer import Sanitizer
from .trace import TraceEvent

__all__ = [
    "TraceHasher",
    "AuditRun",
    "CounterScope",
    "reset_global_counters",
    "run_scenario",
    "SCENARIOS",
    "main",
]


def _canon(v: Any) -> str:
    """Stable projection of a trace-event field for hashing.

    Scalars hash by value; arbitrary objects hash by type name only, so
    memory addresses and process-global ids never leak into the digest.
    """
    if v is None or isinstance(v, (bool, int, str)):
        return repr(v)
    if isinstance(v, float):
        return format(v, ".17g")
    return type(v).__name__


class TraceHasher:
    """A tracer sink folding every event into one SHA-256 digest.

    With ``arm_at_ns`` set, events before that virtual timestamp are
    counted (``skipped``) but not hashed — the digest then covers only
    the event-stream *suffix* from T on.  That is the seam replay-to-point
    restore needs: a restored run hashes nothing during replay and must
    match the armed digest of an unbroken run byte-for-byte
    (:mod:`repro.snap.replay`).
    """

    def __init__(self, arm_at_ns: int | None = None) -> None:
        self._h = hashlib.sha256()
        self.count = 0
        self.skipped = 0
        self.arm_at_ns = arm_at_ns

    def __call__(self, ev: TraceEvent) -> None:
        if self.arm_at_ns is not None and ev.time_ns < self.arm_at_ns:
            self.skipped += 1
            return
        parts = [str(ev.time_ns), ev.category]
        parts += [f"{k}={_canon(ev.fields[k])}" for k in sorted(ev.fields)]
        self._h.update("|".join(parts).encode())
        self._h.update(b"\n")
        self.count += 1

    def hexdigest(self) -> str:
        return self._h.hexdigest()


class AuditRun:
    """One sanitized, hashed scenario execution.

    A scenario receives the AuditRun, builds its environment, calls
    :meth:`attach` *before* driving any simulation, and runs.  Afterwards
    :attr:`digest` is the trace hash and :meth:`finish` yields the
    sanitizer's teardown report.
    """

    def __init__(self, strict: bool = True, arm_at_ns: int | None = None) -> None:
        self.hasher = TraceHasher(arm_at_ns=arm_at_ns)
        self.sanitizer = Sanitizer(strict=strict)
        self.env: Environment | None = None

    def attach(self, env: Environment) -> Environment:
        self.env = env
        self.sanitizer.install(env)
        env.tracer.add_sink(self.hasher)
        return env

    def finish(self) -> dict[str, Any]:
        return self.sanitizer.finish()

    @property
    def digest(self) -> str:
        return self.hasher.hexdigest()


#: every module-global identity counter: (module, attribute, start)
_COUNTER_SITES = (
    ("repro.system", "_uuid_seq", 1),
    ("repro.builder", "_uuid_seq", 1),
    ("repro.core.client", "_pids", 1000),
    ("repro.core.labstack", "_stack_ids", 1),
    ("repro.core.requests", "_req_ids", 1),
    ("repro.devices.base", "_req_ids", 1),
    ("repro.ipc.queue_pair", "_qids", 1),
    ("repro.ipc.shmem", "_seg_ids", 1),
    ("repro.mods.labfs.log", "_seq", 1),
)


def _counter_modules() -> list[tuple[Any, str, int]]:
    import importlib

    return [(importlib.import_module(mod), attr, start)
            for mod, attr, start in _COUNTER_SITES]


def reset_global_counters() -> None:
    """Rewind every module-level id counter to its import-time start.

    Request/queue/segment/stack ids come from process-global counters, and
    process names (hashed via ``san.step``) embed them — so back-to-back
    runs of one scenario must start from identical counter state to be
    comparable.
    """
    for module, attr, start in _counter_modules():
        setattr(module, attr, itertools.count(start))


class CounterScope:
    """A private identity-counter universe.

    The sharded runner (:mod:`repro.sim.par`) hosts several node-worlds
    per process; were they to share the process-global counters, the ids
    a world draws would depend on which *other* worlds it cohabits with
    — and differ between ``shards=1`` and forked runs.  Each world owns
    a scope and :meth:`activate`\\ s it before executing, so every draw
    depends only on that world's own history: the exact values it would
    draw running alone in a fork.
    """

    def __init__(self) -> None:
        self._sites = [(module, attr, itertools.count(start))
                       for module, attr, start in _counter_modules()]

    def activate(self) -> None:
        for module, attr, counter in self._sites:
            setattr(module, attr, counter)


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _scenario_quickstart(audit: AuditRun) -> dict[str, Any]:
    """The README quickstart: mount Lab-All, write + read one file."""
    from ..mods.generic_fs import GenericFS
    from ..system import LabStorSystem

    env = Environment()
    audit.attach(env)
    system = LabStorSystem(env=env, devices=("nvme",))
    system.mount_fs_stack("fs::/demo", variant="all")
    gfs = GenericFS(system.client())
    payload = b"determinism is a feature " * 160  # ~4KB

    def go():
        fd = yield from gfs.open("fs::/demo/hello.txt", create=True)
        yield from gfs.write(fd, payload, offset=0)
        data = yield from gfs.read(fd, len(payload), offset=0)
        yield from gfs.fsync(fd)
        yield from gfs.close(fd)
        return data

    data = system.run(system.process(go()))
    assert data == payload, "quickstart round-trip mismatch"
    return {"bytes": len(payload), "stats": system.runtime.stats()}


def _scenario_orchestration(audit: AuditRun) -> dict[str, Any]:
    """Dynamic-policy scaling: a heavy wave then a light one, so the
    orchestrator both spawns and decommissions workers (the scale-in
    path this PR fixed)."""
    import numpy as np

    from ..core import RuntimeConfig, StackSpec
    from ..system import LabStorSystem
    from ..units import msec
    from ..workloads.fio import FioJob, FioResult, LabStackEngine, _job_proc

    env = Environment()
    audit.attach(env)
    system = LabStorSystem(
        env=env,
        devices=("nvme",),
        config=RuntimeConfig(nworkers=1, policy="dynamic", max_workers=6,
                             orchestrator_interval_ns=msec(1.0)),
    )
    spec = StackSpec.linear("blk::/w", [("NoOpSchedMod", "chk.noop"),
                                        ("KernelDriverMod", "chk.drv")])
    spec.nodes[0].attrs = {"nqueues": 8}
    spec.nodes[1].attrs = {"device": "nvme"}
    stack = system.runtime.mount_stack(spec)
    engines = [LabStackEngine(system.client(), stack, system.devices["nvme"])
               for _ in range(4)]

    def wave(engs, ops):
        result = FioResult()
        procs = [
            system.process(_job_proc(env, e, FioJob(rw="randwrite", bs=4096, nops=ops, core=i),
                                     np.random.default_rng(i), result, b"x" * 4096))
            for i, e in enumerate(engs)
        ]
        system.run(env.all_of(procs))

    wave(engines, 150)      # heavy: the pool scales out
    wave(engines[:1], 250)  # light: the pool scales back in
    orch = system.runtime.orchestrator
    return {"workers": orch.worker_count(), "rebalances": orch.rebalances}


def _scenario_kvs(audit: AuditRun) -> dict[str, Any]:
    """LabKVS put/get churn through the Runtime's workers."""
    from ..mods.generic_kvs import GenericKVS
    from ..system import LabStorSystem

    env = Environment()
    audit.attach(env)
    system = LabStorSystem(env=env, devices=("nvme",))
    system.mount_kvs_stack("kvs::/x", variant="all")
    kvs = GenericKVS(system.client(), "kvs::/x")

    def go():
        for i in range(48):
            yield from kvs.put(f"key{i % 12}", bytes([i % 251]) * (64 + 16 * (i % 7)))
        hits = 0
        for i in range(12):
            if (yield from kvs.get(f"key{i}")) is not None:
                hits += 1
        return hits

    hits = system.run(system.process(go()))
    assert hits == 12, f"kvs round-trip lost keys ({hits}/12)"
    return {"hits": hits}


def _scenario_faults(audit: AuditRun) -> dict[str, Any]:
    """Chaos under audit: probabilistic media errors + queue rejections +
    a worker crash + a power cut with auto-restart, driven against a
    retrying GenericFS.  Every injection draws from the seeded "faults"
    RNG stream, so the whole storm must replay digest-identical.
    (Delegates to :class:`repro.snap.programs.FaultsProgram`, which the
    replay-to-point property tests also drive.)"""
    from ..snap.programs import FaultsProgram
    from ..snap.replay import drive_program

    return drive_program(FaultsProgram(), audit)


def _scenario_batching(audit: AuditRun) -> dict[str, Any]:
    """The batching fast path end to end: vectored writev/readv waves ride
    Client.submit_batch through worker batch-pop, BatchSchedMod merging and
    device-level coalescing, so every batch-conservation invariant
    (san.qp batch counters + san.batch settle records) gets exercised."""
    from ..snap.programs import BatchingProgram
    from ..snap.replay import drive_program

    return drive_program(BatchingProgram(), audit)


def _scenario_openloop(audit: AuditRun) -> dict[str, Any]:
    """Open-loop tenant traffic under overload: the canonical two-tenant
    population (diurnal YCSB-C frontend + bursty YCSB-A analytics) at 2.5x
    nominal load behind queue-depth admission.  Every arrival, key choice
    and op-mix draw comes from the seeded per-tenant streams, so the whole
    storm — admissions, rejections, queue growth, drain — must replay
    digest-identical."""
    from ..traffic.engine import QueueDepthAdmission
    from ..traffic.presets import build_overload_engine
    from ..units import msec

    env = Environment()
    audit.attach(env)
    system, engine = build_overload_engine(
        env=env, duration_ns=msec(1.5), load=2.5,
        policy=QueueDepthAdmission(8),
    )
    summary = engine.run()
    tot = summary["totals"]
    assert tot["completed"] > 0, "open-loop run completed no ops"
    assert tot["completed"] == tot["launched"], "drain lost in-flight ops"
    assert tot["rejected"] > 0, "overload never tripped admission control"
    assert engine.inflight == 0, "inflight accounting leaked"
    return {
        "launched": tot["launched"],
        "good": tot["good"],
        "violations": tot["violations"],
        "rejected": tot["rejected"],
        "peak_inflight": summary["peak_inflight"],
        "elapsed_ns": summary["elapsed_ns"],
    }


def _scenario_cluster(audit: AuditRun) -> dict[str, Any]:
    """Cluster-scale determinism: a 3-node sharded+replicated KVS doing
    cross-fabric puts, then a fault-plan power cut killing one replica
    node mid-run, then failover reads off the survivors.  NIC queue
    pairs, fabric links, replica fan-out, crash ride-out and quorum
    accounting all land in one digest."""
    from ..snap.programs import ClusterProgram
    from ..snap.replay import drive_program

    return drive_program(ClusterProgram(), audit)


def _scenario_control(audit: AuditRun) -> dict[str, Any]:
    """Closed-loop control under chaos: the canonical 2-worker KVS storm
    (two worker crashes with inline respawn off, an unattended power cut,
    a latency tax, a device stall) steered by a ControlDaemon — healer,
    retry-tuner and worker-scaler acting through hysteresis-gated
    actuator seams.  Every control draw comes from the seeded "ctl"
    stream and every repair flows through declared actuators, so sample →
    check → actuate must replay digest-identical."""
    from ..ctl.presets import build_chaos_control

    env = Environment()
    audit.attach(env)
    system, engine, daemon = build_chaos_control(env=env)
    summary = engine.run()
    tot = summary["totals"]
    assert daemon is not None and daemon.ticks > 0, "daemon never ticked"
    assert daemon.actions_taken > 0, "chaos storm provoked no repairs"
    assert system.runtime.online, "daemon failed to restart the runtime"
    assert not system.runtime.orchestrator.dead_workers, \
        "daemon left crashed workers dead"
    assert tot["completed"] > 0, "controlled run completed no ops"
    return {
        "launched": tot["launched"],
        "good": tot["good"],
        "rejected": tot["rejected"],
        "ticks": daemon.ticks,
        "actions": daemon.actions_taken,
        "suppressed": daemon.actuators.suppressed,
    }


SCENARIOS: dict[str, Callable[[AuditRun], dict[str, Any]]] = {
    "quickstart": _scenario_quickstart,
    "orchestration": _scenario_orchestration,
    "kvs": _scenario_kvs,
    "faults": _scenario_faults,
    "batching": _scenario_batching,
    "openloop": _scenario_openloop,
    "cluster": _scenario_cluster,
    "control": _scenario_control,
}


def run_scenario(name: str, strict: bool = True) -> tuple[str, dict[str, Any]]:
    """Run one scenario under the sanitizer; returns (digest, report)."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}")
    reset_global_counters()
    audit = AuditRun(strict=strict)
    result = SCENARIOS[name](audit)
    report = audit.finish()
    report["result"] = result
    report["trace_events"] = audit.hasher.count
    return audit.digest, report


def _main_shards(names: list[str], shards: list[int], seed: int) -> int:
    """``--shards`` mode: run each par-capable scenario once per shard
    count under the sharded runner and require every merged digest to be
    byte-identical to the ``shards=1`` baseline."""
    from ..cluster.par import PAR_SCENARIOS
    from .par import run_program

    unknown = [n for n in names if n not in PAR_SCENARIOS]
    if unknown:
        print(f"not par-capable: {', '.join(unknown)}; "
              f"par scenarios: {sorted(PAR_SCENARIOS)}", file=sys.stderr)
        return 2
    failed = False
    for name in names:
        digests = {}
        for n in shards:
            res = run_program(PAR_SCENARIOS[name](seed), shards=n, trace=True)
            digests[n] = (res.digest, res.merged_events)
        base, base_events = digests[shards[0]]
        ok = all(d == base for d, _ in digests.values())
        failed |= not ok
        print(f"[{'ok' if ok else 'FAIL'}] {name}: {base_events} merged "
              f"trace events across shards={{{','.join(map(str, shards))}}}")
        for n in shards:
            d, _ = digests[n]
            mark = "" if d == base else "   <-- DIVERGES FROM shards=1"
            print(f"       shards={n}: {d}{mark}")
    return 1 if failed else 0


def main(argv: list[str]) -> int:
    if "--list" in argv:
        print("\n".join(SCENARIOS))
        return 0
    strict = "--strict" in argv
    shards: list[int] | None = None
    seed = 0
    argv = list(argv)
    if "--shards" in argv:
        i = argv.index("--shards")
        try:
            shards = [int(s) for s in argv[i + 1].split(",")]
        except (IndexError, ValueError):
            print("--shards needs a comma-separated int list, e.g. "
                  "--shards 1,2,4", file=sys.stderr)
            return 2
        del argv[i:i + 2]
    if "--seed" in argv:
        i = argv.index("--seed")
        try:
            seed = int(argv[i + 1])
        except (IndexError, ValueError):
            print("--seed needs an integer", file=sys.stderr)
            return 2
        del argv[i:i + 2]
    bad_flags = [a for a in argv if a.startswith("-") and a != "--strict"]
    if bad_flags:
        print(f"unknown option(s): {', '.join(bad_flags)}; "
              f"usage: check [--list] [--strict] [--shards 1,2,4] "
              f"[--seed N] [scenario ...]", file=sys.stderr)
        return 2
    if shards is not None:
        names = [a for a in argv if not a.startswith("-")]
        if not names:
            print("--shards needs explicit scenario name(s), e.g. "
                  "check cluster --shards 1,2,4", file=sys.stderr)
            return 2
        return _main_shards(names, shards, seed)
    names = [a for a in argv if not a.startswith("-")] or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}; try --list", file=sys.stderr)
        return 2
    failed = False
    for name in names:
        d1, r1 = run_scenario(name, strict=strict)
        d2, r2 = run_scenario(name, strict=strict)
        ok = d1 == d2 and not r1["violations"] and not r2["violations"]
        failed |= not ok
        verdict = "ok" if ok else "FAIL"
        print(f"[{verdict}] {name}: {r1['trace_events']} trace events, "
              f"{sum(r1['checks'].values())} invariant checks")
        print(f"       run 1: {d1}")
        print(f"       run 2: {d2}{'' if d1 == d2 else '   <-- NON-DETERMINISTIC'}")
        for i, rep in enumerate((r1, r2), 1):
            for v in rep["violations"]:
                print(f"       run {i} violation: {v}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
