"""Discrete-event simulation substrate for the LabStor reproduction."""

from .core import (
    LOW,
    NORMAL,
    URGENT,
    Environment,
    Event,
    Interrupt,
    Process,
    StopSimulation,
    Timeout,
)
from .resources import Container, FilterStore, PriorityResource, Resource, Store
from .rng import RngRegistry
from .sanitizer import Sanitizer, SanitizerError
from .stats import Counter, Histogram, LatencyRecorder, OnlineStats, percentile
from .trace import SpanAccumulator, Tracer

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "LOW",
    "Resource",
    "PriorityResource",
    "Store",
    "FilterStore",
    "Container",
    "RngRegistry",
    "OnlineStats",
    "LatencyRecorder",
    "Histogram",
    "Counter",
    "percentile",
    "SpanAccumulator",
    "Tracer",
    "Sanitizer",
    "SanitizerError",
]
