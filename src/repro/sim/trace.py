"""Lightweight structured tracing for simulations.

Components emit ``tracer.emit(category, **fields)``; experiments either
disable tracing entirely (zero cost beyond one branch) or register sinks
that aggregate spans.  The anatomy experiment (Fig 4a) is implemented as a
:class:`SpanAccumulator` sink over per-LabMod spans.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TraceEvent", "Tracer", "SpanAccumulator"]


@dataclass(frozen=True)
class TraceEvent:
    time_ns: int
    category: str
    fields: dict[str, Any]


class Tracer:
    """Pub/sub trace hub. Disabled by default.

    The three gate flags (``enabled``, ``audit``, ``obs``) are properties:
    assigning them mirrors the value into a cached ``_trace`` / ``_audit``
    / ``_obs`` attribute on every attached :class:`~repro.sim.core.
    Environment`, so per-event hot paths (``Event.__init__``, ``step``,
    queue-pair accounting) test one environment attribute instead of
    chasing ``env.tracer.<flag>`` on every allocation.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self.events: list[TraceEvent] = []
        self.keep_events = False
        #: set by the sanitizer: makes the sim kernel and IPC/orchestrator
        #: layers emit ``san.*`` audit events.  Every emission site is
        #: gated on this flag, so the disabled-path cost is one branch.
        self._audit = False
        #: set by :class:`repro.obs.telemetry.Telemetry`: makes the client,
        #: queue pairs, workers, and devices thread per-request SpanContexts
        #: and emit ``obs.*`` events.  Same one-branch discipline as audit.
        self._obs = False
        #: ambient span for layers with no per-request plumbing (the kernel
        #: baseline's block layer reads the span of the syscall in progress)
        self.obs_span = None
        self._sinks: list[Callable[[TraceEvent], None]] = []
        self._envs: "weakref.WeakSet[Any]" = weakref.WeakSet()

    # -- gate flags (mirrored into attached environments) ---------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self._sync_envs()

    @property
    def audit(self) -> bool:
        return self._audit

    @audit.setter
    def audit(self, value: bool) -> None:
        self._audit = value
        self._sync_envs()

    @property
    def obs(self) -> bool:
        return self._obs

    @obs.setter
    def obs(self, value: bool) -> None:
        self._obs = value
        self._sync_envs()

    def _attach_env(self, env: Any) -> None:
        """Called by ``Environment.__init__``: register for flag mirroring."""
        self._envs.add(env)
        env._trace = self._enabled
        env._audit = self._audit
        env._obs = self._obs

    def _sync_envs(self) -> None:
        for env in self._envs:
            env._trace = self._enabled
            env._audit = self._audit
            env._obs = self._obs

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        self._sinks.append(sink)
        self.enabled = True

    def emit(self, now_ns: int, category: str, **fields: Any) -> None:
        if not self._enabled:
            return
        ev = TraceEvent(now_ns, category, fields)
        if self.keep_events:
            self.events.append(ev)
        for sink in self._sinks:
            sink(ev)


@dataclass
class SpanAccumulator:
    """Accumulates total time per named span out of 'span' trace events.

    Components emit ``tracer.emit(now, "span", name=..., dur_ns=...)``;
    this sink sums durations per name — exactly the per-LabMod time
    breakdown the paper reports in Fig 4(a).
    """

    totals: dict[str, int] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def __call__(self, ev: TraceEvent) -> None:
        if ev.category != "span":
            return
        name = ev.fields["name"]
        self.totals[name] = self.totals.get(name, 0) + int(ev.fields["dur_ns"])
        self.counts[name] = self.counts.get(name, 0) + 1

    def fractions(self) -> dict[str, float]:
        total = sum(self.totals.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.totals.items())}
