"""Wall-clock profiling harness for the simulation engine.

Every figure this repro can reproduce is bounded by how many simulated
events per wall-clock second the DES kernel executes, so the engine's
real (host) hot path is a first-class optimization target — the same way
LabStor treats the I/O path.  This harness makes that path measurable:

``python -m repro.sim.profile`` runs reference workloads and reports

- **events/sec** — scheduler events executed per wall-clock second
  (``env._eid`` is the monotone count of every event that entered the
  heap, so it is identical across code versions that preserve
  virtual-time behavior — exactly the invariant the determinism digests
  pin — making events/sec a pure measure of engine speed);
- **heap depth** — max/mean of ``len(env._heap)`` sampled from a
  background thread (no virtual-time perturbation);
- **per-subsystem wall time** — a cProfile run aggregated by source
  subsystem: engine (sim core + resources) vs. tracer/obs vs. IPC vs.
  runtime/workers vs. LabMods vs. devices vs. kernel vs. workload.

The ``fio`` workload is the *reference macro-benchmark*: multi-job
random block I/O at iodepth 4 through an asynchronously executed
NoOp+KernelDriver stack — queue-pair traffic, worker scan loops and the
NVMe device model all on the path, the mix that dominates the paper's
Fig 6/7 sweeps.

CI gates on this harness: ``--baseline benchmarks/perf_baseline.json
--min-speedup N`` fails the run if events/sec regresses below N times
the recorded seed baseline (see DESIGN.md "Simulator performance").
Speedups are *host-normalized*: both the baseline and every gated run
record a :func:`calibrate` score (a fixed pure-Python kernel with the
engine's bytecode mix), and the gate compares events-per-calibration-op
rather than raw events/sec — a loaded CI runner or a slower laptop
slows the workload and the calibration kernel together, so the ratio
survives host-speed swings that would make a raw gate flaky.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import sys
import threading
import time
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable

__all__ = ["WORKLOADS", "calibrate", "run_workload", "format_par_stats", "main"]

#: name -> builder(nops) returning (env, run_callable)
WORKLOADS: dict[str, Callable] = {}


def workload(name: str):
    def deco(fn):
        WORKLOADS[name] = fn
        return fn

    return deco


@workload("fio")
def _wl_fio(nops: int):
    """Reference macro-benchmark: 4 fio jobs (randwrite/randread mix,
    4KiB, iodepth 4) through an async NoOp+KernelDriver LabStack."""
    from ..core.labstack import StackSpec
    from ..core.runtime import RuntimeConfig
    from ..system import LabStorSystem
    from ..workloads.fio import FioJob, LabStackEngine, run_fio

    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=2))
    spec = StackSpec.linear(
        "blk::/prof",
        [("NoOpSchedMod", "prof.noop"), ("KernelDriverMod", "prof.drv")],
    )
    spec.nodes[0].attrs = {"nqueues": 8}
    spec.nodes[1].attrs = {"device": "nvme"}
    stack = sys_.runtime.mount_stack(spec)
    engine = LabStackEngine(sys_.client(), stack, sys_.devices["nvme"])
    jobs = [
        FioJob(rw="randwrite" if i % 2 else "randread", bs=4096,
               nops=nops, iodepth=4, core=i)
        for i in range(4)
    ]
    return sys_.env, lambda: run_fio(sys_.env, engine, jobs, seed=7)


@workload("fs")
def _wl_fs(nops: int):
    """GenericFS open/write/read/fsync churn on the Lab-All stack."""
    from ..mods.generic_fs import GenericFS
    from ..system import LabStorSystem

    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/prof", variant="all")
    gfs = GenericFS(sys_.client())
    payload = b"profile me " * 372  # ~4KiB

    def go():
        for i in range(nops):
            path = f"fs::/prof/f{i % 32}"
            fd = yield from gfs.open(path, create=True)
            yield from gfs.write(fd, payload, offset=0)
            yield from gfs.read(fd, len(payload), offset=0)
            yield from gfs.close(fd)

    return sys_.env, lambda: sys_.run(sys_.process(go()))


@workload("kvs")
def _wl_kvs(nops: int):
    """GenericKVS put/get churn through the Runtime's workers."""
    from ..mods.generic_kvs import GenericKVS
    from ..system import LabStorSystem

    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_kvs_stack("kvs::/prof", variant="all")
    kvs = GenericKVS(sys_.client(), "kvs::/prof")

    def go():
        for i in range(nops):
            yield from kvs.put(f"key{i % 64}", bytes([i % 251]) * 256)
            if i % 4 == 3:
                yield from kvs.get(f"key{(i - 2) % 64}")

    return sys_.env, lambda: sys_.run(sys_.process(go()))


# ----------------------------------------------------------------------
# host-speed calibration
# ----------------------------------------------------------------------
def _calibration_kernel(n: int) -> int:
    # the engine hot path in miniature: method calls, attribute traffic,
    # deque FIFO churn, heap pushes/pops and generator sends
    dq: deque[int] = deque()
    heap: list[tuple[int, int]] = []

    def gen():
        while True:
            yield

    send = gen().send
    send(None)
    acc = 0
    for i in range(n):
        dq.append(i)
        heappush(heap, (i & 1023, i))
        send(None)
        acc += dq.popleft()
        if i & 7 == 7:
            heappop(heap)
    return acc


def calibrate(repeat: int = 3, n: int = 120_000) -> float:
    """Host-speed score in calibration-ops/sec (best of ``repeat`` runs).

    The kernel's bytecode mix mirrors the engine hot path, so host-speed
    changes (CPU model, turbo state, noisy neighbors on a CI runner) move
    this score and the engine's events/sec together.  Gating on
    ``events_per_sec / cal_score`` therefore measures *code* speed, not
    host speed.
    """
    best = float("inf")
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        _calibration_kernel(n)
        best = min(best, time.perf_counter() - t0)
    return n / best


# ----------------------------------------------------------------------
# per-subsystem attribution
# ----------------------------------------------------------------------
_GROUPS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("engine", ("/sim/core.py", "/sim/resources.py", "/sim/rng.py")),
    ("tracer", ("/sim/trace.py", "/sim/sanitizer.py", "/obs/")),
    ("par", ("/sim/par.py",)),
    ("ipc", ("/ipc/",)),
    ("runtime", ("/core/",)),
    ("cluster", ("/cluster/",)),
    ("traffic", ("/traffic/",)),
    ("ctl", ("/ctl/",)),
    ("snap", ("/snap/",)),
    ("mods", ("/mods/",)),
    ("devices", ("/devices/",)),
    ("kernel", ("/kernel/",)),
    ("workload", ("/workloads/", "/sim/stats.py", "/experiments/", "/pfs/")),
)


def _classify(filename: str, funcname: str) -> str:
    norm = filename.replace("\\", "/")
    for group, needles in _GROUPS:
        if any(n in norm for n in needles):
            return group
    if "heap" in funcname:  # builtin _heapq push/pop: engine time
        return "engine"
    return "other"


def _subsystem_breakdown(prof: cProfile.Profile) -> dict[str, float]:
    """Total *own* (tottime) seconds per subsystem, sorted descending."""
    import pstats

    stats = pstats.Stats(prof)
    totals: dict[str, float] = {}
    for (filename, _lineno, funcname), (_cc, _nc, tt, _ct, _callers) in stats.stats.items():
        group = _classify(filename, funcname)
        totals[group] = totals.get(group, 0.0) + tt
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]))


# ----------------------------------------------------------------------
# the measurement loop
# ----------------------------------------------------------------------
def run_workload(
    name: str,
    nops: int = 300,
    *,
    profile: bool = False,
    sample_heap: bool = True,
    repeat: int = 1,
    paired_cal: bool = False,
) -> dict[str, Any]:
    """Build and run one reference workload; returns the measurement row.

    ``repeat`` builds and runs the workload N times and reports the
    fastest run — wall-clock gating must not fail on scheduler noise.

    ``paired_cal`` brackets *every rep* with its own calibration samples
    and reports the rep with the best ``events_per_cal_op`` (events/sec
    divided by the larger adjacent calibration score).  On a noisy host,
    load bursts hit some reps and miss others; pairing each rep with a
    calibration measured seconds — not minutes — away makes the best
    rep's ratio converge to the unloaded engine-vs-host ratio, which is
    the quantity a regression gate can compare across runs and hosts.
    """
    if paired_cal:
        best: dict[str, Any] | None = None
        for _ in range(max(1, repeat)):
            # long calibration windows (comparable to one rep) so the
            # samples share the rep's load state instead of dodging it
            c0 = calibrate(repeat=1, n=400_000)
            row = _run_once(name, nops, profile=False, sample_heap=sample_heap)
            cal = max(c0, calibrate(repeat=1, n=400_000))
            row["cal_score"] = cal
            row["events_per_cal_op"] = row["events_per_sec"] / cal
            if best is None or row["events_per_cal_op"] > best["events_per_cal_op"]:
                best = row
        return best
    best = None
    for _ in range(max(1, repeat) - 1):
        row = _run_once(name, nops, profile=False, sample_heap=sample_heap)
        if best is None or row["wall_s"] < best["wall_s"]:
            best = row
    row = _run_once(name, nops, profile=profile, sample_heap=sample_heap)
    if best is not None and best["wall_s"] < row["wall_s"]:
        # keep the faster timing but the (only) profiled breakdown
        if "subsystems_s" in row:
            best["subsystems_s"] = row["subsystems_s"]
        row = best
    return row


def _run_once(
    name: str,
    nops: int,
    *,
    profile: bool,
    sample_heap: bool,
) -> dict[str, Any]:
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    env, run = WORKLOADS[name](nops)

    samples: list[int] = []
    stop = threading.Event()

    def sampler() -> None:
        while not stop.is_set():
            samples.append(len(env._heap))
            time.sleep(0.002)

    thread = threading.Thread(target=sampler, daemon=True)
    prof = cProfile.Profile() if profile else None
    eid0 = env._eid
    if sample_heap:
        thread.start()
    t0 = time.perf_counter()
    if prof is not None:
        prof.enable()
    run()
    if prof is not None:
        prof.disable()
    wall_s = time.perf_counter() - t0
    if sample_heap:
        stop.set()
        thread.join()

    events = env._eid - eid0
    row: dict[str, Any] = {
        "workload": name,
        "nops": nops,
        "events": events,
        "wall_s": wall_s,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "virtual_ns": env.now,
        "heap_max": max(samples) if samples else len(env._heap),
        "heap_mean": (sum(samples) / len(samples)) if samples else float(len(env._heap)),
        "heap_samples": len(samples),
    }
    if prof is not None:
        row["subsystems_s"] = _subsystem_breakdown(prof)
    return row


def format_par_stats(shard_stats: list[dict[str, Any]], wall_s: float) -> str:
    """Render a sharded run's wall-clock + per-shard events/sec table.

    ``shard_stats`` is :attr:`repro.sim.par.ParResult.shard_stats`:
    ``busy_s`` is the time a shard spent inside windows (its barrier
    wait excluded), so ``events/busy_s`` is that shard's engine rate and
    the gap between ``sum(busy_s)`` and ``shards * wall_s`` is the
    synchronization cost the lookahead didn't amortize.
    """
    lines = []
    total_events = sum(s["events"] for s in shard_stats)
    lines.append(
        f"  total  {total_events:>10} events in {wall_s:.3f}s wall "
        f"= {total_events / wall_s if wall_s > 0 else 0.0:>12,.0f} events/s")
    for s in shard_stats:
        lines.append(
            f"  shard{s['shard']:<2} {s['events']:>9} events busy {s['busy_s']:.3f}s "
            f"= {s['events_per_sec']:>12,.0f} events/s  "
            f"nodes={','.join(s['nodes'])}")
    return "\n".join(lines)


def _format_row(row: dict[str, Any]) -> str:
    lines = [
        f"{row['workload']:<6} {row['events']:>9} events in {row['wall_s']:.3f}s "
        f"= {row['events_per_sec']:>10,.0f} events/s   "
        f"(heap max {row['heap_max']}, mean {row['heap_mean']:.0f})"
    ]
    if "subsystems_s" in row:
        total = sum(row["subsystems_s"].values()) or 1.0
        for group, tt in row["subsystems_s"].items():
            lines.append(f"    {group:<9} {tt:7.3f}s  {100 * tt / total:5.1f}%")
    if "speedup" in row:
        lines[0] += f"   [{row['speedup']:.2f}x vs baseline]"
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.profile",
        description="Profile the DES engine's wall-clock hot path.",
    )
    parser.add_argument("workloads", nargs="*", default=None,
                        help=f"workloads to run (default: all of {sorted(WORKLOADS)})")
    parser.add_argument("--nops", type=int, default=300,
                        help="per-job operation count (default 300)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each workload N times, report the fastest "
                             "(use >=3 when gating on wall clock)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and report per-subsystem time")
    parser.add_argument("--json", metavar="PATH",
                        help="write the measurement rows as JSON")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare events/sec against a recorded baseline JSON")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="with --baseline: exit 1 if any workload's "
                             "events/sec is below this multiple of the baseline")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="record this run as the new baseline JSON")
    args = parser.parse_args(argv)

    names = args.workloads or sorted(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")

    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    normalize = baseline is not None or bool(args.write_baseline)
    rows = []
    failed = False
    for name in names:
        row = run_workload(name, nops=args.nops, profile=args.profile,
                           repeat=args.repeat, paired_cal=normalize)
        if baseline is not None:
            base = baseline.get("workloads", {}).get(name)
            if base:
                row["baseline_events_per_sec"] = base["events_per_sec"]
                base_ratio = base.get("events_per_cal_op")
                if base_ratio and row.get("events_per_cal_op"):
                    # host-normalized: cancel host-speed differences
                    row["speedup"] = row["events_per_cal_op"] / base_ratio
                else:
                    row["speedup"] = row["events_per_sec"] / base["events_per_sec"]
                if args.min_speedup is not None and row["speedup"] < args.min_speedup:
                    row["gate"] = f"FAIL (< {args.min_speedup}x)"
                    failed = True
        rows.append(row)
        print(_format_row(row))

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"rows": rows}, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.write_baseline:
        payload = {
            "recorded_with": "python -m repro.sim.profile --write-baseline",
            "nops": args.nops,
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "workloads": {
                r["workload"]: {
                    "events_per_sec": r["events_per_sec"],
                    "events": r["events"],
                    "cal_score": r.get("cal_score"),
                    "events_per_cal_op": r.get("events_per_cal_op"),
                }
                for r in rows
            },
        }
        with open(args.write_baseline, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if failed:
        print("perf gate FAILED", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
