"""Shared-resource primitives for the DES kernel.

- :class:`Resource` — counted capacity (e.g. a lock is capacity 1, a CPU
  pool is capacity N); FIFO grant order.
- :class:`PriorityResource` — like Resource but grants by (priority, fifo).
- :class:`Store` — a queue of Python objects with blocking put/get.
- :class:`FilterStore` — Store whose get() takes a predicate.
- :class:`Container` — a divisible quantity (bytes of free space, tokens).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .core import Environment, Event, NORMAL, URGENT

__all__ = ["Resource", "PriorityResource", "Store", "FilterStore", "Container"]


class _Request(Event):
    """A pending claim on a Resource; usable as a context manager."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._order += 1
        self._order = resource._order
        resource._queue.append(self)
        resource._trigger_grants()

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if not self._triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass


class Resource:
    """Counted shared resource with FIFO queuing."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: set[_Request] = set()
        self._queue: deque[_Request] = deque()
        self._order = 0
        # cumulative integral of `count` over time, for utilization accounting
        self._busy_ns = 0
        self._last_change = env.now

    # -- public API -----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self, priority: int = 0) -> _Request:
        return _Request(self, priority)

    def release(self, request: _Request) -> None:
        if request in self._users:
            self._account()
            self._users.discard(request)
            self._trigger_grants()
        else:
            request.cancel()

    def busy_time(self) -> int:
        """Integral of ``count`` over time, in grant-nanoseconds."""
        return self._busy_ns + (self.env.now - self._last_change) * len(self._users)

    # -- internals ------------------------------------------------------
    def _account(self) -> None:
        now = self.env.now
        self._busy_ns += (now - self._last_change) * len(self._users)
        self._last_change = now

    def _next_request(self) -> Optional[_Request]:
        return self._queue[0] if self._queue else None

    def _trigger_grants(self) -> None:
        while len(self._users) < self.capacity:
            req = self._next_request()
            if req is None:
                break
            self._remove(req)
            self._account()
            self._users.add(req)
            req.succeed(priority=URGENT)

    def _remove(self, req: _Request) -> None:
        self._queue.remove(req)


class PriorityResource(Resource):
    """Resource granting by (priority, FIFO); lower priority value first."""

    def _next_request(self) -> Optional[_Request]:
        if not self._queue:
            return None
        return min(self._queue, key=lambda r: (r.priority, r._order))


class Store:
    """Unbounded-or-bounded FIFO of items with blocking semantics."""

    def __init__(self, env: Environment, capacity: int | None = None) -> None:
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any, Optional[Callable[[Any], None]]]] = deque()
        self._watchers: list[Event] = []

    def __len__(self) -> int:
        return len(self.items)

    def when_nonempty(self) -> Event:
        """Non-consuming wait: fires when the store holds >= 1 item.

        Unlike :meth:`get`, the item stays in the store — used by pollers
        (LabStor workers) that watch many queues and pop explicitly.
        """
        ev = Event(self.env)
        if self.items:
            ev.succeed()
        else:
            self._watchers.append(ev)
        return ev

    def _notify_watchers(self) -> None:
        if self.items and self._watchers:
            watchers, self._watchers = self._watchers, []
            for ev in watchers:
                ev.succeed()

    def put(self, item: Any, on_accept: Callable[[Any], None] | None = None) -> Event:
        """Returns an event that fires once the item is accepted.

        ``on_accept`` runs synchronously at the moment the item actually
        enters the store (possibly later than the put, if the store is at
        capacity) — the seam queue pairs use to keep their accounting tied
        to acceptance rather than to the put call.
        """
        ev = Event(self.env)
        self._putters.append((ev, item, on_accept))
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Returns an event that fires with the next item."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Any | None:
        """Non-blocking pop; None when empty."""
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return item
        return None

    def _accept(self) -> None:
        while self._putters and (self.capacity is None or len(self.items) < self.capacity):
            ev, item, on_accept = self._putters.popleft()
            self.items.append(item)
            if on_accept is not None:
                on_accept(item)
            ev.succeed(priority=URGENT)

    def _serve(self) -> None:
        while self._getters and self.items:
            ev = self._getters.popleft()
            ev.succeed(self.items.popleft(), priority=URGENT)

    def _dispatch(self) -> None:
        self._accept()
        self._serve()
        self._accept()
        self._notify_watchers()
        t = self.env.tracer
        if t.audit:
            t.emit(self.env._now, "san.store", store=self)


class FilterStore(Store):
    """Store whose getters can demand items matching a predicate."""

    def __init__(self, env: Environment, capacity: int | None = None) -> None:
        super().__init__(env, capacity)
        self._filter_getters: deque[tuple[Event, Callable[[Any], bool]]] = deque()

    def get(self, filter: Callable[[Any], bool] | None = None) -> Event:  # noqa: A002
        if filter is None:
            return super().get()
        ev = Event(self.env)
        self._filter_getters.append((ev, filter))
        self._dispatch()
        return ev

    def _serve(self) -> None:
        super()._serve()
        served = True
        while served:
            served = False
            for pair in list(self._filter_getters):
                ev, pred = pair
                for item in self.items:
                    if pred(item):
                        self.items.remove(item)
                        self._filter_getters.remove(pair)
                        ev.succeed(item, priority=URGENT)
                        served = True
                        break


class Container:
    """A divisible quantity with blocking get (put never blocks)."""

    def __init__(self, env: Environment, init: int = 0, capacity: int | None = None) -> None:
        if init < 0:
            raise SimulationError("Container initial level must be >= 0")
        self.env = env
        self.capacity = capacity
        self.level = init
        self._getters: deque[tuple[Event, int]] = deque()

    def put(self, amount: int) -> None:
        if amount < 0:
            raise SimulationError("Container.put amount must be >= 0")
        self.level += amount
        if self.capacity is not None:
            self.level = min(self.level, self.capacity)
        self._dispatch()

    def get(self, amount: int) -> Event:
        if amount < 0:
            raise SimulationError("Container.get amount must be >= 0")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._getters and self._getters[0][1] <= self.level:
            ev, amount = self._getters.popleft()
            self.level -= amount
            ev.succeed(amount, priority=URGENT)
