"""Shared-resource primitives for the DES kernel.

- :class:`Resource` — counted capacity (e.g. a lock is capacity 1, a CPU
  pool is capacity N); FIFO grant order.
- :class:`PriorityResource` — like Resource but grants by (priority, fifo).
- :class:`Store` — a queue of Python objects with blocking put/get.
- :class:`FilterStore` — Store whose get() takes a predicate.
- :class:`Container` — a divisible quantity (bytes of free space, tokens).
"""

from __future__ import annotations

from collections import deque
from sys import getrefcount
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .core import Environment, Event, NORMAL, POOL_MAX, URGENT

__all__ = ["Resource", "PriorityResource", "Store", "FilterStore", "Container"]


class _Request(Event):
    """A pending claim on a Resource; usable as a context manager."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        # Inlined Event.__init__ (same field order, same audit emit): the
        # request/grant cycle runs once per work() call, so the extra
        # super() hop is measurable on the engine hot path.
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        if env._audit:
            env.tracer.emit(env._now, "san.ev_new", event=self)
        self.resource = resource
        self.priority = priority
        resource._order = self._order = resource._order + 1
        resource._queue.append(self)
        resource._trigger_grants()

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if not self._triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass


class Resource:
    """Counted shared resource with FIFO queuing."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: set[_Request] = set()
        self._queue: deque[_Request] = deque()
        self._order = 0
        # request free list: grant/release cycles dominate event allocation
        # on the engine hot path (one _Request per ExecContext.work call),
        # and the engine's own recycler can never reclaim them — at
        # processing time a request is still referenced by the users set
        # and the waiting frame.  Release() is the natural reclaim point.
        self._req_pool: list[_Request] = []
        # cumulative integral of `count` over time, for utilization accounting
        self._busy_ns = 0
        self._last_change = env.now

    # -- public API -----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self, priority: int = 0) -> _Request:
        pool = self._req_pool
        if pool and not self.env._audit:
            req = pool.pop()
            req.callbacks = []
            req._value = None
            req._ok = True
            req._triggered = False
            req._processed = False
            req._defused = False
            req.priority = priority
            self._order = req._order = self._order + 1
            self._queue.append(req)
            self.env.pool_reused += 1
            self._trigger_grants()
            return req
        return _Request(self, priority)

    def release(self, request: _Request) -> None:
        users = self._users
        if request in users:
            # inlined self._account(): release is once-per-work-call hot
            now = self.env._now
            self._busy_ns += (now - self._last_change) * len(users)
            self._last_change = now
            users.discard(request)
            self._trigger_grants()
            # Reclaim the request when the releasing frame holds the sole
            # surviving reference (its local + our parameter + getrefcount's
            # argument).  `_processed` guards the crash/interrupt path: a
            # granted-but-unprocessed request may still sit on a scheduling
            # lane and must not be reused under it.  Disabled under audit so
            # the sanitizer sees every allocation (mirrors the engine pools).
            if (
                request._processed
                and not self.env._audit
                and len(self._req_pool) < POOL_MAX
                and getrefcount(request) == 3
            ):
                self._req_pool.append(request)
                self.env.pool_returned += 1
        else:
            request.cancel()

    def busy_time(self) -> int:
        """Integral of ``count`` over time, in grant-nanoseconds."""
        return self._busy_ns + (self.env.now - self._last_change) * len(self._users)

    # -- internals ------------------------------------------------------
    def _account(self) -> None:
        now = self.env._now
        self._busy_ns += (now - self._last_change) * len(self._users)
        self._last_change = now

    def _pop_next(self) -> _Request:
        """Remove and return the next request to grant (queue non-empty)."""
        return self._queue.popleft()

    def _trigger_grants(self) -> None:
        users = self._users
        queue = self._queue
        capacity = self.capacity
        if queue and len(users) < capacity:
            # one accounting flush covers every grant below: they all land
            # at the same instant, so after the first flush the delta is
            # zero — identical math, one inlined `_account` per batch
            env = self.env
            now = env._now
            self._busy_ns += (now - self._last_change) * len(users)
            self._last_change = now
            while queue and len(users) < capacity:
                req = self._pop_next()
                users.add(req)
                # inlined req.succeed(None, URGENT): a queued request is
                # never triggered and its _ok/_value are still pristine
                req._triggered = True
                env._eid = req._seid = env._eid + 1
                env._urgent.append(req)


class PriorityResource(Resource):
    """Resource granting by (priority, FIFO); lower priority value first."""

    def _pop_next(self) -> _Request:
        req = min(self._queue, key=lambda r: (r.priority, r._order))
        self._queue.remove(req)
        return req


class Store:
    """Unbounded-or-bounded FIFO of items with blocking semantics."""

    #: shadowed by FilterStore with a real deque; the class-level empty
    #: tuple lets the put/get fast paths test "no filter getters" with a
    #: plain attribute load on ordinary Stores
    _filter_getters: Any = ()

    def __init__(self, env: Environment, capacity: int | None = None) -> None:
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any, Optional[Callable[[Any], None]]]] = deque()
        self._watchers: list[Event] = []

    def __len__(self) -> int:
        return len(self.items)

    def when_nonempty(self) -> Event:
        """Non-consuming wait: fires when the store holds >= 1 item.

        Unlike :meth:`get`, the item stays in the store — used by pollers
        (LabStor workers) that watch many queues and pop explicitly.
        """
        ev = self.env.event()
        if self.items:
            ev.succeed()
        else:
            self._watchers.append(ev)
        return ev

    def _notify_watchers(self) -> None:
        if self.items and self._watchers:
            watchers, self._watchers = self._watchers, []
            for ev in watchers:
                ev.succeed()

    def put(self, item: Any, on_accept: Callable[[Any], None] | None = None) -> Event:
        """Returns an event that fires once the item is accepted.

        ``on_accept`` runs synchronously at the moment the item actually
        enters the store (possibly later than the put, if the store is at
        capacity) — the seam queue pairs use to keep their accounting tied
        to acceptance rather than to the put call.
        """
        env = self.env
        ev = env.event()
        if not self._putters and (self.capacity is None or len(self.items) < self.capacity):
            # Fast path: the store accepts immediately.  Byte-for-byte the
            # same event/eid sequence _dispatch would produce (accept event
            # first, then any getter serves), minus the putter-deque round
            # trip.
            self.items.append(item)
            if on_accept is not None:
                on_accept(item)
            ev._triggered = True
            env._eid = ev._seid = env._eid + 1
            env._urgent.append(ev)
            if self._getters or self._filter_getters:
                self._serve()
                if self._putters:
                    self._accept()
            if self.items and self._watchers:
                self._notify_watchers()
            if env._audit:
                env.tracer.emit(env._now, "san.store", store=self)
            return ev
        self._putters.append((ev, item, on_accept))
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Returns an event that fires with the next item."""
        env = self.env
        ev = env.event()
        if self.items and not self._getters and not self._putters and not self._filter_getters:
            # Fast path: an item is ready and nobody is queued ahead.
            # Identical to _dispatch serving this getter (pending filter
            # getters never match a stored item — _dispatch runs after
            # every put — so popping FIFO here cannot starve one).
            ev._triggered = True
            ev._value = self.items.popleft()
            env._eid = ev._seid = env._eid + 1
            env._urgent.append(ev)
            if self.items and self._watchers:
                self._notify_watchers()
            if env._audit:
                env.tracer.emit(env._now, "san.store", store=self)
            return ev
        if not self.items and not self._putters:
            # Multi-waiter fast path: the store is empty and nothing is
            # queued to accept, so _dispatch would scan all three stages
            # and do nothing — park the getter directly.  This is the
            # steady state of a worker pool blocking on a drained queue
            # (N getters stack up here between bursts).
            self._getters.append(ev)
            if env._audit:
                env.tracer.emit(env._now, "san.store", store=self)
            return ev
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Any | None:
        """Non-blocking pop; None when empty."""
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return item
        return None

    def _accept(self) -> None:
        env = self.env
        while self._putters and (self.capacity is None or len(self.items) < self.capacity):
            ev, item, on_accept = self._putters.popleft()
            self.items.append(item)
            if on_accept is not None:
                on_accept(item)
            # inlined ev.succeed(None, URGENT); ev is store-private pending
            ev._triggered = True
            env._eid = ev._seid = env._eid + 1
            env._urgent.append(ev)

    def _serve(self) -> None:
        env = self.env
        getters = self._getters
        items = self.items
        while getters and items:
            ev = getters.popleft()
            # inlined ev.succeed(item, URGENT)
            ev._triggered = True
            ev._value = items.popleft()
            env._eid = ev._seid = env._eid + 1
            env._urgent.append(ev)

    def _dispatch(self) -> None:
        # Guarded version of accept/serve/accept: each stage only runs
        # when it can possibly make progress (Store._serve and
        # FilterStore._serve both require items; the re-accept only
        # matters if _serve freed capacity).  Must stay observably
        # identical to the unguarded sequence — skipped stages are
        # exactly the no-op ones.
        if self._putters:
            self._accept()
        if self.items:
            self._serve()
            if self._putters:
                self._accept()
            if self.items and self._watchers:
                self._notify_watchers()
        env = self.env
        if env._audit:
            env.tracer.emit(env._now, "san.store", store=self)


class FilterStore(Store):
    """Store whose getters can demand items matching a predicate."""

    def __init__(self, env: Environment, capacity: int | None = None) -> None:
        super().__init__(env, capacity)
        self._filter_getters: deque[tuple[Event, Callable[[Any], bool]]] = deque()

    def get(self, filter: Callable[[Any], bool] | None = None) -> Event:  # noqa: A002
        if filter is None:
            return super().get()
        ev = self.env.event()
        self._filter_getters.append((ev, filter))
        self._dispatch()
        return ev

    def _serve(self) -> None:
        super()._serve()
        served = True
        while served:
            served = False
            for pair in list(self._filter_getters):
                ev, pred = pair
                for item in self.items:
                    if pred(item):
                        self.items.remove(item)
                        self._filter_getters.remove(pair)
                        ev.succeed(item, URGENT)
                        served = True
                        break


class Container:
    """A divisible quantity with blocking get (put never blocks)."""

    def __init__(self, env: Environment, init: int = 0, capacity: int | None = None) -> None:
        if init < 0:
            raise SimulationError("Container initial level must be >= 0")
        self.env = env
        self.capacity = capacity
        self.level = init
        self._getters: deque[tuple[Event, int]] = deque()

    def put(self, amount: int) -> None:
        if amount < 0:
            raise SimulationError("Container.put amount must be >= 0")
        self.level += amount
        if self.capacity is not None:
            self.level = min(self.level, self.capacity)
        self._dispatch()

    def get(self, amount: int) -> Event:
        if amount < 0:
            raise SimulationError("Container.get amount must be >= 0")
        ev = self.env.event()
        self._getters.append((ev, amount))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._getters and self._getters[0][1] <= self.level:
            ev, amount = self._getters.popleft()
            self.level -= amount
            ev.succeed(amount, URGENT)
