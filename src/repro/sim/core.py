"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine in the SimPy style.
Every LabStor component (workers, clients, devices, the kernel substrate)
is a :class:`Process` driven by an :class:`Environment` whose clock is an
integer nanosecond counter.

Determinism: events scheduled for the same timestamp are executed in
(priority, insertion-order) order, so a seeded run always produces the
same trace.

Wall-clock hot path: this module is the floor under every events/sec
number the repro can produce (see ``python -m repro.sim.profile``), so
the per-event path is deliberately flat:

- tracer gate flags are mirrored into ``env._audit`` / ``env._obs`` /
  ``env._trace`` (see :class:`~repro.sim.trace.Tracer`), so allocation
  and scheduling test one attribute instead of ``env.tracer.audit``;
- :class:`Timeout` and :class:`Condition` objects are recycled through
  per-environment free lists.  An object is returned to its pool only
  when the engine holds the *sole* remaining reference at the end of its
  processing step (``sys.getrefcount`` guard), so any event retained by
  user code, a waiter list, or a condition is never recycled under it.
  Pooling is disabled while a sanitizer is attached (``env._audit``) so
  the event-lifecycle audit sees every allocation, and it never changes
  scheduling: recycled events take fresh insertion ids from the same
  ``_eid`` counter, leaving virtual-time order — and therefore the
  determinism digests — untouched;
- ``run()`` inlines the per-event step (one function call per event is
  ~10% of the engine's disabled-path budget).  ``step()`` stays the
  single-event reference implementation with identical semantics.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError
from .trace import Tracer

# Event priorities. Lower value runs first at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

#: free-list cap per event class; beyond this, objects fall to the GC.
#: Sized above the largest in-flight burst the reference workloads produce
#: (a fio sweep holds ~an iodepth's worth of window timeouts per client),
#: so a burst returning all at once is retained instead of dropped.
POOL_MAX = 1024

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "LOW",
]


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload (e.g. the reason a worker was
    decommissioned by the Work Orchestrator).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Life-cycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran).  An event succeeds with a value or fails
    with an exception; waiting processes receive the value or have the
    exception thrown into them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused",
                 "_seid")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False
        if env._audit:
            env.tracer.emit(env._now, "san.ev_new", event=self)

    # -- state inspection ---------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        if priority:
            if priority == 1:
                self._seid = eid
                env._due.append(self)
            else:
                heappush(env._heap, (env._now, priority, eid, self))
        else:
            # URGENT now-events take the FIFO fast lane (see _schedule)
            self._seid = eid
            env._urgent.append(self)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.env._schedule(self, delay=0, priority=priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay = int(delay)
        self._triggered = True
        self._ok = True
        self._value = value
        env._eid = eid = env._eid + 1
        if delay:
            heappush(env._heap, (env._now + delay, NORMAL, eid, self))
        else:
            self._seid = eid
            env._due.append(self)


class Initialize(Event):
    """Internal: kicks a freshly created process on the next step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        # inlined Event.__init__ (same field order, same audit emit)
        self.env = env
        self.callbacks = [process._rcb]
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        if env._audit:
            env.tracer.emit(env._now, "san.ev_new", event=self)
        env._eid = eid = env._eid + 1
        self._seid = eid
        env._urgent.append(self)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    The generator yields :class:`Event` instances; each ``yield`` suspends
    the process until the yielded event is processed.  ``return value``
    inside the generator succeeds the process event with that value.
    """

    __slots__ = ("_generator", "_target", "name", "daemon", "_rcb")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: str | None = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        # inlined Event.__init__ (same field order, same audit emit)
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        if env._audit:
            env.tracer.emit(env._now, "san.ev_new", event=self)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: daemon processes (worker loops, pollers) are expected to be
        #: still waiting at teardown; the sanitizer's leak audit skips them
        self.daemon = daemon
        # the one bound `_resume` this process ever subscribes with — a
        # fresh bound method per yield is pure allocator traffic (they
        # compare equal, so interrupt()'s remove() keeps working)
        self._rcb = self._resume
        env._init_event(self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._triggered = True
        event.callbacks = [self._rcb]
        self.env._schedule(event, delay=0, priority=URGENT)
        # Unsubscribe from the event the process was waiting on: the wait
        # continues to stand (SimPy semantics: the interrupted process may
        # re-yield the same event), but this resume path must not fire twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._rcb)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        env = self.env
        if env._audit:
            env.tracer.emit(env._now, "san.resume", process=self, event=event)
        # Drop the subscription ref now: the wait is over, and a stale
        # _target would keep the processed event out of the free lists.
        self._target = None
        env._active_proc = self
        generator = self._generator
        try:
            while True:
                try:
                    if event._ok:
                        next_event = generator.send(event._value)
                    else:
                        event._defused = True
                        next_event = generator.throw(event._value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    self._triggered = True
                    env._eid = eid = env._eid + 1
                    self._seid = eid
                    env._due.append(self)
                    break
                except BaseException as exc:  # noqa: BLE001 - process crashed
                    self._ok = False
                    self._value = exc
                    self._triggered = True
                    env._eid = eid = env._eid + 1
                    self._seid = eid
                    env._due.append(self)
                    break

                try:
                    callbacks = next_event.callbacks
                except AttributeError:
                    raise SimulationError(
                        f"process {self.name!r} yielded {next_event!r}, expected an Event"
                    ) from None
                if next_event.env is not env:
                    raise SimulationError("yielded event belongs to a different Environment")
                if callbacks is not None:
                    # Event still pending or scheduled: subscribe and suspend.
                    callbacks.append(self._rcb)
                    self._target = next_event
                    break
                # Event already processed: loop and feed its value straight in.
                event = next_event
        finally:
            env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'dead' if self._triggered else 'alive'}>"


class ConditionValue:
    """Dict-like result of :class:`AllOf` / :class:`AnyOf` conditions."""

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events}


class Condition(Event):
    """Composite event over several sub-events (used by all_of / any_of)."""

    __slots__ = ("_events", "_count", "_needed")

    def __init__(self, env: "Environment", events: Iterable[Event], needed: int) -> None:
        # inlined Event.__init__ (same field order, same audit emit)
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        if env._audit:
            env.tracer.emit(env._now, "san.ev_new", event=self)
        self._arm(list(events), needed)

    def _arm(self, events: list[Event], needed: int) -> None:
        """Bind to a fresh set of sub-events (shared by init and pool reuse)."""
        self._events = events
        self._count = 0
        self._needed = needed if needed >= 0 else len(events)
        if not events:
            self.succeed(ConditionValue([]))
            return
        env = self.env
        # Subscribe to *every* sub-event, even after the condition has
        # already triggered: _check must keep watching so a late failure
        # on an unwatched sub-event is defused instead of crashing step().
        # The bound method is deliberately created fresh per arm: each live
        # subscription then holds a reference chain back to this condition,
        # which is exactly what keeps the refcount recycler from reclaiming
        # a condition that a pending loser could still call back into.
        check = self._check
        for ev in events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple Environments")
            if ev.callbacks is None:
                check(ev)
            else:
                ev.callbacks.append(check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                # The condition already fired (e.g. an any_of won): absorb
                # the late failure of a now-unwatched sub-event.
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self._release_losers()
            self.fail(event._value)
            return
        self._count += 1
        if self._count >= self._needed:
            value = ConditionValue([ev for ev in self._events if ev._triggered])
            self._release_losers()
            self.succeed(value)

    def _release_losers(self) -> None:
        """Cut the references that tie this condition to its still-pending
        sub-events once the outcome is decided.

        The subscription on a pending loser exists only to defuse a late
        *failure* (see _arm).  A Timeout can never fail — it is born
        triggered-ok — so its callback entry is pure ballast, and worse, it
        forms a cycle (timeout -> _check -> condition -> value -> timeout
        for an any_of window) that keeps every poll-window timeout out of
        the free lists until GC.  Failable sub-events keep their entry.
        """
        check = self._check
        for ev in self._events:
            cbs = ev.callbacks
            if cbs is not None and type(ev) is Timeout:
                try:
                    cbs.remove(check)
                except ValueError:
                    pass
        self._events = ()


class Environment:
    """The simulation environment: clock, event heap, process bookkeeping."""

    def __init__(self, initial_time: int = 0, tracer: Tracer | None = None) -> None:
        self._now = int(initial_time)
        self._heap: list[tuple[int, int, int, Event]] = []
        # URGENT zero-delay events (grants, store accepts, process kicks)
        # bypass the heap: they are always scheduled *at the current time*
        # with the highest priority, so they sort before every heap entry
        # and among themselves by insertion id — exactly deque FIFO order.
        # They are also the heap's worst case (a new minimum on every push),
        # so the fast lane saves two full-depth sift passes per event.
        # Lane entries are bare events; the insertion id rides on the
        # event itself (``_seid``) so no per-schedule tuple is allocated.
        self._urgent: deque[Event] = deque()
        # Same fast lane for NORMAL zero-delay events (watcher/wake fires,
        # process completions, timeout(0)).  Correct because eids grow
        # monotonically with virtual time: a same-time NORMAL heap entry
        # was necessarily scheduled at an *earlier* virtual time (it had a
        # positive delay), so its eid is smaller than every _due entry's
        # and the heap-vs-deque tie always resolves to the heap.
        self._due: deque[Event] = deque()
        self._eid = 0
        self._active_proc: Optional[Process] = None
        # cached tracer gate flags; kept in sync by Tracer's flag setters
        self._trace = False
        self._audit = False
        self._obs = False
        # free lists (see module docstring); counters are public so the
        # stress tests can assert the pool actually cycles
        self._event_pool: list[Event] = []
        self._timeout_pool: list[Timeout] = []
        self._cond_pool: list[Condition] = []
        self._proc_pool: list[Process] = []
        self._init_pool: list[Initialize] = []
        self._pools: dict[type, list] = {
            Event: self._event_pool,
            Timeout: self._timeout_pool,
            Condition: self._cond_pool,
            Process: self._proc_pool,
            Initialize: self._init_pool,
        }
        self.pool_reused = 0
        self.pool_returned = 0
        #: shared pub/sub seam for spans and sanitizer audit hooks
        self.tracer = tracer if tracer is not None else Tracer()
        self.tracer._attach_env(self)

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        pool = self._event_pool
        if pool and not self._audit:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev._ok = True
            ev._triggered = False
            ev._processed = False
            ev._defused = False
            self.pool_reused += 1
            return ev
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and not self._audit:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            to = pool.pop()
            to.callbacks = []
            to._value = value
            to._ok = True
            to._triggered = True
            to._processed = False
            to._defused = False
            to.delay = delay = int(delay)
            self._eid = eid = self._eid + 1
            if delay:
                heappush(self._heap, (self._now + delay, NORMAL, eid, to))
            else:
                to._seid = eid
                self._due.append(to)
            self.pool_reused += 1
            return to
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: str | None = None, daemon: bool = False
    ) -> Process:
        pool = self._proc_pool
        if pool and not self._audit:
            if not hasattr(generator, "throw"):
                raise SimulationError(f"{generator!r} is not a generator")
            proc = pool.pop()
            proc.callbacks = []
            proc._value = None
            proc._ok = True
            proc._triggered = False
            proc._processed = False
            proc._defused = False
            proc._generator = generator
            proc._target = None
            proc.name = name or getattr(generator, "__name__", "process")
            proc.daemon = daemon
            self.pool_reused += 1
            self._init_event(proc)
            return proc
        return Process(self, generator, name=name, daemon=daemon)

    def _init_event(self, process: Process) -> None:
        """Schedule the URGENT kick for a new process (pooled when possible)."""
        pool = self._init_pool
        if pool and not self._audit:
            ini = pool.pop()
            ini.callbacks = [process._rcb]
            ini._value = None
            ini._ok = True
            ini._triggered = True
            ini._processed = False
            ini._defused = False
            self._eid = eid = self._eid + 1
            ini._seid = eid
            self._urgent.append(ini)
            self.pool_reused += 1
        else:
            Initialize(self, process)

    def all_of(self, events: Iterable[Event]) -> Condition:
        events = list(events)
        return self._condition(events, needed=len(events))

    def any_of(self, events: Iterable[Event]) -> Condition:
        return self._condition(list(events), needed=1)

    def _condition(self, events: list[Event], needed: int) -> Condition:
        pool = self._cond_pool
        if pool and not self._audit:
            cond = pool.pop()
            cond.callbacks = []
            cond._value = None
            cond._ok = True
            cond._triggered = False
            cond._processed = False
            cond._defused = False
            cond._arm(events, needed)
            self.pool_reused += 1
            return cond
        return Condition(self, events, needed)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: int, priority: int = NORMAL) -> None:
        self._eid = eid = self._eid + 1
        if delay == 0:
            if priority == NORMAL:
                event._seid = eid
                self._due.append(event)
                return
            if priority == URGENT:
                event._seid = eid
                self._urgent.append(event)
                return
        heappush(self._heap, (self._now + delay, priority, eid, event))

    def peek(self) -> int:
        """Time of the next scheduled event, or a huge sentinel if empty."""
        if self._urgent or self._due:
            return self._now
        return self._heap[0][0] if self._heap else 2**63

    def _pop_event(self) -> tuple[int, int, Event]:
        """Pop the next event in strict (time, priority, eid) order.

        Returns ``(prio, eid, event)`` with ``self._now`` advanced.  The
        urgent lane wins unless the heap top is an URGENT event at the
        current time with a smaller insertion id (only possible for an
        externally scheduled URGENT event with a positive delay).  The
        due lane loses any same-time tie against the heap: a same-time
        heap entry either has higher priority or — having been scheduled
        at an earlier virtual time — a smaller insertion id.
        """
        heap = self._heap
        urgent = self._urgent
        if urgent:
            if heap:
                top = heap[0]
                if top[1] == 0 and top[0] == self._now and top[2] < urgent[0]._seid:
                    heappop(heap)
                    return 0, top[2], top[3]
            event = urgent.popleft()
            return 0, event._seid, event
        due = self._due
        if due:
            if heap:
                top = heap[0]
                if top[0] == self._now and top[1] <= 1:
                    heappop(heap)
                    return top[1], top[2], top[3]
            event = due.popleft()
            return 1, event._seid, event
        try:
            when, prio, eid, event = heappop(heap)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        return prio, eid, event

    def _recycle(self, event: Event) -> None:
        """Return a just-processed engine-owned event to its free list.

        Only when the engine holds the sole surviving reference (the
        caller's local plus the helper frame plus getrefcount's argument;
        a Process counts one more for its cached ``_rcb`` self-reference):
        anything retained by user code, a waiter, or a condition keeps its
        object.  Disabled under audit so the sanitizer sees every
        allocation.
        """
        cls = event.__class__
        pool = self._pools.get(cls)
        if pool is None or len(pool) >= POOL_MAX:
            return
        if getrefcount(event) != (4 if cls is Process else 3):
            return
        event._value = None
        if cls is Condition:
            event._events = ()
        elif cls is Process:
            event._generator = None
            event._target = None
        pool.append(event)
        self.pool_returned += 1

    def step(self) -> None:
        """Process exactly one event."""
        _prio, _eid, event = self._pop_event()
        if self._audit:
            self.tracer.emit(self._now, "san.step", kind=type(event).__name__,
                             name=getattr(event, "name", None), ok=event._ok, prio=_prio)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for cb in callbacks:
                cb(event)
        if not event._ok and not event._defused:
            # An unhandled failure: crash the simulation loudly rather than
            # silently dropping the error.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
        if not self._audit:
            self._recycle(event)

    def run(self, until: Any = None, *, until_window: Optional[int] = None) -> Any:
        """Run until ``until`` (a time, an Event, or heap exhaustion).

        Returns the event's value if ``until`` is an Event.

        ``until_window=W`` is the conservative-parallel entry: process
        every event with time **strictly below** ``W`` (the delay-0 lanes
        are always drained — they live at ``now < W``), then return with
        the clock left at the last processed event.  Unlike ``until=``,
        the clock is *not* advanced to ``W`` (the next window must see
        ``peek()`` report the true next event time) and an empty heap is
        not an error (an idle shard simply has nothing below the bound).
        """
        stop_at: Optional[int] = None
        stop_event: Optional[Event] = None
        win: Optional[int] = None
        if until_window is not None:
            if until is not None:
                raise SimulationError("run(): until= and until_window= are mutually exclusive")
            win = int(until_window)
            if win <= self._now:
                raise SimulationError(
                    f"run(until_window={win}) is not in the future (now={self._now})")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if not stop_event._ok and not stop_event._defused:
                    raise stop_event._value
                return stop_event._value
            stop_event.callbacks.append(self._stop_cb)
        else:
            stop_at = int(until)
            if stop_at <= self._now:
                raise SimulationError(f"run(until={stop_at}) is not in the future (now={self._now})")

        # The inlined event loop: semantically identical to
        #   while self._heap or self._urgent or self._due: self.step()
        # but without the per-event call and attribute traffic.  Any change
        # here must be mirrored in step()/_pop_event() (and vice versa).
        heap = self._heap
        urgent = self._urgent
        due = self._due
        urgent_pop = urgent.popleft
        due_pop = due.popleft
        pools = self._pools
        pools_get = pools.get
        proc_pool = self._proc_pool
        pool_max = POOL_MAX
        pop_heap = heappop
        refcount = getrefcount
        now = self._now
        try:
            while True:
                if urgent:
                    # Fast lane; the heap top only outranks it in the
                    # external URGENT-with-delay corner (see _pop_event).
                    if heap:
                        top = heap[0]
                        if top[1] == 0 and top[0] == now and top[2] < urgent[0]._seid:
                            pop_heap(heap)
                            _prio, event = 0, top[3]
                        else:
                            event = urgent_pop()
                            _prio = 0
                    else:
                        event = urgent_pop()
                        _prio = 0
                elif due:
                    # NORMAL delay-0 lane; a same-time heap entry always
                    # outranks it (higher priority or smaller eid — see
                    # _pop_event).
                    if heap:
                        top = heap[0]
                        if top[0] == now and top[1] <= 1:
                            pop_heap(heap)
                            _prio, event = top[1], top[3]
                        else:
                            event = due_pop()
                            _prio = 1
                    else:
                        event = due_pop()
                        _prio = 1
                elif heap:
                    if stop_at is not None and heap[0][0] > stop_at:
                        self._now = stop_at
                        break
                    if win is not None and heap[0][0] >= win:
                        break
                    when, _prio, _eid, event = pop_heap(heap)
                    if when < now:
                        raise SimulationError("event scheduled in the past")
                    self._now = now = when
                else:
                    break
                audit = self._audit
                if audit:
                    self.tracer.emit(self._now, "san.step", kind=type(event).__name__,
                                     name=getattr(event, "name", None),
                                     ok=event._ok, prio=_prio)
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                    # a callback may have re-entered run() (client connect
                    # handshakes during build helpers) — re-sync the local
                    # clock mirror before the next lane/heap comparison
                    now = self._now
                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
                if not audit:
                    # inlined _recycle (refcount == 2: just `event` + the
                    # getrefcount argument — no helper frame here).  The
                    # refcount test runs first: it is one C call and rejects
                    # most non-recyclable events before any dict traffic.
                    # A Process carries its cached `_rcb` bound method, a
                    # deliberate self-cycle, so its sole-reference count is
                    # one higher.
                    rc = refcount(event)
                    if rc == 2:
                        cls = event.__class__
                        pool = pools_get(cls)
                        if pool is not None and len(pool) < pool_max:
                            event._value = None
                            if cls is Condition:
                                event._events = ()
                            pool.append(event)
                            self.pool_returned += 1
                    elif rc == 3 and event.__class__ is Process:
                        pool = proc_pool
                        if len(pool) < pool_max:
                            event._value = None
                            event._generator = None
                            event._target = None
                            pool.append(event)
                            self.pool_returned += 1
        except StopSimulation:
            assert stop_event is not None
            if not stop_event._ok:
                # re-raise from the original cause: this suppresses the
                # StopSimulation context without clobbering an exception
                # chain the failure already carries (retry giveups etc.)
                raise stop_event._value from stop_event._value.__cause__
            return stop_event._value
        if stop_event is not None and not stop_event._triggered:
            raise SimulationError("run() ran out of events before the awaited event fired")
        if stop_event is not None:
            if not stop_event._ok and not stop_event._defused:
                raise stop_event._value
            return stop_event._value
        return None

    def _stop_cb(self, event: Event) -> None:
        """Armed on ``run(until=event)``'s stop event.

        Must not raise here: a raise mid-callback-loop would drop the stop
        event's remaining callbacks, so other processes waiting on the same
        event would never resume.  Instead schedule an URGENT sentinel whose
        processing raises after the stop event's callback loop completed.
        """
        if not event._ok:
            # run() re-raises this failure to its caller once the sentinel
            # fires; defuse it here or step()'s unhandled-failure crash
            # would preempt the sentinel and leave it stale in the heap.
            event._defused = True
        sentinel = Event(self)
        sentinel._triggered = True
        sentinel._ok = True
        sentinel.callbacks = [_raise_stop]
        self._schedule(sentinel, delay=0, priority=URGENT)


def _raise_stop(event: Event) -> None:
    raise StopSimulation()
