"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine in the SimPy style.
Every LabStor component (workers, clients, devices, the kernel substrate)
is a :class:`Process` driven by an :class:`Environment` whose clock is an
integer nanosecond counter.

Determinism: events scheduled for the same timestamp are executed in
(priority, insertion-order) order, so a seeded run always produces the
same trace.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError
from .trace import Tracer

# Event priorities. Lower value runs first at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "LOW",
]


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload (e.g. the reason a worker was
    decommissioned by the Work Orchestrator).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Life-cycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran).  An event succeeds with a value or fails
    with an exception; waiting processes receive the value or have the
    exception thrown into them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False
        t = env.tracer
        if t.audit:
            t.emit(env._now, "san.ev_new", event=self)

    # -- state inspection ---------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=0, priority=priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.env._schedule(self, delay=0, priority=priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = int(delay)
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=self.delay, priority=NORMAL)


class Initialize(Event):
    """Internal: kicks a freshly created process on the next step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._triggered = True
        self._ok = True
        self._value = None
        env._schedule(self, delay=0, priority=URGENT)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    The generator yields :class:`Event` instances; each ``yield`` suspends
    the process until the yielded event is processed.  ``return value``
    inside the generator succeeds the process event with that value.
    """

    __slots__ = ("_generator", "_target", "name", "daemon")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: str | None = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: daemon processes (worker loops, pollers) are expected to be
        #: still waiting at teardown; the sanitizer's leak audit skips them
        self.daemon = daemon
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._triggered = True
        event.callbacks = [self._resume]
        self.env._schedule(event, delay=0, priority=URGENT)
        # Unsubscribe from the event the process was waiting on: the wait
        # continues to stand (SimPy semantics: the interrupted process may
        # re-yield the same event), but this resume path must not fire twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        t = self.env.tracer
        if t.audit:
            t.emit(self.env._now, "san.resume", process=self, event=event)
        self.env._active_proc = self
        try:
            while True:
                try:
                    if event._ok:
                        next_event = self._generator.send(event._value)
                    else:
                        event._defused = True
                        next_event = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    self._triggered = True
                    self.env._schedule(self, delay=0, priority=NORMAL)
                    break
                except BaseException as exc:  # noqa: BLE001 - process crashed
                    self._ok = False
                    self._value = exc
                    self._triggered = True
                    self.env._schedule(self, delay=0, priority=NORMAL)
                    break

                if not isinstance(next_event, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded {next_event!r}, expected an Event"
                    )
                if next_event.env is not self.env:
                    raise SimulationError("yielded event belongs to a different Environment")
                if next_event.callbacks is not None:
                    # Event still pending or scheduled: subscribe and suspend.
                    next_event.callbacks.append(self._resume)
                    self._target = next_event
                    break
                # Event already processed: loop and feed its value straight in.
                event = next_event
        finally:
            self.env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'dead' if self._triggered else 'alive'}>"


class ConditionValue:
    """Dict-like result of :class:`AllOf` / :class:`AnyOf` conditions."""

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events}


class Condition(Event):
    """Composite event over several sub-events (used by all_of / any_of)."""

    __slots__ = ("_events", "_count", "_needed")

    def __init__(self, env: "Environment", events: Iterable[Event], needed: int) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._needed = needed if needed >= 0 else len(self._events)
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple Environments")
        # Subscribe to *every* sub-event, even after the condition has
        # already triggered: _check must keep watching so a late failure
        # on an unwatched sub-event is defused instead of crashing step().
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                # The condition already fired (e.g. an any_of won): absorb
                # the late failure of a now-unwatched sub-event.
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count >= self._needed:
            self.succeed(ConditionValue([ev for ev in self._events if ev._triggered]))


class Environment:
    """The simulation environment: clock, event heap, process bookkeeping."""

    def __init__(self, initial_time: int = 0, tracer: Tracer | None = None) -> None:
        self._now = int(initial_time)
        self._heap: list[tuple[int, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None
        #: shared pub/sub seam for spans and sanitizer audit hooks
        self.tracer = tracer if tracer is not None else Tracer()

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: str | None = None, daemon: bool = False
    ) -> Process:
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> Condition:
        events = list(events)
        return Condition(self, events, needed=len(events))

    def any_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events, needed=1)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: int, priority: int = NORMAL) -> None:
        self._eid += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._eid, event))

    def peek(self) -> int:
        """Time of the next scheduled event, or a huge sentinel if empty."""
        return self._heap[0][0] if self._heap else 2**63

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._heap)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        t = self.tracer
        if t.audit:
            t.emit(when, "san.step", kind=type(event).__name__,
                   name=getattr(event, "name", None), ok=event._ok, prio=_prio)
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for cb in callbacks or ():
            cb(event)
        if not event._ok and not event._defused:
            # An unhandled failure: crash the simulation loudly rather than
            # silently dropping the error.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an Event, or heap exhaustion).

        Returns the event's value if ``until`` is an Event.
        """
        stop_at: Optional[int] = None
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if not stop_event._ok and not stop_event._defused:
                    raise stop_event._value
                return stop_event._value
            stop_event.callbacks.append(self._stop_cb)
        else:
            stop_at = int(until)
            if stop_at <= self._now:
                raise SimulationError(f"run(until={stop_at}) is not in the future (now={self._now})")

        try:
            while self._heap:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    break
                self.step()
        except StopSimulation:
            assert stop_event is not None
            if not stop_event._ok:
                # re-raise from the original cause: this suppresses the
                # StopSimulation context without clobbering an exception
                # chain the failure already carries (retry giveups etc.)
                raise stop_event._value from stop_event._value.__cause__
            return stop_event._value
        if stop_event is not None and not stop_event._triggered:
            raise SimulationError("run() ran out of events before the awaited event fired")
        if stop_event is not None:
            if not stop_event._ok and not stop_event._defused:
                raise stop_event._value
            return stop_event._value
        return None

    def _stop_cb(self, event: Event) -> None:
        """Armed on ``run(until=event)``'s stop event.

        Must not raise here: a raise mid-callback-loop would drop the stop
        event's remaining callbacks, so other processes waiting on the same
        event would never resume.  Instead schedule an URGENT sentinel whose
        processing raises after the stop event's callback loop completed.
        """
        if not event._ok:
            # run() re-raises this failure to its caller once the sentinel
            # fires; defuse it here or step()'s unhandled-failure crash
            # would preempt the sentinel and leave it stale in the heap.
            event._defused = True
        sentinel = Event(self)
        sentinel._triggered = True
        sentinel._ok = True
        sentinel.callbacks = [_raise_stop]
        self._schedule(sentinel, delay=0, priority=URGENT)


def _raise_stop(event: Event) -> None:
    raise StopSimulation()
