"""The IPC Manager: connection handshake and queue-pair brokerage.

Clients connect over a UNIX domain socket (credential exchange), after
which the manager allocates a shared-memory segment, grants it to the
client PID, and builds the client's primary queue pair.  Intermediate
queue pairs (for requests spawned by other requests) live in private
memory and skip the access checks.
"""

from __future__ import annotations

from ..errors import IpcError
from ..kernel.cpu import DEFAULT_COST, CostModel
from ..sim import Environment
from .queue_pair import QueuePair
from .shmem import ShMemManager

__all__ = ["IpcManager", "ClientConn"]

# UNIX-domain-socket handshake (connect + credential passing), ns.
UDS_HANDSHAKE_NS = 25_000


class ClientConn:
    """State the IPC manager keeps per connected client."""

    def __init__(self, pid: int, qp: QueuePair, segment) -> None:
        self.pid = pid
        self.qp = qp
        self.segment = segment


class IpcManager:
    def __init__(
        self,
        env: Environment,
        cost: CostModel = DEFAULT_COST,
        runtime_pid: int = 1,
    ) -> None:
        self.env = env
        self.cost = cost
        self.shmem = ShMemManager(env, runtime_pid)
        self.runtime_pid = runtime_pid
        self.conns: dict[int, ClientConn] = {}
        self.qps: dict[int, QueuePair] = {}
        self._on_connect = []  # callbacks: fn(ClientConn)

    def on_connect(self, fn) -> None:
        """Register a callback fired for each new client connection
        (the Work Orchestrator uses this to trigger rebalance)."""
        self._on_connect.append(fn)

    # -- connection lifecycle -----------------------------------------------
    def connect(self, pid: int, *, ordered: bool = True, depth: int = 4096):
        """Process generator: handshake + shared primary QP for ``pid``."""
        if pid in self.conns:
            raise IpcError(f"pid {pid} already connected")
        yield self.env.timeout(UDS_HANDSHAKE_NS)
        seg = yield self.env.process(self.shmem.alloc(depth * 64))
        seg.grant(pid)
        yield self.env.process(self.shmem.map_into(seg, pid))
        qp = QueuePair(
            self.env,
            primary=True,
            ordered=ordered,
            depth=depth,
            segment=seg,
            pop_cost_ns=self.cost.shm_hop_ns,
            owner=f"client{pid}",
        )
        conn = ClientConn(pid, qp, seg)
        self.conns[pid] = conn
        self.qps[qp.qid] = qp
        for fn in self._on_connect:
            fn(conn)
        return conn

    def disconnect(self, pid: int) -> None:
        conn = self.conns.pop(pid, None)
        if conn is None:
            return
        self.qps.pop(conn.qp.qid, None)
        self.shmem.free(conn.segment)

    def reconnect(self, pid: int):
        """Process generator: drop and re-establish (fork/execve path)."""
        self.disconnect(pid)
        conn = yield self.env.process(self.connect(pid))
        return conn

    # -- queue management -----------------------------------------------------
    def make_intermediate_qp(self, *, ordered: bool = False, depth: int | None = None,
                             owner: str = "runtime") -> QueuePair:
        """Private-memory QP for request-spawned work (no access checks,
        and no cross-core hop: producer and consumer share the Runtime)."""
        qp = QueuePair(
            self.env,
            primary=False,
            ordered=ordered,
            depth=depth,
            segment=None,
            pop_cost_ns=self.cost.labmod_hop_ns,
            owner=owner,
        )
        self.qps[qp.qid] = qp
        return qp

    def get_qp(self, qid: int) -> QueuePair:
        try:
            return self.qps[qid]
        except KeyError:
            raise IpcError(f"unknown qid {qid}") from None

    def primary_qps(self) -> list[QueuePair]:
        return [qp for qp in self.qps.values() if qp.primary]
