"""Shared-memory IPC: segments with grants, queue pairs, and the manager."""

from .manager import ClientConn, IpcManager, UDS_HANDSHAKE_NS
from .queue_pair import Completion, QueueFlag, QueuePair
from .shmem import SharedMemorySegment, ShMemManager

__all__ = [
    "IpcManager",
    "ClientConn",
    "UDS_HANDSHAKE_NS",
    "QueuePair",
    "QueueFlag",
    "Completion",
    "SharedMemorySegment",
    "ShMemManager",
]
