"""Shared-memory model with per-process grants (the paper's ShMemMod).

LabStor allocates shared regions in the kernel (vmalloc) and maps them
into a client only after the Runtime grants access (remap_pfn_range into
that PID only).  We model the *security semantics* — a process can only
touch segments it was granted — and the allocation/mapping costs; data in
the queues is passed by reference, matching the zero-copy design.
"""

from __future__ import annotations

import itertools

from ..errors import ShmAccessError
from ..sim import Environment

__all__ = ["SharedMemorySegment", "ShMemManager"]

_seg_ids = itertools.count(1)

# Cost constants for the kernel shared-memory operations (ns).
VMALLOC_NS_PER_PAGE = 120
REMAP_NS_PER_PAGE = 90


class SharedMemorySegment:
    """A granted-access shared region."""

    def __init__(self, size: int, owner_pid: int) -> None:
        self.seg_id = next(_seg_ids)
        self.size = size
        self.owner_pid = owner_pid
        self._granted: set[int] = {owner_pid}
        self.mapped: set[int] = {owner_pid}

    def grant(self, pid: int) -> None:
        self._granted.add(pid)

    def revoke(self, pid: int) -> None:
        if pid == self.owner_pid:
            raise ShmAccessError("cannot revoke the owner's grant")
        self._granted.discard(pid)
        self.mapped.discard(pid)

    def is_granted(self, pid: int) -> bool:
        return pid in self._granted

    def check(self, pid: int) -> None:
        """Raise unless ``pid`` holds a grant (the remap_pfn_range gate)."""
        if pid not in self._granted:
            raise ShmAccessError(
                f"pid {pid} has no grant on segment {self.seg_id} (owner {self.owner_pid})"
            )


class ShMemManager:
    """Allocates segments and maps them into granted processes."""

    def __init__(self, env: Environment, runtime_pid: int = 1) -> None:
        self.env = env
        self.runtime_pid = runtime_pid
        self.segments: dict[int, SharedMemorySegment] = {}

    def alloc(self, size: int):
        """Process generator: vmalloc a region owned by the Runtime."""
        pages = max(1, -(-size // 4096))
        yield self.env.timeout(VMALLOC_NS_PER_PAGE * pages)
        seg = SharedMemorySegment(size, self.runtime_pid)
        self.segments[seg.seg_id] = seg
        return seg

    def map_into(self, seg: SharedMemorySegment, pid: int):
        """Process generator: map a segment into ``pid`` (must be granted)."""
        seg.check(pid)
        pages = max(1, -(-seg.size // 4096))
        yield self.env.timeout(REMAP_NS_PER_PAGE * pages)
        seg.mapped.add(pid)

    def free(self, seg: SharedMemorySegment) -> None:
        self.segments.pop(seg.seg_id, None)
