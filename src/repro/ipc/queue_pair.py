"""Queue Pairs: the submission/completion rings between clients and workers.

Properties (Section III-C1 of the paper):

- **primary** queues are where clients initiate requests (shared memory);
  **intermediate** queues hold requests spawned by other requests
  (private memory, no access check).
- **ordered** queues must be drained by a single worker in sequence;
  **unordered** queues may be processed by several workers.
- primary queues participate in the live-upgrade protocol via the
  ``UPDATE_PENDING`` / ``UPDATE_ACKED`` flags.

The cross-core cache-transfer cost of popping an entry (the 8.4% "IPC"
slice of the paper's Fig 4 anatomy) is charged on each pop via
``pop_cost_ns``.

Batched submission (``submit_batch``) rings one doorbell for several SQEs
and batched reaping (``pop_completion_batch``) drains several CQEs per
hop, so the fixed cross-boundary cost amortizes across the batch — the
effect the E12 experiment measures.  Conservation bookkeeping is per-op:
every accepted SQE still moves ``inflight``/``submitted_total`` exactly
once, and the batch counters (``batches_submitted`` /
``batch_ops_submitted`` / ``batch_ops_accepted``) let the sanitizer audit
batches without weakening the per-op invariants.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from ..errors import IpcError, ShmAccessError
from ..sim import Environment, Event, Store
from .shmem import SharedMemorySegment

__all__ = ["QueueFlag", "QueuePair", "Completion"]

_qids = itertools.count(1)


class QueueFlag(enum.Enum):
    NORMAL = "normal"
    UPDATE_PENDING = "update_pending"
    UPDATE_ACKED = "update_acked"


class Completion:
    """Completion record placed on the CQ; pairs with one submission."""

    __slots__ = ("request", "value", "error")

    def __init__(self, request: Any, value: Any = None, error: Optional[BaseException] = None):
        self.request = request
        self.value = value
        self.error = error


class QueuePair:
    """A submission queue + completion queue in shared or private memory."""

    def __init__(
        self,
        env: Environment,
        *,
        primary: bool = True,
        ordered: bool = True,
        depth: int | None = 4096,
        segment: SharedMemorySegment | None = None,
        pop_cost_ns: int = 950,
        owner: str = "",
    ) -> None:
        self.env = env
        self.qid = next(_qids)
        #: who this QP belongs to ("client1001", "fabric:n0->n1", ...);
        #: sanitizer/fabric conservation failures cite it so a leaked
        #: counter names the responsible endpoint, not just a bare qid
        self.owner = owner
        self.primary = primary
        self.ordered = ordered
        self.segment = segment
        self.pop_cost_ns = pop_cost_ns
        self.sq: Store = Store(env, capacity=depth)
        self.cq: Store = Store(env, capacity=depth)
        self.flag = QueueFlag.NORMAL
        self.inflight = 0  # submitted but not completed
        self.submitted_total = 0
        self.completed_total = 0
        self._drain_waiters: list[Event] = []
        # Work Orchestrator bookkeeping: estimated processing time of queued
        # work, plus an EWMA of per-request estimates that persists across
        # empty periods (queue classification must not depend on catching
        # the queue non-empty at rebalance time)
        self.est_queued_ns = 0
        self.est_ewma_ns = 0.0
        #: fault-injection hook (repro.faults): called before a submission
        #: touches any state; may raise QueueFull to model a full SQ.
        #: None keeps submit on its zero-overhead fast path.
        self.reject_hook = None
        self.rejected_total = 0
        # batched-submission bookkeeping (sanitizer-audited)
        self.batches_submitted = 0      # doorbells rung
        self.batch_ops_submitted = 0    # SQEs behind those doorbells
        self.batch_ops_accepted = 0     # of those, accepted by the SQ so far

    @property
    def owner_tag(self) -> str:
        """``"QP <qid> (<owner>)"`` for diagnostics; bare qid if unnamed."""
        if self.owner:
            return f"QP {self.qid} ({self.owner})"
        return f"QP {self.qid}"

    # -- access control ---------------------------------------------------
    def _check(self, pid: int | None) -> None:
        if self.segment is not None and pid is not None:
            self.segment.check(pid)

    # -- audit hook -------------------------------------------------------
    def _audit(self, op: str) -> None:
        self.env.tracer.emit(self.env.now, "san.qp", qp=self, op=op)

    # -- submission side ----------------------------------------------------
    def submit(self, request: Any, pid: int | None = None) -> Event:
        """Place a request on the SQ. Returns the store-accept event."""
        self._check(pid)
        if self.reject_hook is not None:
            # injected SQ backpressure: raises QueueFull before any counter
            # or estimator moves, so conservation bookkeeping is untouched
            try:
                self.reject_hook(self, request)
            except BaseException:
                self.rejected_total += 1
                raise
        if self.flag is not QueueFlag.NORMAL and self.primary:
            # Paused for upgrade: the entry still lands in the SQ, but no
            # worker will pop it until the Module Manager resumes the queue.
            pass
        # peak-decay tracker: reacts to the first heavy request immediately,
        # forgets a workload change within a few submissions (a workload
        # signal, so it updates at submit time, not at acceptance)
        self.est_ewma_ns = max(0.7 * self.est_ewma_ns, float(getattr(request, "est_ns", 0)))
        # Conservation counters move only when the SQ actually accepts the
        # entry — with a full ring the put blocks, and counting at submit
        # time would let a completion race the acceptance (inflight drift).
        return self.sq.put(request, on_accept=self._account_accept)

    def submit_batch(
        self, requests: list, pid: int | None = None
    ) -> tuple[list[Event], list[tuple[Any, BaseException]]]:
        """Ring one doorbell for several requests.

        Returns ``(accept_events, rejects)``: accept events (in submission
        order) for the entries handed to the SQ, and ``(request, exc)``
        pairs for entries the fault hook rejected.  Rejections are per-op —
        one full-ring injection never takes down its batch-mates — and
        touch no conservation counters, mirroring ``submit``.
        """
        self._check(pid)
        accepted: list[Any] = []
        rejects: list[tuple[Any, BaseException]] = []
        for request in requests:
            if self.reject_hook is not None:
                try:
                    self.reject_hook(self, request)
                except BaseException as exc:
                    self.rejected_total += 1
                    rejects.append((request, exc))
                    continue
            self.est_ewma_ns = max(0.7 * self.est_ewma_ns,
                                   float(getattr(request, "est_ns", 0)))
            accepted.append(request)
        accept_events: list[Event] = []
        if accepted:
            self.batches_submitted += 1
            self.batch_ops_submitted += len(accepted)
            env = self.env
            now = env._now
            for request in accepted:
                if env._obs:
                    sc = getattr(request, "obs", None)
                    if sc is not None:
                        sc.mark_doorbell(now)
                accept_events.append(
                    self.sq.put(request, on_accept=self._account_accept_batch))
            if env._audit:
                self._audit("doorbell")
        return accept_events, rejects

    def _account_accept_batch(self, request: Any) -> None:
        self.batch_ops_accepted += 1
        self._account_accept(request)

    def _account_accept(self, request: Any) -> None:
        self.inflight += 1
        self.submitted_total += 1
        self.est_queued_ns += getattr(request, "est_ns", 0)
        env = self.env
        if env._obs:
            sc = getattr(request, "obs", None)
            if sc is not None:
                sc.mark_accept(env._now)
        if env._audit:
            self._audit("submit")

    def pop_request(self, pid: int | None = None):
        """Process generator: worker-side pop (pays the cross-core hop)."""
        self._check(pid)
        request = yield self.sq.get()
        # the entry left the SQ now; deduct before the hop-cost timeout so
        # est_queued_ns never transiently covers already-popped work
        self.est_queued_ns -= getattr(request, "est_ns", 0)
        if self.env._audit:
            self._audit("pop")
        yield self.env.timeout(self.pop_cost_ns)
        return request

    def try_pop_request(self, pid: int | None = None) -> Any | None:
        """Non-blocking pop (no hop cost charged here; caller charges it)."""
        self._check(pid)
        item = self.sq.try_get()
        if item is not None:
            self.est_queued_ns -= getattr(item, "est_ns", 0)
            if self.env._audit:
                self._audit("pop")
        return item

    @property
    def sq_depth(self) -> int:
        return len(self.sq)

    def sq_nonempty(self) -> Event:
        """Non-consuming event: fires when the SQ holds a request
        (workers arm this on all their queues before sleeping)."""
        return self.sq.when_nonempty()

    # -- completion side --------------------------------------------------
    def complete(self, completion: Completion, pid: int | None = None) -> Event:
        self._check(pid)
        if self.inflight <= 0:
            # Reject before touching the counters: a bad completion must not
            # corrupt the conservation bookkeeping it is about to violate.
            raise IpcError(f"{self.owner_tag}: completion without submission")
        self.inflight -= 1
        self.completed_total += 1
        if self.env._audit:
            self._audit("complete")
        if self.inflight == 0:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                ev.succeed()
        return self.cq.put(completion)

    def pop_completion(self, pid: int | None = None):
        """Process generator: client-side completion reap (pays the hop)."""
        self._check(pid)
        completion = yield self.cq.get()
        yield self.env.timeout(self.pop_cost_ns)
        return completion

    def pop_completion_batch(self, pid: int | None = None, max_n: int = 16):
        """Process generator: reap up to ``max_n`` completions for one hop.

        Blocks for the first CQE, pays a single ``pop_cost_ns``, then
        drains whatever else is already sitting in the CQ — the batched
        MMIO-read amortization of a real CQ reap loop.
        """
        self._check(pid)
        completion = yield self.cq.get()
        yield self.env.timeout(self.pop_cost_ns)
        completions = [completion]
        while len(completions) < max_n:
            extra = self.cq.try_get()
            if extra is None:
                break
            completions.append(extra)
        return completions

    def drained(self) -> Event:
        """Event firing when no submissions are in flight (upgrade protocol)."""
        ev = self.env.event()
        if self.inflight == 0:
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    # -- upgrade protocol flags ---------------------------------------------
    def mark_update_pending(self) -> None:
        if not self.primary:
            raise IpcError("only primary queues participate in upgrades")
        self.flag = QueueFlag.UPDATE_PENDING

    def ack_update(self) -> None:
        if self.flag is not QueueFlag.UPDATE_PENDING:
            raise IpcError(f"{self.owner_tag}: ack without pending update")
        self.flag = QueueFlag.UPDATE_ACKED

    def resume(self) -> None:
        self.flag = QueueFlag.NORMAL

    def __repr__(self) -> str:
        kind = "primary" if self.primary else "intermediate"
        order = "ordered" if self.ordered else "unordered"
        who = f" owner={self.owner}" if self.owner else ""
        return f"<QP {self.qid}{who} {kind}/{order} sq={len(self.sq)} inflight={self.inflight}>"
