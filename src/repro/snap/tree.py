"""Time-travel debugging: a tree of replay snapshots.

Each node is a :class:`~repro.snap.replay.ReplaySnapshot` — a point on
some timeline.  ``branch()`` rewinds to a node, optionally applies a
deterministic mutation (install a fault plan, kill a node, retune a
module), runs forward, and captures the child.  Because children record
their full mutation history, any node can be rewound again later: the
tree *is* the experiment log.

``diff()`` compares two nodes by dirtied pages and module state — the
"what did this fault actually touch" question — and
:meth:`SnapshotTree.audit_crash_consistency` walks every node, restores
it, and runs the :class:`~repro.faults.CrashConsistencyChecker` against
the recovered namespace, turning a single-remount crash test into an
audit of the whole branching history.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..errors import SnapshotError
from .replay import ReplaySnapshot, RestoredRun, snapshot_run

__all__ = ["SnapshotNode", "SnapshotTree"]


class SnapshotNode:
    """One captured point; an edge = (mutation, run interval)."""

    __slots__ = ("id", "label", "snapshot", "parent", "children", "meta")

    def __init__(
        self,
        node_id: int,
        label: str,
        snapshot: ReplaySnapshot,
        parent: Optional["SnapshotNode"],
    ) -> None:
        self.id = node_id
        self.label = label
        self.snapshot = snapshot
        self.parent = parent
        self.children: list["SnapshotNode"] = []
        self.meta: dict[str, Any] = {}

    @property
    def time_ns(self) -> int:
        return self.snapshot.time_ns

    def path(self) -> list["SnapshotNode"]:
        """Root-first lineage of this node."""
        out: list[SnapshotNode] = []
        node: Optional[SnapshotNode] = self
        while node is not None:
            out.append(node)
            node = node.parent
        return out[::-1]

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<SnapshotNode #{self.id} {self.label!r} @{self.time_ns}ns>"


class SnapshotTree:
    """Snapshot → mutate → run → diff → rewind, repeatably."""

    def __init__(self, program, *, strict: bool = True) -> None:
        self.program = program
        self.strict = strict
        self._ids = itertools.count(0)
        self.root: Optional[SnapshotNode] = None

    def plant(self, *, at_ns: Optional[int] = None, label: str = "root") -> SnapshotNode:
        """Run the program to ``at_ns`` and capture the root snapshot.

        The bootstrap run is then abandoned — tree nodes are snapshots,
        not live simulations; ``rewind()`` brings any of them back.
        """
        if self.root is not None:
            raise SnapshotError("tree already planted")
        _outcome, snap = snapshot_run(
            self.program, at_ns=at_ns, strict=self.strict, tag=label,
        )
        self.root = SnapshotNode(next(self._ids), label, snap, None)
        return self.root

    def branch(
        self,
        node: SnapshotNode,
        *,
        label: str,
        run_ns: int,
        mutate: Optional[Callable] = None,
        meta_fn: Optional[Callable] = None,
    ) -> SnapshotNode:
        """Rewind to ``node``, apply ``mutate(ctx)``, run ``run_ns``
        forward, capture the child.

        ``mutate`` must be deterministic (its effects replay on every
        later rewind of the child).  ``meta_fn(restored_run)`` may record
        extra picklable context on the node (e.g. a consistency checker's
        exported state).
        """
        if run_ns <= 0:
            raise SnapshotError("branch needs run_ns > 0")
        restored = node.snapshot.restore(strict=self.strict)
        history = list(node.snapshot.history)
        if mutate is not None:
            mutate(restored.ctx)
            history.append((node.snapshot.time_ns, mutate))
        restored.run_until(node.snapshot.time_ns + int(run_ns))
        if restored.main.triggered:
            raise SnapshotError(
                f"branch {label!r} ran past program completion; "
                "shorten run_ns or snapshot earlier"
            )
        child_snap = ReplaySnapshot.capture(
            self.program, restored.ctx, restored.env,
            history=history, tag=label,
        )
        child = SnapshotNode(next(self._ids), label, child_snap, node)
        if meta_fn is not None:
            child.meta.update(meta_fn(restored))
        node.children.append(child)
        return child

    # ------------------------------------------------------------------
    def rewind(self, node: SnapshotNode, *, verify: bool = True) -> RestoredRun:
        """A live run sitting exactly at ``node`` (replaying its whole
        mutation history), ready to inspect or continue."""
        return node.snapshot.restore(strict=self.strict, verify=verify)

    def diff(self, a: SnapshotNode, b: SnapshotNode) -> dict:
        """Dirtied pages + changed module state between two nodes."""
        return a.snapshot.state.diff(b.snapshot.state)

    def walk(self):
        """Preorder traversal."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def summary(self) -> dict:
        nodes = list(self.walk())
        return {
            "program": self.program.name,
            "nodes": len(nodes),
            "leaves": sum(1 for n in nodes if not n.children),
            "max_time_ns": max((n.time_ns for n in nodes), default=0),
        }

    # ------------------------------------------------------------------
    def audit_crash_consistency(
        self,
        checker_of: Callable,
        gfs_of: Callable,
        *,
        settle_ns: int = 0,
    ) -> dict[int, dict]:
        """Run the crash-consistency audit against **every** node.

        For each node: rewind, optionally run ``settle_ns`` forward (a
        freshly injected power cut needs its restart window before the
        namespace answers), then drive ``checker.verify`` over the
        recovered filesystem.  ``checker_of(node, ctx)`` returns the
        checker holding that node's acked/pending ledger (typically
        rebuilt from ``node.meta``); ``gfs_of(ctx)`` the GenericFS to
        verify through.  Returns ``{node_id: consistency report}`` and
        raises :class:`~repro.errors.ConsistencyError` (in strict
        checkers) the moment any node's recovered state breaks prefix
        consistency.
        """
        reports: dict[int, dict] = {}
        for node in self.walk():
            restored = self.rewind(node)
            if settle_ns:
                restored.run_until(node.time_ns + int(settle_ns))
            env = restored.env
            checker = checker_of(node, restored.ctx)
            gfs = gfs_of(restored.ctx)
            report = env.run(until=env.process(checker.verify(gfs)))
            reports[node.id] = report
        return reports
