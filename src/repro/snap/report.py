"""Snapshot cost/fidelity report CLI.

Runs one deterministic program three ways — straight, snapshot-at-T,
restore-from-T — and reports what the snapshot cost (serialized bytes,
dirtied pages per device) against what the restore cost (replayed
events, replay wall-clock) and whether the seam was invisible (digest
verdicts over the :mod:`repro.sim.check` trace hash).

Usage::

    PYTHONPATH=src python -m repro.snap.report
        [--scenario faults|batching|cluster|upgrade_under_load]
        [--at NS] [--seed 0]
        [--json [PATH]] [--csv [PATH]] [--out PATH]

Output flags are the shared :mod:`repro.cli` surface.  Exit code 1 when
either digest verdict fails — the CI ``snapshot-smoke`` job leans on
that.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from .programs import PROGRAMS, program_named
from .replay import restore_run, snapshot_run, straight_run

__all__ = ["snapshot_report", "format_snapshot_report", "main"]

CSV_HEADERS = ("deployment", "device", "resident_pages", "dirty_pages",
               "layers", "content_digest")


def snapshot_report(scenario: str, *, seed: int = 0, at_ns: int | None = None) -> dict[str, Any]:
    """Run the three-way comparison and collect every reported number."""
    outcome, snap = snapshot_run(program_named(scenario, seed=seed), at_ns=at_ns)
    base = straight_run(program_named(scenario, seed=seed), arm_at_ns=snap.time_ns)
    restored = snap.restore()
    replay_wall_s = restored.replay_wall_s
    replayed_events = restored.replayed_events
    cont = restored.finish()
    summary = snap.state.summary()
    return {
        "scenario": scenario,
        "seed": seed,
        "pause_ns": snap.time_ns,
        "end_ns": base.time_ns,
        "snapshot": summary,
        "restore": {
            "replayed_events": replayed_events,
            "replay_wall_s": replay_wall_s,
            "suffix_events": cont.trace_events,
        },
        "verdicts": {
            "capture_invisible": outcome.digest == base.digest,
            "restore_seamless": cont.suffix_digest == base.suffix_digest,
        },
        "digests": {
            "straight": base.digest,
            "snapshot_run": outcome.digest,
            "straight_suffix": base.suffix_digest,
            "restored_suffix": cont.suffix_digest,
        },
    }


def format_snapshot_report(data: dict[str, Any]) -> str:
    from ..experiments.report import format_table

    snap = data["snapshot"]
    rest = data["restore"]
    verd = data["verdicts"]
    rows = [[d["deployment"] or "-", d["device"], str(d["resident_pages"]),
             str(d["dirty_pages"]), str(d["layers"]), d["content_digest"]]
            for d in snap["devices"]]
    table = format_table(
        ["node", "device", "pages", "dirty", "layers", "content digest"],
        rows,
        title=(f"Snapshot report — {data['scenario']} (seed {data['seed']}), "
               f"paused at {data['pause_ns'] / 1e6:.3f} ms "
               f"of {data['end_ns'] / 1e6:.3f} ms"),
    )
    lines = [
        table,
        "",
        f"snapshot: {snap['size_bytes']} bytes serialized, "
        f"{snap['mods']} mod states, {snap['rng_streams']} RNG streams",
        f"restore: replayed {rest['replayed_events']} events in "
        f"{rest['replay_wall_s'] * 1000:.1f} ms wall, then "
        f"{rest['suffix_events']} live events to completion",
        f"verdict: capture {'invisible' if verd['capture_invisible'] else 'PERTURBED'}"
        f" / restore {'seamless' if verd['restore_seamless'] else 'DIVERGED'}",
    ]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    from ..cli import Report, add_output_flags, emit

    parser = argparse.ArgumentParser(
        prog="python -m repro.snap.report",
        description="Snapshot size, dirtied pages, restore replay cost and "
                    "determinism verdicts for one program.",
    )
    parser.add_argument("--scenario", choices=sorted(PROGRAMS), default="batching")
    parser.add_argument("--at", type=int, default=None, metavar="NS",
                        help="virtual pause timestamp (default: the "
                             "program's own mid-flight pause point)")
    parser.add_argument("--seed", type=int, default=0)
    add_output_flags(parser)
    args = parser.parse_args(argv)

    data = snapshot_report(args.scenario, seed=args.seed, at_ns=args.at)
    code = emit(args, Report(
        text=format_snapshot_report(data),
        data=data,
        csv_headers=CSV_HEADERS,
        csv_rows=[[d["deployment"], d["device"], d["resident_pages"],
                   d["dirty_pages"], d["layers"], d["content_digest"]]
                  for d in data["snapshot"]["devices"]],
    ))
    if code == 0 and not all(data["verdicts"].values()):
        return 1
    return code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
