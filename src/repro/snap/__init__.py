"""Layered copy-on-write snapshot/restore of the whole simulated system.

Two snapshot flavors, one substrate:

- :class:`~repro.snap.state.SystemSnapshot` — a *quiescent* capture of
  durable state (device pages as COW layer references, per-LabMod state
  via ``on_snapshot()``, RNG stream positions, metrics counters).  It
  restores into a **fresh** system and powers warm-started sweeps.
- :class:`~repro.snap.replay.ReplaySnapshot` — a *mid-flight* capture at
  a virtual timestamp T.  Generators cannot be pickled, so restore
  replays the deterministic program from t=0 to T with trace hashing
  suppressed, verifies state digests match the capture, then continues
  on the exact original timeline (``repro.sim.check`` digests of the
  suffix are byte-identical to an unbroken run).

:class:`~repro.snap.tree.SnapshotTree` composes replay snapshots into a
time-travel debugger: snapshot, inject a fault, diff dirtied pages and
module state, rewind, try a different fault.
"""

from .layers import SnapshotLayer, SnapshotStack
from .programs import (
    BatchingProgram,
    ClusterProgram,
    FaultsProgram,
    Program,
    UpgradeUnderLoadProgram,
    program_named,
)
from .replay import (
    ReplaySnapshot,
    RestoredRun,
    RunOutcome,
    restore_run,
    snapshot_run,
    straight_run,
)
from .state import SystemSnapshot, quiesce
from .tree import SnapshotNode, SnapshotTree

__all__ = [
    "SnapshotLayer",
    "SnapshotStack",
    "SystemSnapshot",
    "quiesce",
    "Program",
    "FaultsProgram",
    "BatchingProgram",
    "ClusterProgram",
    "UpgradeUnderLoadProgram",
    "program_named",
    "ReplaySnapshot",
    "RestoredRun",
    "RunOutcome",
    "straight_run",
    "snapshot_run",
    "restore_run",
    "SnapshotNode",
    "SnapshotTree",
]
