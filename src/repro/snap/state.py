"""Quiescent system capture: :class:`SystemSnapshot`.

Captures the *durable* side of a deployment — device backing stores (as
frozen COW layer references, so a capture costs only the dirtied pages),
per-LabMod state via the :meth:`~repro.core.labmod.LabMod.on_snapshot`
hook, RNG stream positions, and metrics counters — into a picklable
object that restores into a **freshly built** system.

This is the gem5-style *functional* checkpoint: in-flight generator
continuations and the event heap are deliberately out of scope (see
:mod:`repro.snap.replay` for the replay-to-point scheme that recovers
them).  A quiescent snapshot is what warm-started sweeps and live
cluster migration want: all the workload's durable effects, none of the
timeline.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Optional

from ..errors import SnapshotError
from .layers import SnapshotLayer, SnapshotStack

__all__ = ["SystemSnapshot", "DeviceCapture", "DeploymentCapture", "quiesce", "canonical_digest"]

#: BlockDevice counters that belong to durable deployment state
_DEVICE_COUNTERS = (
    "completed",
    "errors",
    "bytes_read",
    "bytes_written",
    "coalesced_groups",
    "coalesced_ops",
)


def _canon(obj: Any) -> str:
    if isinstance(obj, dict):
        items = ",".join(
            f"{_canon(k)}:{_canon(v)}" for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return "{" + items + "}"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canon(v) for v in obj)) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canon(v) for v in obj) + "]"
    if isinstance(obj, (bytes, bytearray)):
        return "b" + hashlib.sha256(bytes(obj)).hexdigest()
    return repr(obj)


def canonical_digest(obj: Any) -> str:
    """Order-insensitive SHA-256 over plain data (dict/set order-proof)."""
    return hashlib.sha256(_canon(obj).encode()).hexdigest()


class DeviceCapture:
    """One device's snapshot: base store + frozen overlay chain + counters."""

    __slots__ = (
        "kind", "capacity_bytes", "base", "frozen", "counters",
        "last_offset", "page_digests", "content_digest", "dirty_pages",
    )

    def __init__(self, kind: str, device: Any, tag: str) -> None:
        self.kind = kind
        stack = SnapshotStack.promote(device.store, tag=f"{tag}.{kind}")
        device.store = stack  # promote in place: pure data, no env activity
        frozen = stack.snapshot(tag)
        self.capacity_bytes = stack.capacity_bytes
        self.base = stack.base
        self.frozen: list[SnapshotLayer] = frozen
        self.counters = {name: getattr(device, name) for name in _DEVICE_COUNTERS}
        self.last_offset = device._last_offset
        self.page_digests = stack.page_digests()
        self.content_digest = stack.content_digest()
        #: pages this capture pinned beyond the previous snapshot
        self.dirty_pages = frozen[-1].dirty_pages if frozen else 0

    def restore_into(self, device: Any) -> None:
        if device.profile.capacity_bytes < self.capacity_bytes:
            raise SnapshotError(
                f"device {self.kind!r}: capacity {device.profile.capacity_bytes} "
                f"smaller than snapshot's {self.capacity_bytes}"
            )
        device.store = SnapshotStack.from_frozen(
            self.base, self.frozen, tag=f"restore.{self.kind}",
            capacity_bytes=self.capacity_bytes,
        )
        for name, value in self.counters.items():
            setattr(device, name, value)
        device._last_offset = self.last_offset

    @property
    def resident_pages(self) -> int:
        return len(self.page_digests)


class DeploymentCapture:
    """Devices + per-LabMod state of one runtime (a system or a node)."""

    __slots__ = ("name", "devices", "mods", "mod_digests")

    def __init__(self, name: str, deployment: Any, tag: str) -> None:
        self.name = name
        self.devices = {
            kind: DeviceCapture(kind, deployment.devices[kind], tag)
            for kind in sorted(deployment.devices)
        }
        self.mods: dict[str, dict] = {}
        self.mod_digests: dict[str, str] = {}
        registry = deployment.runtime.registry
        for uuid in sorted(registry.uuids()):
            state = registry.get(uuid).on_snapshot()
            try:
                pickle.dumps(state)
            except Exception as exc:
                raise SnapshotError(
                    f"mod {uuid!r}: on_snapshot() returned unpicklable state: {exc!r}"
                ) from exc
            self.mods[uuid] = state
            self.mod_digests[uuid] = canonical_digest(state)

    def restore_into(self, deployment: Any) -> None:
        for kind, capture in self.devices.items():
            device = deployment.devices.get(kind)
            if device is None:
                raise SnapshotError(
                    f"deployment {self.name!r} has no device {kind!r} to restore into"
                )
            capture.restore_into(device)
        registry = deployment.runtime.registry
        live = set(registry.uuids())
        missing = sorted(set(self.mods) - live)
        if missing:
            raise SnapshotError(
                f"deployment {self.name!r}: snapshot has state for mods "
                f"{missing} the fresh system did not mount"
            )
        for uuid in sorted(self.mods):
            registry.get(uuid).on_restore(self.mods[uuid])


def _deployments_of(target: Any) -> dict[str, Any]:
    """A LabStorSystem is one deployment; a Cluster is one per node."""
    nodes = getattr(target, "nodes", None)
    if isinstance(nodes, dict):
        return {name: nodes[name] for name in sorted(nodes)}
    return {"": target}


def quiesce(target: Any) -> None:
    """Drain in-flight client work so a capture sees settled state.

    Runs the simulation until every open client queue pair is empty —
    the moving parts left after that (pollers, admin loops) carry no
    durable state.
    """
    env = target.env
    clients = getattr(target, "_clients", None)
    if clients is None:
        clients = []
        for dep in _deployments_of(target).values():
            clients.extend(getattr(dep, "_clients", []))
    for client in clients:
        conn = getattr(client, "conn", None)
        if conn is not None:
            env.run(until=conn.qp.drained())


class SystemSnapshot:
    """Serializable durable-state capture of a system or cluster.

    Pickles cleanly (devices travel as sparse pages, mod state as the
    plain dicts ``on_snapshot`` exported), so it can cross a process
    pool to warm-start sweep points, or live in memory as the substance
    of a :class:`~repro.snap.replay.ReplaySnapshot`.
    """

    def __init__(
        self,
        deployments: dict[str, DeploymentCapture],
        *,
        time_ns: int,
        rng_seed: int,
        rng_states: dict[str, dict],
        metrics: Optional[dict],
        tag: str,
    ) -> None:
        self.deployments = deployments
        self.time_ns = time_ns
        self.rng_seed = rng_seed
        self.rng_states = rng_states
        self.metrics = metrics
        self.tag = tag

    @classmethod
    def capture(cls, target: Any, *, tag: str = "snap", drain: bool = False) -> "SystemSnapshot":
        """Capture ``target`` (LabStorSystem or Cluster) in place.

        Promotes every device store to a :class:`SnapshotStack` and
        freezes the current layers — the live run keeps going, paying
        copy-on-write only for pages it dirties afterwards.  With
        ``drain=True`` the clock first runs until client QPs are empty
        (don't use mid-flight: it advances the simulation).
        """
        if drain:
            quiesce(target)
        deployments = {
            name: DeploymentCapture(name, dep, tag)
            for name, dep in _deployments_of(target).items()
        }
        rngs = target.rngs
        rng_states = {
            name: gen.bit_generator.state for name, gen in sorted(rngs._streams.items())
        }
        telemetry = getattr(target, "telemetry", None)
        metrics = telemetry.metrics.dump() if telemetry is not None else None
        return cls(
            deployments,
            time_ns=target.env.now,
            rng_seed=rngs.seed,
            rng_states=rng_states,
            metrics=metrics,
            tag=tag,
        )

    # ------------------------------------------------------------------
    def restore_into(self, target: Any) -> None:
        """Install captured durable state into a freshly built ``target``.

        The target must have the same shape (devices, mounted stacks,
        node names); its clock stays where it is — this is a functional
        restore, not a timeline warp (replay-to-point covers that).
        """
        fresh = _deployments_of(target)
        missing = sorted(set(self.deployments) - set(fresh))
        if missing:
            raise SnapshotError(f"restore target lacks deployments {missing}")
        for name in sorted(self.deployments):
            self.deployments[name].restore_into(fresh[name])
        rngs = target.rngs
        for name, state in self.rng_states.items():
            rngs.stream(name).bit_generator.state = state
        telemetry = getattr(target, "telemetry", None)
        if telemetry is not None and self.metrics is not None:
            telemetry.metrics.load(self.metrics)

    # ------------------------------------------------------------------
    def state_digests(self) -> dict[str, str]:
        """Per-component digests for replay verification and tree diffs."""
        out: dict[str, str] = {}
        for name, dep in sorted(self.deployments.items()):
            for kind, dev in sorted(dep.devices.items()):
                out[f"dev:{name}/{kind}"] = dev.content_digest
            for uuid, digest in sorted(dep.mod_digests.items()):
                out[f"mod:{name}/{uuid}"] = digest
        out["rng"] = canonical_digest(self.rng_states)
        return out

    def verify_against(self, target: Any) -> list[str]:
        """Compare a live target's durable state to this capture; returns
        a list of human-readable mismatches (empty means identical)."""
        mismatches: list[str] = []
        fresh = _deployments_of(target)
        for name, dep in sorted(self.deployments.items()):
            live = fresh.get(name)
            if live is None:
                mismatches.append(f"deployment {name!r} missing")
                continue
            for kind, cap in sorted(dep.devices.items()):
                device = live.devices.get(kind)
                if device is None:
                    mismatches.append(f"dev:{name}/{kind} missing")
                    continue
                got = _store_content_digest(device.store)
                if got != cap.content_digest:
                    mismatches.append(
                        f"dev:{name}/{kind} content {got[:12]} != {cap.content_digest[:12]}"
                    )
            registry = live.runtime.registry
            live_uuids = set(registry.uuids())
            for uuid, digest in sorted(dep.mod_digests.items()):
                if uuid not in live_uuids:
                    mismatches.append(f"mod:{name}/{uuid} missing")
                    continue
                got = canonical_digest(registry.get(uuid).on_snapshot())
                if got != digest:
                    mismatches.append(f"mod:{name}/{uuid} state {got[:12]} != {digest[:12]}")
        live_states = {
            name: gen.bit_generator.state
            for name, gen in sorted(target.rngs._streams.items())
        }
        if canonical_digest(live_states) != canonical_digest(self.rng_states):
            theirs = set(live_states)
            ours = set(self.rng_states)
            detail = []
            if theirs != ours:
                detail.append(f"streams {sorted(ours ^ theirs)}")
            else:
                detail.extend(
                    name for name in sorted(ours)
                    if live_states[name] != self.rng_states[name]
                )
            mismatches.append(f"rng streams diverged: {', '.join(detail) or 'states'}")
        if target.env.now != self.time_ns:
            mismatches.append(f"clock {target.env.now} != {self.time_ns}")
        return mismatches

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Serialized size (what a pool transfer or disk spill would pay)."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))

    def summary(self) -> dict:
        devices = []
        for name, dep in sorted(self.deployments.items()):
            for kind, dev in sorted(dep.devices.items()):
                devices.append({
                    "deployment": name,
                    "device": kind,
                    "resident_pages": dev.resident_pages,
                    "dirty_pages": dev.dirty_pages,
                    "layers": len(dev.frozen),
                    "content_digest": dev.content_digest[:16],
                })
        return {
            "tag": self.tag,
            "time_ns": self.time_ns,
            "deployments": len(self.deployments),
            "mods": sum(len(d.mods) for d in self.deployments.values()),
            "rng_streams": len(self.rng_states),
            "devices": devices,
            "size_bytes": self.size_bytes(),
        }

    def diff(self, other: "SystemSnapshot") -> dict:
        """What changed between two captures: per-device page deltas and
        per-mod state changes (the time-travel debugger's currency)."""
        pages: dict[str, dict] = {}
        names = sorted(set(self.deployments) | set(other.deployments))
        for name in names:
            a = self.deployments.get(name)
            b = other.deployments.get(name)
            kinds = sorted(
                (set(a.devices) if a else set()) | (set(b.devices) if b else set())
            )
            for kind in kinds:
                da = a.devices.get(kind).page_digests if a and kind in a.devices else {}
                db = b.devices.get(kind).page_digests if b and kind in b.devices else {}
                changed = sorted(
                    p for p in set(da) | set(db) if da.get(p) != db.get(p)
                )
                if changed:
                    pages[f"{name}/{kind}"] = {
                        "changed_pages": changed,
                        "count": len(changed),
                    }
        mods: dict[str, str] = {}
        for name in names:
            a = self.deployments.get(name)
            b = other.deployments.get(name)
            da = a.mod_digests if a else {}
            db = b.mod_digests if b else {}
            for uuid in sorted(set(da) | set(db)):
                if da.get(uuid) != db.get(uuid):
                    mods[f"{name}/{uuid}"] = (
                        "added" if uuid not in da else
                        "removed" if uuid not in db else "changed"
                    )
        return {
            "time_ns": (self.time_ns, other.time_ns),
            "pages": pages,
            "mods": mods,
        }


def _store_content_digest(store: Any) -> str:
    """Works for both plain BackingStore and SnapshotStack (same surface)."""
    return store.content_digest()
