"""Replay-to-point snapshots of mid-flight runs.

Python generators — the substance of every simulated process — cannot
be pickled, so a mid-flight snapshot cannot serialize continuations
directly.  Instead, a :class:`ReplaySnapshot` records the *recipe*: the
deterministic :class:`~repro.snap.programs.Program` (seed included), the
virtual pause timestamp, the ordered history of mutation steps applied
along the way, and content digests of all durable state at the pause.

``restore()`` rebuilds the in-flight processes by replaying the program
from t=0 to the pause point with trace hashing suppressed (the hasher
arms exactly at T), then verifies the replayed durable state against
the captured digests — any mismatch raises
:class:`~repro.errors.ReplayDivergence` instead of silently continuing
from different state.  The restored run then continues on the original
timeline: its armed digest must be byte-identical to the suffix digest
of an unbroken run (see ``tests/test_snap_determinism.py``).

This is the honest answer to generator persistence the gem5 checkpoint
papers arrive at too: replay what you cannot serialize, and let an
automated determinism check prove the seam invisible.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from ..errors import ReplayDivergence, SnapshotError
from ..sim.check import AuditRun, TraceHasher, reset_global_counters
from ..sim.core import Environment
from .state import SystemSnapshot

__all__ = [
    "ReplaySnapshot",
    "RestoredRun",
    "RunOutcome",
    "drive_program",
    "straight_run",
    "snapshot_run",
    "restore_run",
]


class RunOutcome:
    """What one audited program execution produced."""

    __slots__ = ("digest", "suffix_digest", "result", "report", "trace_events", "time_ns")

    def __init__(self, digest, suffix_digest, result, report, trace_events, time_ns):
        self.digest = digest
        self.suffix_digest = suffix_digest
        self.result = result
        self.report = report
        self.trace_events = trace_events
        self.time_ns = time_ns


def drive_program(program, audit: AuditRun) -> dict:
    """The repro.sim.check scenario protocol: build, drive, finish."""
    env = Environment()
    audit.attach(env)
    ctx = program.build(env)
    value = env.run(until=program.drive(ctx))
    return program.finish(ctx, value)


def straight_run(program, *, strict: bool = True, arm_at_ns: Optional[int] = None) -> RunOutcome:
    """Run a program start to finish under audit.

    ``arm_at_ns`` additionally computes the digest of the event-stream
    *suffix* from that timestamp on (what a restored run must match),
    without a second execution.
    """
    reset_global_counters()
    audit = AuditRun(strict=strict)
    suffix = None
    env = Environment()
    audit.attach(env)
    if arm_at_ns is not None:
        suffix = TraceHasher(arm_at_ns=arm_at_ns)
        env.tracer.add_sink(suffix)
    ctx = program.build(env)
    value = env.run(until=program.drive(ctx))
    result = program.finish(ctx, value)
    report = audit.finish()
    return RunOutcome(
        digest=audit.digest,
        suffix_digest=suffix.hexdigest() if suffix is not None else None,
        result=result,
        report=report,
        trace_events=audit.hasher.count,
        time_ns=env.now,
    )


class ReplaySnapshot:
    """A mid-flight snapshot: program + pause time + state digests.

    ``history`` is the ordered list of ``(at_ns, mutate)`` steps applied
    after ``drive()`` — the snapshot tree's branch edits.  ``mutate``
    callables take the program ctx and must be deterministic; restore
    replays them at the same virtual instants.
    """

    def __init__(
        self,
        program,
        *,
        time_ns: int,
        state: SystemSnapshot,
        history: Optional[list[tuple[int, Callable]]] = None,
    ) -> None:
        self.program = program
        self.time_ns = time_ns
        self.state = state
        self.history = list(history or [])

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        program,
        ctx,
        env: Environment,
        *,
        history: Optional[list[tuple[int, Callable]]] = None,
        tag: str = "replay",
    ) -> "ReplaySnapshot":
        """Capture the paused run's durable state (COW — the run may keep
        going; it pays copy-on-write for pages dirtied afterwards)."""
        state = SystemSnapshot.capture(program.target(ctx), tag=f"{tag}@{env.now}")
        return cls(program, time_ns=env.now, state=state, history=history)

    # ------------------------------------------------------------------
    def restore(self, *, strict: bool = True, verify: bool = True) -> "RestoredRun":
        """Replay the program to the pause point and hand back a live run.

        The returned :class:`RestoredRun` sits exactly at the snapshot
        timestamp with all in-flight processes reconstructed; its trace
        hasher armed at T so the continued run's digest covers only the
        suffix — comparable byte-for-byte with a straight run's armed
        digest.
        """
        reset_global_counters()
        audit = AuditRun(strict=strict, arm_at_ns=self.time_ns)
        env = Environment()
        audit.attach(env)
        wall_start = time.perf_counter()
        ctx = self.program.build(env)
        main = self.program.drive(ctx)
        if self.time_ns <= env.now:
            raise SnapshotError(
                f"pause point {self.time_ns} not after build end ({env.now})"
            )
        for at_ns, mutate in self.history:
            if at_ns > env.now:
                env.run(until=at_ns)
            mutate(ctx)
        if self.time_ns > env.now:
            env.run(until=self.time_ns)
        replay_wall_s = time.perf_counter() - wall_start
        if main.triggered:
            raise SnapshotError(
                f"program finished before the pause point {self.time_ns}"
            )
        if verify:
            mismatches = self.state.verify_against(self.program.target(ctx))
            if mismatches:
                raise ReplayDivergence(
                    "replayed state diverged from the capture:\n  "
                    + "\n  ".join(mismatches)
                )
        return RestoredRun(
            snapshot=self,
            audit=audit,
            env=env,
            ctx=ctx,
            main=main,
            replay_wall_s=replay_wall_s,
            replayed_events=audit.hasher.skipped,
        )


class RestoredRun:
    """A live run sitting at the snapshot point, ready to continue."""

    def __init__(self, *, snapshot, audit, env, ctx, main, replay_wall_s, replayed_events):
        self.snapshot = snapshot
        self.audit = audit
        self.env = env
        self.ctx = ctx
        self.main = main
        self.replay_wall_s = replay_wall_s
        self.replayed_events = replayed_events

    @property
    def program(self):
        return self.snapshot.program

    def run_until(self, at_ns: int) -> None:
        if at_ns > self.env.now:
            self.env.run(until=at_ns)

    def finish(self) -> RunOutcome:
        """Continue to program completion; digest covers only the suffix."""
        value = self.env.run(until=self.main)
        result = self.program.finish(self.ctx, value)
        report = self.audit.finish()
        return RunOutcome(
            digest=None,
            suffix_digest=self.audit.digest,
            result=result,
            report=report,
            trace_events=self.audit.hasher.count,
            time_ns=self.env.now,
        )


def snapshot_run(
    program,
    *,
    at_ns: Optional[int] = None,
    strict: bool = True,
    tag: str = "replay",
) -> tuple[RunOutcome, ReplaySnapshot]:
    """Run a program to completion, pausing once at ``at_ns`` (default:
    the program's ``default_pause_ns``) to capture a ReplaySnapshot.

    The capture is pure bookkeeping between two ``env.run()`` calls — no
    events are injected — so the full digest of this run must equal a
    straight run's digest (the property test pins exactly that).
    """
    reset_global_counters()
    audit = AuditRun(strict=strict)
    env = Environment()
    audit.attach(env)
    ctx = program.build(env)
    main = program.drive(ctx)
    pause = at_ns if at_ns is not None else program.pause_point(ctx, env)
    if pause <= env.now:
        raise SnapshotError(f"pause point {pause} not after build end ({env.now})")
    env.run(until=pause)
    if main.triggered:
        raise SnapshotError(f"program finished before the pause point {pause}")
    snap = ReplaySnapshot.capture(program, ctx, env, tag=tag)
    value = env.run(until=main)
    result = program.finish(ctx, value)
    report = audit.finish()
    outcome = RunOutcome(
        digest=audit.digest,
        suffix_digest=None,
        result=result,
        report=report,
        trace_events=audit.hasher.count,
        time_ns=env.now,
    )
    return outcome, snap


def restore_run(snapshot: ReplaySnapshot, *, strict: bool = True, verify: bool = True) -> RunOutcome:
    """Convenience: restore + finish in one call."""
    return snapshot.restore(strict=strict, verify=verify).finish()
