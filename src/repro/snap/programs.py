"""Deterministic, seed-parameterized programs with a split-phase protocol.

A :class:`Program` factors a ``repro.sim.check`` scenario into three
phases so snapshot machinery can pause the clock between them::

    ctx   = program.build(env)      # construct system/cluster + workload
    event = program.drive(ctx)      # start the main process, return its event
    ...   = env.run(until=T)        # (snapshot seam: pause anywhere here)
    value = env.run(until=event)
    out   = program.finish(ctx, value)   # asserts + result dict

The ``"faults"``, ``"batching"`` and ``"cluster"`` determinism scenarios
in :mod:`repro.sim.check` delegate to the programs below with default
parameters, so one definition serves both the determinism checker and
the replay-to-point property tests.  ``seed`` perturbs the workload and
system RNG streams: every seed is its own fully deterministic timeline.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any

from ..units import msec, usec

__all__ = [
    "Program",
    "FaultsProgram",
    "BatchingProgram",
    "ClusterProgram",
    "UpgradeUnderLoadProgram",
    "PROGRAMS",
    "program_named",
]


class Program:
    """Base protocol; subclasses define build/drive/finish."""

    name = "program"
    #: a virtual timestamp strictly inside the run — the default
    #: snapshot pause point (after build, before the main event fires)
    default_pause_ns = 0

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def build(self, env) -> SimpleNamespace:
        raise NotImplementedError

    def drive(self, ctx):
        raise NotImplementedError

    def finish(self, ctx, value) -> dict[str, Any]:
        raise NotImplementedError

    def target(self, ctx):
        """The deployment a snapshot captures (system or cluster)."""
        return ctx.system

    def pause_point(self, ctx, env) -> int:
        """Resolve the default pause timestamp once the run is built
        (programs whose build phase advances the clock override this)."""
        return self.default_pause_ns

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"{type(self).__name__}(seed={self.seed})"


class FaultsProgram(Program):
    """The "faults" chaos storm: media errors + qp rejects + a worker
    crash + a power cut with auto-restart against a retrying GenericFS,
    audited for crash consistency."""

    name = "faults"
    default_pause_ns = int(msec(1.2))

    def __init__(self, seed: int = 0, nfiles: int = 56) -> None:
        super().__init__(seed)
        self.nfiles = nfiles

    def build(self, env) -> SimpleNamespace:
        from ..faults import CrashConsistencyChecker, FaultPlan, FaultSpec, RetryPolicy
        from ..mods.generic_fs import GenericFS
        from ..system import LabStorSystem

        plan = FaultPlan.of(
            FaultSpec(kind="media_error", device="nvme", op="write", probability=0.08, count=6),
            FaultSpec(kind="latency", device="nvme", probability=0.1, count=8,
                      extra_ns=int(usec(80))),
            FaultSpec(kind="qp_reject", probability=0.05, count=3),
            FaultSpec(kind="worker_crash", at=int(msec(0.9))),
            FaultSpec(kind="torn_write", at=int(msec(2.0)), device="nvme", op="write"),
            FaultSpec(kind="power_cut", at=int(msec(2.0)), restart_after=int(msec(1.0))),
        )
        system = LabStorSystem(env=env, seed=self.seed, devices=("nvme",), fault_plan=plan)
        system.mount_fs_stack("fs::/chaos", variant="min")
        retry = RetryPolicy(max_attempts=6, timeout_ns=int(msec(50)))
        gfs = GenericFS(system.client(), retry=retry)
        checker = CrashConsistencyChecker()
        return SimpleNamespace(
            system=system, gfs=gfs, checker=checker, retry=retry,
        )

    def drive(self, ctx):
        system, gfs, checker = ctx.system, ctx.gfs, ctx.checker

        def go():
            acked = 0
            for i in range(self.nfiles):
                path = f"fs::/chaos/f{i}"
                data = bytes([(i + self.seed) % 251]) * 4096
                checker.begin(path, data)
                try:
                    yield from gfs.write_file(path, data)
                except Exception:  # noqa: BLE001 - gave up after retries: move on
                    continue
                checker.ack(path)
                acked += 1
            return acked

        return system.process(go())

    def finish(self, ctx, value) -> dict[str, Any]:
        system, retry = ctx.system, ctx.retry
        acked = value
        report = system.run(system.process(ctx.checker.verify(ctx.gfs)))
        assert report["acked_ok"] == acked, "acknowledged write lost after recovery"
        engine = system.faults
        assert engine is not None and engine.total_injected > 0, "no faults fired"
        return {
            "acked": acked,
            "injected": dict(sorted(engine.injected.items())),
            "retries": retry.retries,
            "crashes": system.runtime.crashes,
            "consistency": report,
        }


class BatchingProgram(Program):
    """The "batching" fast path: vectored writev/readv waves through
    Client.submit_batch, worker batch-pop, BatchSchedMod merging and
    device-level coalescing."""

    name = "batching"
    default_pause_ns = int(usec(120))

    def build(self, env) -> SimpleNamespace:
        from ..core import RuntimeConfig
        from ..devices.profiles import DeviceSpec
        from ..mods.generic_fs import GenericFS
        from ..system import LabStorSystem

        system = LabStorSystem(
            env=env,
            seed=self.seed,
            devices=(DeviceSpec("nvme", coalesce_max=8, coalesce_window_ns=2000),),
            config=RuntimeConfig(nworkers=1, worker_batch_max=8),
        )
        (system.stack("fs::/batch")
         .fs(variant="all")
         .sched("BatchSchedMod", window_ns=10_000, batch_max=8)
         .mount())
        gfs = GenericFS(system.client())
        return SimpleNamespace(system=system, gfs=gfs)

    def _chunk(self, wave: int, i: int) -> bytes:
        return bytes([(wave * 16 + i + self.seed) % 251]) * 4096

    def drive(self, ctx):
        system, gfs = ctx.system, ctx.gfs

        def go():
            fd = yield from gfs.open("fs::/batch/vec.dat", create=True)
            total = 0
            for wave in range(4):
                bufs = [self._chunk(wave, i) for i in range(8)]
                counts = yield from gfs.writev(fd, bufs, offset=wave * 8 * 4096)
                total += sum(counts)
            yield from gfs.fsync(fd)
            chunks = yield from gfs.readv(fd, [4096] * 32, offset=0)
            yield from gfs.close(fd)
            return total, chunks

        return system.process(go())

    def finish(self, ctx, value) -> dict[str, Any]:
        system = ctx.system
        total, chunks = value
        assert total == 32 * 4096, f"writev short ({total} bytes)"
        for wave in range(4):
            for i in range(8):
                want = self._chunk(wave, i)
                assert chunks[wave * 8 + i] == want, f"readv mismatch at chunk {wave * 8 + i}"
        sched = system.runtime.namespace.resolve("fs::/batch")[0].mods["s1.sched"]
        dev = system.devices["nvme"]
        assert sched.merged_ops > 0, "BatchSchedMod never merged"
        return {
            "bytes": total,
            "merged_groups": sched.merged_groups,
            "merged_ops": sched.merged_ops,
            "coalesced_groups": dev.coalesced_groups,
            "coalesced_ops": dev.coalesced_ops,
        }


class ClusterProgram(Program):
    """The "cluster" scenario: a 3-node sharded+replicated KVS doing
    cross-fabric puts, a power cut killing one replica node mid-run,
    then failover reads off the survivors."""

    name = "cluster"
    default_pause_ns = int(msec(2.0))

    def build(self, env) -> SimpleNamespace:
        from ..cluster import cluster as cluster_builder
        from ..core import RuntimeConfig

        cfg = RuntimeConfig(nworkers=1, restart_wait_ns=int(usec(50)))
        cl = (
            cluster_builder(env=env, seed=11 + self.seed)
            .node("a", config=cfg, failure_domain="rack-1")
            .node("b", config=cfg, failure_domain="rack-2")
            .node("c", config=cfg, failure_domain="rack-3")
            .build()
        )
        kvs = cl.shard_kvs("kvs::/det", replicas=2, timeout_ns=int(msec(1)))
        cl.install_faults(f"power_cut:at={int(msec(3))}", node="b")
        return SimpleNamespace(cluster=cl, kvs=kvs, nkeys=18)

    def target(self, ctx):
        return ctx.cluster

    def drive(self, ctx):
        cl, kvs, nkeys = ctx.cluster, ctx.kvs, ctx.nkeys
        env = cl.env
        seed = self.seed

        def go():
            for i in range(nkeys):
                yield from kvs.put(f"det{i}", bytes([(i + seed) % 251]) * 96)
            # ride past the power cut, then read through the outage
            if env.now < msec(3):
                yield env.timeout(int(msec(3)) - env.now + int(usec(100)))
            hits = 0
            for i in range(nkeys):
                if (yield from kvs.get(f"det{i}")) == bytes([(i + seed) % 251]) * 96:
                    hits += 1
            # let the straggler replica branches (timeouts, crash ride-outs)
            # resolve so the failover count is settled, not racing teardown
            yield env.timeout(int(msec(2)))
            return hits

        return cl.process(go())

    def finish(self, ctx, value) -> dict[str, Any]:
        cl, kvs, nkeys = ctx.cluster, ctx.kvs, ctx.nkeys
        hits = value
        assert hits == nkeys, f"failover reads lost keys ({hits}/{nkeys})"
        assert not cl.nodes["b"].online, "power cut never fired"
        assert kvs.failovers > 0, "no replica branch ever failed over"
        remote = sum(r.remote_calls for r in cl._routes.values())
        assert remote > 0, "no call ever crossed the fabric"
        stats = cl.stats()
        cl.shutdown()
        for route in cl._routes.values():
            qp = route.qp
            assert qp.submitted_total == qp.completed_total, (
                f"{qp.owner_tag}: NIC conservation broken after shutdown"
            )
        return {
            "hits": hits,
            "remote_calls": remote,
            "failovers": kvs.failovers,
            "nacks": sum(r.nacks for r in cl._routes.values()),
            "fabric": stats["fabric"],
        }


class UpgradeUnderLoadProgram(Program):
    """E2 under load: live-upgrade the KVS LabMod while the open-loop
    overload tenants keep firing, proving module state transfer loses no
    in-flight work.  A snapshot pauses mid-upgrade (``default_pause_ns``
    lands between the upgrade trigger and the admin thread completing the
    swap) — the paper's Table I claim with teeth."""

    name = "upgrade_under_load"

    def __init__(
        self,
        seed: int = 0,
        *,
        duration_ns: int = int(msec(1.5)),
        load: float = 1.0,
        nupgrades: int = 1,
        upgrade_type: str = "centralized",
        upgrade_at_ns: int = int(msec(0.6)),
    ) -> None:
        super().__init__(seed)
        self.duration_ns = int(duration_ns)
        self.load = load
        self.nupgrades = nupgrades
        self.upgrade_type = upgrade_type
        # offset past build end (the preload phase advances the clock, so
        # absolute timestamps would land inside the build)
        self.upgrade_at_ns = int(upgrade_at_ns)

    def build(self, env) -> SimpleNamespace:
        from ..traffic.presets import build_overload_engine

        system, engine = build_overload_engine(
            env=env, seed=self.seed, duration_ns=self.duration_ns, load=self.load,
        )
        return SimpleNamespace(system=system, engine=engine, start_ns=env.now)

    def pause_point(self, ctx, env) -> int:
        # the admin thread polls every admin_poll_ns (1ms default): pause
        # while the upgrade request is queued/in flight, not after
        return ctx.start_ns + self.upgrade_at_ns + int(usec(50))

    def drive(self, ctx):
        from ..core.module_manager import UpgradeRequest
        from ..mods.labkvs import LabKvs, LabKvsV2

        system, engine = ctx.system, ctx.engine
        env = system.env

        def go():
            drive_proc = env.process(engine.drive(), name="traffic.drive")
            trigger = ctx.start_ns + self.upgrade_at_ns
            if trigger > env.now:
                yield env.timeout(trigger - env.now)
            ctx.pre_upgrade = [
                (m.uuid, m.version, m.processed)
                for m in system.runtime.registry.instances_of(LabKvs)
            ]
            for _ in range(self.nupgrades):
                system.runtime.modify_mods(UpgradeRequest(
                    mod_name="LabKvs", new_cls=LabKvsV2,
                    upgrade_type=self.upgrade_type,
                ))
            summary = yield drive_proc
            return summary

        return system.process(go())

    def finish(self, ctx, value) -> dict[str, Any]:
        from ..mods.labkvs import LabKvsV2

        system = ctx.system
        summary = value
        tot = summary["totals"]
        assert tot["completed"] == tot["launched"], "upgrade lost in-flight ops"
        assert tot["completed"] > 0, "no traffic ran"
        upgraded = system.runtime.registry.instances_of(LabKvsV2)
        assert upgraded, "LabKvs was never hot-swapped"
        pre = {uuid: (version, processed) for uuid, version, processed in ctx.pre_upgrade}
        for mod in upgraded:
            version, processed = pre[mod.uuid]
            assert mod.version == version + self.nupgrades, "version chain broken"
            assert mod.processed >= processed, "processed counter lost in transfer"
            assert mod.table, "KVS table lost in state transfer"
        return {
            "launched": tot["launched"],
            "completed": tot["completed"],
            "good": tot["good"],
            "violations": tot["violations"],
            "upgrades_done": system.runtime.module_manager.upgrades_done,
            "upgraded_mods": len(upgraded),
            "elapsed_ns": summary["elapsed_ns"],
        }


PROGRAMS: dict[str, type[Program]] = {
    cls.name: cls
    for cls in (FaultsProgram, BatchingProgram, ClusterProgram, UpgradeUnderLoadProgram)
}


def program_named(name: str, seed: int = 0, **kw) -> Program:
    if name not in PROGRAMS:
        raise KeyError(f"unknown program {name!r}; known: {sorted(PROGRAMS)}")
    return PROGRAMS[name](seed=seed, **kw)
