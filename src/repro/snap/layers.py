"""Copy-on-write overlay layers on :class:`~repro.devices.backing.BackingStore`.

A :class:`SnapshotStack` duck-types the BackingStore surface so it can
replace ``device.store`` in place.  Reads fall through the layer stack
top-to-bottom (page hit wins, a discarded page reads as zeros, anything
else falls through to the base store); writes land only in the mutable
top layer, so a snapshot of a multi-GB sparse device costs exactly the
pages dirtied afterwards.  ``snapshot()`` freezes the top and pushes a
fresh overlay, ``commit()`` folds the top into its parent, ``drop()``
discards it — the composable layer-stack design of
zultron/amanda-snapshot-layers (SNIPPETS.md Snippet 1) applied to page
maps instead of LVM volumes.

Frozen layers are shared, never mutated: many restored stacks may
overlay private writable tops onto one frozen chain.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional

from ..devices.backing import _PAGE, _ZERO_PAGE, BackingStore, digest_page
from ..errors import DeviceError, SnapshotError

__all__ = ["SnapshotLayer", "SnapshotStack"]

_ZERO_DIGEST = digest_page(_ZERO_PAGE)


class SnapshotLayer:
    """One overlay: sparse dirty pages plus whole-page discards.

    ``pages`` maps page number -> full page content; ``discards`` holds
    page numbers TRIMmed at this layer (they read as zeros and stop the
    fall-through).  A frozen layer is immutable snapshot substance.
    """

    __slots__ = ("tag", "pages", "discards", "frozen")

    def __init__(self, tag: str = "") -> None:
        self.tag = tag
        self.pages: dict[int, bytearray] = {}
        self.discards: set[int] = set()
        self.frozen = False

    def freeze(self) -> "SnapshotLayer":
        self.frozen = True
        return self

    @property
    def dirty_pages(self) -> int:
        """Pages this layer holds or discards (its snapshot cost)."""
        return len(self.pages) + len(self.discards)

    @property
    def resident_bytes(self) -> int:
        return len(self.pages) * _PAGE

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        state = "frozen" if self.frozen else "mutable"
        return (
            f"SnapshotLayer(tag={self.tag!r}, {state}, "
            f"pages={len(self.pages)}, discards={len(self.discards)})"
        )


class SnapshotStack:
    """A BackingStore wearing COW overlays; drop-in for ``device.store``."""

    def __init__(self, base: BackingStore, tag: str = "base") -> None:
        self.base = base
        self.base_tag = tag
        #: overlays, bottom to top; the last one is the only mutable layer
        self.layers: list[SnapshotLayer] = [SnapshotLayer(tag=f"{tag}+0")]
        self.capacity_bytes = base.capacity_bytes

    # -- construction ------------------------------------------------------
    @classmethod
    def promote(cls, store: "BackingStore | SnapshotStack", tag: str = "base") -> "SnapshotStack":
        """Wrap a plain store in a stack (no-op when already stacked)."""
        if isinstance(store, SnapshotStack):
            return store
        return cls(store, tag=tag)

    @classmethod
    def from_frozen(
        cls,
        base: BackingStore,
        frozen: list[SnapshotLayer],
        *,
        tag: str = "restore",
        capacity_bytes: Optional[int] = None,
    ) -> "SnapshotStack":
        """A new stack over a shared frozen chain with a private top."""
        for layer in frozen:
            if not layer.frozen:
                raise SnapshotError(f"layer {layer.tag!r} is not frozen")
        stack = cls(base, tag=tag)
        stack.layers = list(frozen) + [SnapshotLayer(tag=f"{tag}+{len(frozen)}")]
        if capacity_bytes is not None:
            stack.capacity_bytes = capacity_bytes
        return stack

    # -- layer ops ---------------------------------------------------------
    @property
    def top(self) -> SnapshotLayer:
        return self.layers[-1]

    def snapshot(self, tag: str = "") -> list[SnapshotLayer]:
        """Freeze the top, push a fresh overlay; returns the frozen chain
        (every layer below the new top) as the snapshot's layer reference."""
        self.top.tag = tag or self.top.tag
        self.top.freeze()
        frozen = list(self.layers)
        self.layers.append(SnapshotLayer(tag=f"{tag or self.base_tag}+{len(self.layers)}"))
        return frozen

    def commit(self) -> SnapshotLayer:
        """Fold the top layer down into its parent.

        With one overlay left, folds into the base store (ending any
        snapshot that referenced the old base state — commit is how a
        snapshot's changes become permanent).
        """
        top = self.layers.pop()
        if self.layers:
            parent = self.layers[-1]
            parent.frozen = False  # absorbing a fold re-opens it
            for page_no in top.discards:
                parent.pages.pop(page_no, None)
                parent.discards.add(page_no)
            for page_no, page in top.pages.items():
                parent.pages[page_no] = page
                parent.discards.discard(page_no)
            return parent
        for page_no in sorted(top.discards):
            self.base.discard(page_no * _PAGE, _PAGE)
        for page_no in sorted(top.pages):
            self.base.write(page_no * _PAGE, bytes(top.pages[page_no]))
        self.layers.append(SnapshotLayer(tag=f"{self.base_tag}+0"))
        return self.layers[-1]

    def drop(self) -> None:
        """Discard the top layer's changes (rewind to the last snapshot)."""
        self.layers.pop()
        if not self.layers or self.layers[-1].frozen:
            self.layers.append(SnapshotLayer(tag=f"{self.base_tag}+{len(self.layers)}"))

    # -- BackingStore surface ----------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return self.base.resident_bytes + sum(l.resident_bytes for l in self.layers)

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0:
            raise DeviceError(f"negative offset/size: {offset}/{size}")
        if offset + size > self.capacity_bytes:
            raise DeviceError(
                f"I/O beyond device end: offset={offset} size={size} cap={self.capacity_bytes}"
            )

    def _read_page(self, page_no: int) -> bytes:
        """Effective content of one page through the whole stack."""
        for layer in reversed(self.layers):
            page = layer.pages.get(page_no)
            if page is not None:
                return bytes(page)
            if page_no in layer.discards:
                return _ZERO_PAGE
        return self.base.page_bytes(page_no)

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            data = self._read_page(page_no)
            out[pos : pos + chunk] = data[in_page : in_page + chunk]
            pos += chunk
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        top = self.layers[-1]
        pos = 0
        size = len(data)
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            page = top.pages.get(page_no)
            if page is None:
                # COW: partial writes read the rest of the page through
                # the stack below before the top takes ownership
                if chunk == _PAGE:
                    page = bytearray(_PAGE)
                else:
                    page = bytearray(self._read_page(page_no))
                top.pages[page_no] = page
                top.discards.discard(page_no)
            page[in_page : in_page + chunk] = data[pos : pos + chunk]
            pos += chunk

    def discard(self, offset: int, size: int) -> None:
        self._check_range(offset, size)
        end = offset + size
        first_full = -(-offset // _PAGE)
        last_full = end // _PAGE
        top = self.layers[-1]
        if first_full > last_full:
            self._zero_range(offset, size)
            return
        if offset % _PAGE:
            self._zero_range(offset, first_full * _PAGE - offset)
        for page_no in range(first_full, last_full):
            top.pages.pop(page_no, None)
            top.discards.add(page_no)
        if end % _PAGE:
            self._zero_range(last_full * _PAGE, end - last_full * _PAGE)

    def _zero_range(self, offset: int, size: int) -> None:
        """Zero a sub-page range without discarding whole pages; only
        materializes a top page when the effective content is non-zero."""
        pos = 0
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            current = self._read_page(page_no)
            if current != _ZERO_PAGE:
                self.write(offset + pos, bytes(chunk))
            pos += chunk

    # -- snapshot/diff surface ---------------------------------------------
    def page_numbers(self) -> Iterator[int]:
        """Effectively-resident page numbers (base + overlays), ascending."""
        pages: set[int] = set(self.base._pages)
        for layer in self.layers:
            pages |= set(layer.pages)
        return iter(sorted(pages))

    def page_bytes(self, page_no: int) -> bytes:
        return self._read_page(page_no)

    def page_digest(self, page_no: int) -> str:
        return digest_page(self._read_page(page_no))

    def page_digests(self) -> dict[int, str]:
        out: dict[int, str] = {}
        for page_no in self.page_numbers():
            data = self._read_page(page_no)
            if data != _ZERO_PAGE:
                out[page_no] = digest_page(data)
        return out

    def content_digest(self) -> str:
        h = hashlib.sha256()
        for page_no, digest in sorted(self.page_digests().items()):
            h.update(f"{page_no}:{digest}\n".encode())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"SnapshotStack(layers={len(self.layers)}, base={self.base_tag!r})"
