"""Shared report-CLI plumbing: one table/JSON/CSV output seam.

Every report CLI (:mod:`repro.obs.report`, :mod:`repro.faults.report`,
:mod:`repro.traffic.report`) accepts the same output flags and exit
codes, wired through :func:`add_output_flags` + :func:`emit`:

``--json [PATH]``
    Serialize the report's data to JSON.  With a ``PATH`` the JSON is
    written there (and the plain-text report still prints); a bare
    ``--json`` or ``--json -`` prints the JSON to stdout *instead of*
    the plain-text report.
``--csv [PATH]``
    Same contract for the report's tabular rows as CSV.
``--out PATH``
    Write the plain-text report to ``PATH`` instead of stdout.

Exit codes follow the argparse convention: ``0`` on success, ``2`` on a
usage error (bad flag or argument — argparse exits with 2 itself).  The
old hand-rolled parsers returned 2 through the same paths, so shell
callers see identical codes.

The serializers themselves live in :mod:`repro.experiments.report`
(``results_to_json`` / ``rows_to_csv``); this module only owns flag
wiring and output routing so the three CLIs cannot drift apart again.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Sequence

from .experiments.report import results_to_json, rows_to_csv

__all__ = ["EXIT_OK", "EXIT_USAGE", "STDOUT", "Report", "add_output_flags", "emit"]

EXIT_OK = 0
EXIT_USAGE = 2

#: sentinel PATH value meaning "print to stdout" (bare ``--json`` /
#: ``--csv`` resolve to it via ``const``)
STDOUT = "-"


def add_output_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--json`` / ``--csv`` / ``--out`` flags."""
    group = parser.add_argument_group("output")
    group.add_argument(
        "--json", nargs="?", const=STDOUT, metavar="PATH",
        help="write report data as JSON to PATH; bare flag prints JSON "
             "to stdout instead of the plain-text report",
    )
    group.add_argument(
        "--csv", nargs="?", const=STDOUT, metavar="PATH",
        help="write report rows as CSV to PATH; bare flag prints CSV "
             "to stdout instead of the plain-text report",
    )
    group.add_argument(
        "--out", metavar="PATH",
        help="write the plain-text report to PATH instead of stdout",
    )


@dataclass
class Report:
    """What a report CLI produced, in every exportable shape.

    ``text`` is the human table/kv rendering, ``data`` the JSON-able
    structure behind it, and ``csv_headers``/``csv_rows`` the flat rows
    (omit them for reports with no natural tabular form — ``--csv``
    then falls back to a single-column note).
    """

    text: str
    data: Any
    csv_headers: Sequence[str] | None = None
    csv_rows: Sequence[Sequence[Any]] | None = field(default=None)


def _write(path: str, text: str, stdout) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
        if not text.endswith("\n"):
            f.write("\n")
    print(f"wrote {path}", file=stdout)


def emit(args: argparse.Namespace, report: Report, stdout=None) -> int:
    """Route a :class:`Report` according to the shared output flags."""
    stdout = sys.stdout if stdout is None else stdout
    show_text = True
    if args.json is not None:
        text = results_to_json(report.data)
        if args.json == STDOUT:
            print(text, file=stdout)
            show_text = False
        else:
            _write(args.json, text, stdout)
    if args.csv is not None:
        if report.csv_headers is None:
            headers, rows = ("report",), ((report.text,),)
        else:
            headers, rows = report.csv_headers, report.csv_rows or ()
        text = rows_to_csv(headers, rows)
        if args.csv == STDOUT:
            stdout.write(text)
            show_text = False
        else:
            _write(args.csv, text, stdout)
    if args.out:
        _write(args.out, report.text, stdout)
    elif show_text:
        print(report.text, file=stdout)
    return EXIT_OK
