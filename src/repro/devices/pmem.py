"""Persistent-memory model: byte-addressable load/store plus block compat.

DAX-style access (the paper's DAX Driver LabMod) maps the device into the
address space and moves data with CPU load/store — no queues, no commands.
We model that as synchronous transfers priced by a fixed media latency plus
a bandwidth term.  The kernel path still drives PMEM through ``submit_bio``
(single queue), which this class also supports via the BlockDevice engine.
"""

from __future__ import annotations

import numpy as np

from ..errors import DeviceError
from ..sim import Environment
from .base import BlockDevice, DeviceProfile, IoOp

__all__ = ["Pmem"]


class Pmem(BlockDevice):
    """Emulated persistent memory (DRAM-backed, as in the paper's testbed)."""

    def __init__(
        self,
        env: Environment,
        profile: DeviceProfile,
        rng: np.random.Generator | None = None,
    ) -> None:
        if profile.nqueues != 1:
            raise DeviceError("PMEM block-compat path uses a single bio queue", device=profile.name)
        super().__init__(env, profile, rng)

    # -- DAX byte-addressable path ---------------------------------------
    def store_ns(self, size: int) -> int:
        """Cost of a CPU store sequence of `size` bytes (+ persist fence)."""
        return self.profile.service_ns(IoOp.WRITE, size, rng=self.rng)

    def load_ns(self, size: int) -> int:
        return self.profile.service_ns(IoOp.READ, size, rng=self.rng)

    def dax_store(self, offset: int, data: bytes):
        """Process generator: persist ``data`` at ``offset`` via load/store."""
        if offset < 0 or offset + len(data) > self.profile.capacity_bytes:
            raise DeviceError("DAX store out of range", device=self.name)
        yield self.env.timeout(self.store_ns(len(data)))
        self.store.write(offset, data)
        self.bytes_written += len(data)

    def dax_load(self, offset: int, size: int):
        """Process generator: read ``size`` bytes; returns the bytes."""
        if offset < 0 or offset + size > self.profile.capacity_bytes:
            raise DeviceError("DAX load out of range", device=self.name)
        yield self.env.timeout(self.load_ns(size))
        self.bytes_read += size
        return self.store.read(offset, size)
