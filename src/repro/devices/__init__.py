"""Simulated storage devices with real byte backing."""

from .backing import BackingStore
from .base import BlockDevice, BlockRequest, DeviceProfile, IoOp
from .hdd import Hdd
from .nvme import Nvme
from .pmem import Pmem
from .profiles import HDD_ST600, NVME_P3700, PMEM_EMULATED, PROFILES, SATA_SSD_BX, ZNS_NVME, make_device
from .ssd import SataSsd
from .zns import Zone, ZoneState, ZnsNvme

__all__ = [
    "BackingStore",
    "BlockDevice",
    "BlockRequest",
    "DeviceProfile",
    "IoOp",
    "Hdd",
    "Nvme",
    "Pmem",
    "SataSsd",
    "make_device",
    "PROFILES",
    "NVME_P3700",
    "SATA_SSD_BX",
    "HDD_ST600",
    "PMEM_EMULATED",
    "ZNS_NVME",
    "ZnsNvme",
    "Zone",
    "ZoneState",
]
