"""Real byte storage behind every simulated device.

Timing in this package is virtual, but data is not: a write persists real
bytes into a sparse page map and a later read returns exactly those bytes.
This lets the filesystem/KVS layers above be tested for actual round-trip
integrity and crash consistency, not just for latency bookkeeping.
"""

from __future__ import annotations

from ..errors import DeviceError

__all__ = ["BackingStore"]

_PAGE = 4096


class BackingStore:
    """Sparse byte store addressed by absolute byte offset.

    Unwritten ranges read back as zeros, matching the behaviour of a
    freshly TRIMmed SSD / zeroed block device.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise DeviceError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._pages: dict[int, bytearray] = {}

    # -- bookkeeping ------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Bytes of real memory held (sparse occupancy), for tests/metrics."""
        return len(self._pages) * _PAGE

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0:
            raise DeviceError(f"negative offset/size: {offset}/{size}")
        if offset + size > self.capacity_bytes:
            raise DeviceError(
                f"I/O beyond device end: offset={offset} size={size} cap={self.capacity_bytes}"
            )

    # -- data path ----------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        pos = 0
        size = len(data)
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(_PAGE)
                self._pages[page_no] = page
            page[in_page : in_page + chunk] = data[pos : pos + chunk]
            pos += chunk

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos : pos + chunk] = page[in_page : in_page + chunk]
            pos += chunk
        return bytes(out)

    def discard(self, offset: int, size: int) -> None:
        """TRIM: zero a range, releasing fully covered pages."""
        self._check_range(offset, size)
        end = offset + size
        first_full = -(-offset // _PAGE)  # ceil div
        last_full = end // _PAGE
        if first_full > last_full:
            # Range lies entirely within one page.
            self.write(offset, b"\x00" * size)
            return
        if offset % _PAGE:
            self.write(offset, b"\x00" * (first_full * _PAGE - offset))
        for page_no in range(first_full, last_full):
            self._pages.pop(page_no, None)
        if end % _PAGE:
            self.write(last_full * _PAGE, b"\x00" * (end - last_full * _PAGE))
