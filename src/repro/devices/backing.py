"""Real byte storage behind every simulated device.

Timing in this package is virtual, but data is not: a write persists real
bytes into a sparse page map and a later read returns exactly those bytes.
This lets the filesystem/KVS layers above be tested for actual round-trip
integrity and crash consistency, not just for latency bookkeeping.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from ..errors import DeviceError

__all__ = ["BackingStore", "PAGE_SIZE"]

_PAGE = 4096
#: page granularity of every sparse store / snapshot layer
PAGE_SIZE = _PAGE

_ZERO_PAGE = bytes(_PAGE)


def digest_page(data: bytes) -> str:
    """Canonical content digest of one page (absent pages digest as zeros)."""
    return hashlib.sha256(data).hexdigest()


_ZERO_DIGEST = digest_page(_ZERO_PAGE)


class BackingStore:
    """Sparse byte store addressed by absolute byte offset.

    Unwritten ranges read back as zeros, matching the behaviour of a
    freshly TRIMmed SSD / zeroed block device.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise DeviceError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._pages: dict[int, bytearray] = {}

    # -- bookkeeping ------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Bytes of real memory held (sparse occupancy), for tests/metrics."""
        return len(self._pages) * _PAGE

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0:
            raise DeviceError(f"negative offset/size: {offset}/{size}")
        if offset + size > self.capacity_bytes:
            raise DeviceError(
                f"I/O beyond device end: offset={offset} size={size} cap={self.capacity_bytes}"
            )

    # -- data path ----------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        pos = 0
        size = len(data)
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(_PAGE)
                self._pages[page_no] = page
            page[in_page : in_page + chunk] = data[pos : pos + chunk]
            pos += chunk

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos : pos + chunk] = page[in_page : in_page + chunk]
            pos += chunk
        return bytes(out)

    def discard(self, offset: int, size: int) -> None:
        """TRIM: zero a range, releasing fully covered pages.

        Partial-page edges only touch pages that are already resident —
        zeroing a never-written range must not materialize pages (an
        absent page already reads back as zeros).
        """
        self._check_range(offset, size)
        end = offset + size
        first_full = -(-offset // _PAGE)  # ceil div
        last_full = end // _PAGE
        if first_full > last_full:
            # Range lies entirely within one page.
            self._zero_range(offset, size)
            return
        if offset % _PAGE:
            self._zero_range(offset, first_full * _PAGE - offset)
        for page_no in range(first_full, last_full):
            self._pages.pop(page_no, None)
        if end % _PAGE:
            self._zero_range(last_full * _PAGE, end - last_full * _PAGE)

    def _zero_range(self, offset: int, size: int) -> None:
        """Zero bytes in already-resident pages; absent pages stay absent."""
        pos = 0
        while pos < size:
            page_no, in_page = divmod(offset + pos, _PAGE)
            chunk = min(_PAGE - in_page, size - pos)
            page = self._pages.get(page_no)
            if page is not None:
                page[in_page : in_page + chunk] = bytes(chunk)
            pos += chunk

    # -- snapshot support -------------------------------------------------
    def page_numbers(self) -> Iterator[int]:
        """Resident page numbers in ascending order."""
        return iter(sorted(self._pages))

    def page_bytes(self, page_no: int) -> bytes:
        """Content of one page (zeros when not resident)."""
        page = self._pages.get(page_no)
        return bytes(page) if page is not None else _ZERO_PAGE

    def page_digest(self, page_no: int) -> str:
        """SHA-256 of one page's content; absent pages digest as zeros."""
        page = self._pages.get(page_no)
        return digest_page(bytes(page)) if page is not None else _ZERO_DIGEST

    def page_digests(self) -> dict[int, str]:
        """Digests of every *logically non-zero* resident page.

        Resident-but-all-zero pages are skipped so two stores holding the
        same logical bytes produce identical maps regardless of how pages
        were materialized (write-then-zero vs. never written).
        """
        out: dict[int, str] = {}
        for page_no in sorted(self._pages):
            data = bytes(self._pages[page_no])
            if data != _ZERO_PAGE:
                out[page_no] = digest_page(data)
        return out

    def content_digest(self) -> str:
        """One digest over all logical (non-zero) content, canonical across
        different sparse materializations of the same bytes."""
        h = hashlib.sha256()
        for page_no, digest in sorted(self.page_digests().items()):
            h.update(f"{page_no}:{digest}\n".encode())
        return h.hexdigest()
