"""Rotational disk model: single dispatch queue, seek-dominated service."""

from __future__ import annotations

import numpy as np

from ..errors import DeviceError
from ..sim import Environment
from .base import BlockDevice, DeviceProfile

__all__ = ["Hdd"]


class Hdd(BlockDevice):
    """A SATA/SAS hard disk.

    Single hardware queue and no internal parallelism, so queueing at the
    device is strictly FIFO; service time is dominated by the seek model
    in :meth:`BlockDevice._seek_frac` (sequential streams pay ~2% of the
    average seek, random 4KB accesses pay 25–100% of it).
    """

    def __init__(
        self,
        env: Environment,
        profile: DeviceProfile,
        rng: np.random.Generator | None = None,
    ) -> None:
        if profile.nqueues != 1 or profile.parallelism != 1:
            raise DeviceError("HDD model requires nqueues=1, parallelism=1", device=profile.name)
        if profile.seek_ns <= 0:
            raise DeviceError("HDD profile needs a positive seek_ns", device=profile.name)
        super().__init__(env, profile, rng)
