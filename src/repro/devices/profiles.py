"""Named device profiles matching the paper's Chameleon testbed.

The testbed (Section IV): Intel P3700 NVMe (2TB), Intel SSDSC2BX01 SATA SSD
(1.6TB), Seagate ST600MP0005 HDD (600GB), and bootloader-emulated PMEM.
Absolute numbers are calibrated so the *relative* results (Fig 4 anatomy
fractions, Fig 6 interface ordering, Fig 8 HOL blocking) reproduce; see
DESIGN.md "Calibration constants".

Capacities default to small simulation-friendly sizes; pass
``capacity_bytes`` for bigger runs (the backing store is sparse, so only
written pages cost memory).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import LabStorError
from ..sim import Environment
from ..units import GiB, usec, msec
from .base import DeviceProfile
from .hdd import Hdd
from .nvme import Nvme
from .zns import ZnsNvme
from .pmem import Pmem
from .ssd import SataSsd

__all__ = [
    "NVME_P3700",
    "SATA_SSD_BX",
    "HDD_ST600",
    "PMEM_EMULATED",
    "ZNS_NVME",
    "PROFILES",
    "DeviceSpec",
    "make_device",
]

NVME_P3700 = DeviceProfile(
    name="nvme",
    capacity_bytes=8 * GiB,
    nqueues=8,
    parallelism=8,
    read_lat_ns=usec(12.0),
    write_lat_ns=usec(14.0),
    read_bw=2.8e9,
    write_bw=2.0e9,
    flush_lat_ns=usec(10.0),
)

SATA_SSD_BX = DeviceProfile(
    name="ssd",
    capacity_bytes=8 * GiB,
    nqueues=1,
    parallelism=4,
    read_lat_ns=usec(55.0),
    write_lat_ns=usec(60.0),
    read_bw=0.55e9,
    write_bw=0.46e9,
    flush_lat_ns=usec(40.0),
)

HDD_ST600 = DeviceProfile(
    name="hdd",
    capacity_bytes=8 * GiB,
    nqueues=1,
    parallelism=1,
    read_lat_ns=usec(50.0),
    write_lat_ns=usec(50.0),
    read_bw=0.16e9,
    write_bw=0.15e9,
    flush_lat_ns=msec(1.0),
    seek_ns=msec(4.0),
)

ZNS_NVME = DeviceProfile(
    name="zns",
    capacity_bytes=8 * GiB,
    nqueues=8,
    parallelism=8,
    read_lat_ns=usec(12.0),
    write_lat_ns=usec(11.0),   # appends skip the FTL's mapping updates
    read_bw=2.8e9,
    write_bw=2.2e9,
    flush_lat_ns=usec(8.0),
)

PMEM_EMULATED = DeviceProfile(
    name="pmem",
    capacity_bytes=4 * GiB,
    nqueues=1,
    parallelism=1,
    read_lat_ns=300,
    write_lat_ns=350,
    read_bw=12e9,
    write_bw=8e9,
    flush_lat_ns=150,
)

PROFILES: dict[str, DeviceProfile] = {
    "nvme": NVME_P3700,
    "ssd": SATA_SSD_BX,
    "hdd": HDD_ST600,
    "pmem": PMEM_EMULATED,
    "zns": ZNS_NVME,
}

_CLASSES = {"nvme": Nvme, "ssd": SataSsd, "hdd": Hdd, "pmem": Pmem, "zns": ZnsNvme}

#: DeviceProfile fields a caller may override (``name`` is the profile key).
#: Kept sorted so validation errors list the valid keys in a stable,
#: scannable order regardless of dataclass field declaration order.
_OVERRIDABLE = tuple(sorted(
    f.name for f in dataclasses.fields(DeviceProfile) if f.name != "name"
))


def _validate_overrides(kind: str, overrides: dict) -> None:
    bad = sorted(set(overrides) - set(_OVERRIDABLE))
    if bad:
        raise LabStorError(
            f"unknown DeviceProfile override(s) {bad} for device kind {kind!r}; "
            f"valid keys: {list(_OVERRIDABLE)}"
        )


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """A typed, validated recipe for one device of a LabStorSystem.

    Replaces the stringly ``device_overrides`` dict: the kind and every
    override key are checked at construction time, so a typo fails where
    it was written instead of silently building a default device.

    ::

        LabStorSystem(devices=[DeviceSpec("nvme", nqueues=16), "hdd"])
    """

    kind: str
    overrides: dict = dataclasses.field(default_factory=dict)

    def __init__(self, kind: str, **overrides) -> None:
        if kind not in PROFILES:
            raise LabStorError(
                f"unknown device kind {kind!r}; choose from {sorted(PROFILES)}"
            )
        _validate_overrides(kind, overrides)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "overrides", overrides)

    def build(self, env: Environment, rng: np.random.Generator | None = None):
        return make_device(env, self.kind, rng=rng, **self.overrides)


def make_device(
    env: Environment,
    kind: str,
    *,
    capacity_bytes: int | None = None,
    rng: np.random.Generator | None = None,
    **overrides,
):
    """Build a device of ``kind`` ('nvme' | 'ssd' | 'hdd' | 'pmem' | 'zns').

    ``overrides`` replace any :class:`DeviceProfile` field, e.g.
    ``make_device(env, "nvme", nqueues=16)``.  Unknown override keys raise
    :class:`~repro.errors.LabStorError` listing the valid keys.
    """
    try:
        profile = PROFILES[kind]
    except KeyError:
        raise ValueError(f"unknown device kind {kind!r}; choose from {sorted(PROFILES)}") from None
    _validate_overrides(kind, overrides)
    changes = dict(overrides)
    if capacity_bytes is not None:
        changes["capacity_bytes"] = capacity_bytes
    if changes:
        profile = dataclasses.replace(profile, **changes)
    return _CLASSES[kind](env, profile, rng)
