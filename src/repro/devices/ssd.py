"""SATA SSD model: single submission queue (AHCI/NCQ), flash parallelism."""

from __future__ import annotations

import numpy as np

from ..sim import Environment
from .base import BlockDevice, DeviceProfile

__all__ = ["SataSsd"]


class SataSsd(BlockDevice):
    """A SATA SSD: one host-visible queue, several internal flash channels.

    NCQ allows the drive to service a handful of commands concurrently
    (``profile.parallelism``), but all submissions share a single hctx —
    the root of the SATA scalability wall relative to NVMe.
    """

    def __init__(
        self,
        env: Environment,
        profile: DeviceProfile,
        rng: np.random.Generator | None = None,
    ) -> None:
        if profile.nqueues != 1:
            raise ValueError("SATA SSD model requires a single hardware queue")
        super().__init__(env, profile, rng)
