"""NVMe SSD model: multiple hardware queues, deep internal parallelism."""

from __future__ import annotations

import numpy as np

from ..errors import DeviceError
from ..sim import Environment, Event
from .base import BlockDevice, BlockRequest, DeviceProfile

__all__ = ["Nvme"]


class Nvme(BlockDevice):
    """An NVMe SSD exposing per-core submission/completion queue pairs.

    The multi-hctx layout is what both the Linux blk-mq path and LabStor's
    Kernel Driver / SPDK LabMods exploit: requests on different hctxs never
    block each other, while requests within one hctx are FIFO (the source
    of head-of-line blocking when a scheduler maps a latency-sensitive app
    onto the same hctx as a throughput app — Fig 8).
    """

    def __init__(
        self,
        env: Environment,
        profile: DeviceProfile,
        rng: np.random.Generator | None = None,
    ) -> None:
        if profile.nqueues < 1:
            raise DeviceError("NVMe model requires >= 1 hardware queue", device=profile.name)
        super().__init__(env, profile, rng)
        # Per-hctx completion rings for poll-mode consumers (SPDK-style).
        self._cq_rings: list[list[BlockRequest]] = [[] for _ in range(profile.nqueues)]
        self._cq_waiters: list[list[Event]] = [[] for _ in range(profile.nqueues)]

    def _on_complete(self, req: BlockRequest, qidx: int) -> None:
        self._cq_rings[qidx].append(req)
        waiters, self._cq_waiters[qidx] = self._cq_waiters[qidx], []
        for ev in waiters:
            ev.succeed()

    # -- poll-mode completion interface (used by SPDK / Kernel Driver mods) --
    def poll_completions(self, hctx: int, max_events: int | None = None) -> list[BlockRequest]:
        """Drain completed requests from an hctx's completion ring."""
        ring = self._cq_rings[hctx]
        if max_events is None or max_events >= len(ring):
            drained, self._cq_rings[hctx] = ring, []
            return drained
        drained, self._cq_rings[hctx] = ring[:max_events], ring[max_events:]
        return drained

    def cq_event(self, hctx: int) -> Event:
        """Event that fires when the hctx completion ring becomes non-empty."""
        ev = self.env.event()
        if self._cq_rings[hctx]:
            ev.succeed()
        else:
            self._cq_waiters[hctx].append(ev)
        return ev
