"""Block-device abstraction: request types and the generic service engine.

A :class:`BlockDevice` owns one or more hardware dispatch queues (hctx).
Submitters place a :class:`BlockRequest` on an hctx; per-hctx dispatch is
FIFO (this is what produces head-of-line blocking in the Fig 8 scheduler
experiment), while the device's internal parallelism lets several hctxs
be serviced concurrently.

Completion is signalled by succeeding ``req.done`` — interrupt vs polling
cost is charged by whichever *interface* consumed the completion (kernel
IRQ path vs userspace poller), not by the device itself.

Profiles with ``coalesce_max > 1`` enable a device-level coalescing
window: an hctx that pops a read/write drains queued requests that
front/back-extend the same extent (optionally lingering
``coalesce_window_ns`` for stragglers) and services the run as one
command — the fixed per-command latency is paid once while every
constituent still completes, faults, and traces individually.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..errors import DeviceError
from ..sim import Environment, Event, Resource, Store

__all__ = ["IoOp", "BlockRequest", "DeviceProfile", "BlockDevice"]

_req_ids = itertools.count(1)


class IoOp(enum.Enum):
    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    TRIM = "trim"


@dataclass
class BlockRequest:
    """One I/O against a device, carrying real data for writes."""

    op: IoOp
    offset: int
    size: int
    data: Optional[bytes] = None
    hctx: int = 0
    priority: int = 0
    tag: Any = None
    req_id: int = field(default_factory=lambda: next(_req_ids))
    submit_ns: int = -1
    complete_ns: int = -1
    done: Optional[Event] = None  # succeeded with the request itself
    #: telemetry span (repro.obs.SpanContext) of the syscall this bio
    #: serves; set by the kernel block layer only when telemetry is armed
    obs: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.op is IoOp.WRITE:
            if self.data is None:
                raise DeviceError("WRITE requires data")
            if len(self.data) != self.size:
                raise DeviceError(f"WRITE size {self.size} != len(data) {len(self.data)}")

    @property
    def latency_ns(self) -> int:
        if self.complete_ns < 0:
            raise DeviceError("request not completed")
        return self.complete_ns - self.submit_ns

    result: Optional[bytes] = None  # filled for READ


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth parameterization of a device model.

    ``*_lat_ns``: fixed per-command service latency (media + controller).
    ``*_bw``: streaming bandwidth in bytes/second.
    ``jitter``: lognormal sigma applied to service time (0 = deterministic).
    """

    name: str
    capacity_bytes: int
    nqueues: int = 1
    parallelism: int = 1
    read_lat_ns: int = 0
    write_lat_ns: int = 0
    read_bw: float = 1e9
    write_bw: float = 1e9
    flush_lat_ns: int = 0
    seek_ns: int = 0  # average seek+rotation penalty; >0 enables the HDD seek model
    jitter: float = 0.0
    # device-level request coalescing (off by default): an hctx fuses up to
    # coalesce_max contiguous same-direction requests into one command,
    # lingering coalesce_window_ns for stragglers before dispatching
    coalesce_max: int = 1
    coalesce_window_ns: int = 0

    def __post_init__(self) -> None:
        # memo for the deterministic (no-jitter) service-time computation;
        # workloads hammer a handful of (op, size) pairs, so the float math
        # and round() collapse to one dict hit.  Not a dataclass field:
        # it must stay out of eq/hash/repr for the frozen profile.
        object.__setattr__(self, "_svc_cache", {})

    def service_ns(
        self,
        op: IoOp,
        size: int,
        *,
        seek_frac: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> int:
        """Service time for one command. ``seek_frac`` scales the seek term
        (sequential access on an HDD pays almost none of it)."""
        jittered = self.jitter > 0.0 and rng is not None
        if not jittered:
            ns = self._svc_cache.get((op, size, seek_frac))
            if ns is not None:
                return ns
        if op is IoOp.READ:
            base = self.read_lat_ns + size / self.read_bw * 1e9
        elif op is IoOp.WRITE:
            base = self.write_lat_ns + size / self.write_bw * 1e9
        elif op is IoOp.FLUSH:
            base = self.flush_lat_ns
        else:  # TRIM
            base = max(self.read_lat_ns, self.write_lat_ns) // 4
        base += self.seek_ns * seek_frac
        if jittered:
            base *= float(rng.lognormal(mean=0.0, sigma=self.jitter))
        ns = max(1, round(base))
        if not jittered and len(self._svc_cache) < 4096:
            self._svc_cache[(op, size, seek_frac)] = ns
        return ns


class BlockDevice:
    """Generic device engine: per-hctx FIFO dispatch + bounded parallelism."""

    def __init__(
        self,
        env: Environment,
        profile: DeviceProfile,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.env = env
        self.profile = profile
        self.name = profile.name
        self.rng = rng
        self.store = self._make_store()
        self._channels = Resource(env, capacity=profile.parallelism)
        self._queues = [Store(env) for _ in range(profile.nqueues)]
        self._last_offset = 0  # for the seek model
        self.completed = 0
        self.errors = 0  # commands failed by injected faults
        self.bytes_read = 0
        self.bytes_written = 0
        self.coalesced_groups = 0  # merged commands issued by the window
        self.coalesced_ops = 0     # constituent requests inside them
        #: fault-injection decision point (repro.faults); None keeps the
        #: service loop on its zero-overhead fast path
        self.faults = None
        for qidx in range(profile.nqueues):
            env.process(self._dispatch_loop(qidx), name=f"{self.name}.hctx{qidx}")

    def _make_store(self):
        from .backing import BackingStore

        return BackingStore(self.profile.capacity_bytes)

    # -- submission API ---------------------------------------------------
    @property
    def nqueues(self) -> int:
        return self.profile.nqueues

    def queue_depth(self, hctx: int) -> int:
        """Requests currently waiting (not yet in service) on an hctx."""
        return len(self._queues[hctx])

    def submit(self, req: BlockRequest) -> Event:
        """Queue a request on its hctx; returns the completion event."""
        if not 0 <= req.hctx < self.profile.nqueues:
            raise DeviceError(f"bad hctx {req.hctx}", device=self.name)
        req.submit_ns = self.env._now
        req.done = self.env.event()
        self._queues[req.hctx].put(req)
        return req.done

    # -- engine -------------------------------------------------------------
    def _seek_frac(self, req: BlockRequest) -> float:
        """1.0 for a random jump, ~0 for sequential continuation."""
        if self.profile.seek_ns == 0:
            return 0.0
        distance = abs(req.offset - self._last_offset)
        if distance == 0:
            return 0.02  # settled head, same track
        # Scale: full-stroke ~ capacity; short strokes pay proportionally less,
        # floor of 25% for any non-sequential access (rotational latency).
        return min(1.0, 0.25 + 0.75 * distance / self.profile.capacity_bytes)

    def _dispatch_loop(self, qidx: int):
        """Pull requests off the hctx in FIFO order; each waits for one of
        the device's internal channels, then services concurrently."""
        queue = self._queues[qidx]
        cmax = self.profile.coalesce_max
        cwin = self.profile.coalesce_window_ns
        while True:
            req: BlockRequest = yield queue.get()
            if cmax > 1 and req.op in (IoOp.READ, IoOp.WRITE):
                group = [req]
                self._drain_contiguous(queue, group)
                if len(group) < cmax and cwin > 0:
                    # linger briefly: back-to-back submitters (batched
                    # drivers) land their remaining parts inside the window
                    yield self.env.timeout(cwin)
                    self._drain_contiguous(queue, group)
                if len(group) > 1:
                    self.coalesced_groups += 1
                    self.coalesced_ops += len(group)
                    slot = self._channels.request()
                    yield slot
                    self.env.process(self._service_group(group, slot, qidx))
                    continue
            slot = self._channels.request()
            yield slot
            self.env.process(self._service(req, slot, qidx))

    def _drain_contiguous(self, queue: Store, group: list) -> None:
        """Steal queued requests that front/back-extend the group's extent.

        Direct removal from ``queue.items`` is safe: hctx stores are
        unbounded (no blocked putters to serve) and this loop is the
        store's only consumer.
        """
        lead = group[0]
        start = min(r.offset for r in group)
        end = max(r.offset + r.size for r in group)
        progressed = True
        while progressed and len(group) < self.profile.coalesce_max:
            progressed = False
            for r in list(queue.items):
                if r.op is not lead.op:
                    continue
                if r.offset == end:
                    end = r.offset + r.size
                elif r.offset + r.size == start:
                    start = r.offset
                else:
                    continue
                queue.items.remove(r)
                group.append(r)
                progressed = True
                if len(group) >= self.profile.coalesce_max:
                    return

    def _service(self, req: BlockRequest, slot, qidx: int):
        env = self.env
        faults = self.faults
        if faults is not None and faults.stall_until > env._now:
            # injected controller stall: service starts freeze until it lifts
            yield env.timeout(faults.stall_until - env._now)
        service = self.profile.service_ns(
            req.op, req.size, seek_frac=self._seek_frac(req), rng=self.rng
        )
        queue_ns = env._now - req.submit_ns
        self._last_offset = req.offset + req.size
        action = faults.before_service(req) if faults is not None else None
        if action is not None and action.extra_ns:
            service += action.extra_ns  # injected latency spike
        yield env.timeout(service)
        if action is not None and action.error is not None:
            # injected failure: a torn write persists its sector-aligned
            # prefix, then the command completes with an error — the waiter
            # gets the exception thrown in via req.done.fail()
            if req.op is IoOp.WRITE and action.torn_bytes:
                self.store.write(req.offset, req.data[: action.torn_bytes])
            self._channels.release(slot)
            req.complete_ns = env._now
            self.errors += 1
            req.done.fail(action.error)
            if not req.done.callbacks:
                # nobody is waiting (e.g. the submitting worker was crashed
                # mid-request): defuse so teardown audits stay clean
                req.done.defuse()
            return
        self._apply(req)
        self._channels.release(slot)
        req.complete_ns = env._now
        self.completed += 1
        if env._obs:
            env.tracer.emit(
                env._now, "obs.device",
                device=self.name, hctx=qidx, op=req.op.value, size=req.size,
                queue_ns=queue_ns, service_ns=service,
            )
            sc = req.obs
            if sc is not None:
                # kernel-baseline path: the driver above has no ExecContext,
                # so the device bills its busy window into the span directly
                sc.add_device_window(req.submit_ns, req.complete_ns)
        self._on_complete(req, qidx)
        req.done.succeed(req)

    def _service_group(self, group: list, slot, qidx: int):
        """Service a coalesced run as one command.

        The fixed per-command latency and the seek are paid once; the
        transfer term covers the combined extent.  Each constituent still
        gets its own fault decision, completion stamp, telemetry record,
        and done event — a fault injected into one constituent fails only
        that request, its run-mates complete normally.
        """
        group = sorted(group, key=lambda r: r.offset)
        faults = self.faults
        if faults is not None and faults.stall_until > self.env.now:
            yield self.env.timeout(faults.stall_until - self.env.now)
        lead = group[0]
        total = sum(r.size for r in group)
        service = self.profile.service_ns(
            lead.op, total, seek_frac=self._seek_frac(lead), rng=self.rng
        )
        t0 = self.env.now
        self._last_offset = group[-1].offset + group[-1].size
        actions = [faults.before_service(r) if faults is not None else None
                   for r in group]
        for action in actions:
            if action is not None and action.extra_ns:
                service += action.extra_ns
        yield self.env.timeout(service)
        self._channels.release(slot)
        t = self.env.tracer
        now = self.env.now
        for r, action in zip(group, actions):
            r.complete_ns = now
            if action is not None and action.error is not None:
                if r.op is IoOp.WRITE and action.torn_bytes:
                    self.store.write(r.offset, r.data[: action.torn_bytes])
                self.errors += 1
                r.done.fail(action.error)
                if not r.done.callbacks:
                    r.done.defuse()
                continue
            self._apply(r)
            self.completed += 1
            if t.obs:
                t.emit(
                    now, "obs.device",
                    device=self.name, hctx=qidx, op=r.op.value, size=r.size,
                    queue_ns=t0 - r.submit_ns, service_ns=service,
                )
                sc = r.obs
                if sc is not None:
                    sc.add_device_window(r.submit_ns, r.complete_ns)
            self._on_complete(r, qidx)
            r.done.succeed(r)
        if t.audit:
            t.emit(now, "san.batch", source=f"{self.name}.coalesce",
                   ops=len(group), delivered=len(group), double=0)

    def _on_complete(self, req: BlockRequest, qidx: int) -> None:
        """Hook for subclasses (NVMe fills its poll-mode completion ring)."""

    def _apply(self, req: BlockRequest) -> None:
        if req.op is IoOp.WRITE:
            assert req.data is not None
            self.store.write(req.offset, req.data)
            self.bytes_written += req.size
        elif req.op is IoOp.READ:
            req.result = self.store.read(req.offset, req.size)
            self.bytes_read += req.size
        elif req.op is IoOp.TRIM:
            self.store.discard(req.offset, req.size)
        # FLUSH: no data effect (writes apply immediately in this model; the
        # page-cache layer above is what delays durability).
