"""Zoned-namespace (ZNS) NVMe model.

The paper's Driver LabMods section notes userspace I/O mechanisms "may
provide APIs other than block (e.g., zoned namespace and queues)".  This
device divides the LBA space into fixed-size zones that must be written
sequentially at the zone's write pointer; zones are appended to, finished,
and reset as a unit — the contract log-structured stacks (like LabFS)
exploit on real ZNS SSDs.

Operations beyond the block set:

- ``zone append``: write at the zone's current write pointer; the device
  assigns (and returns) the offset.
- ``zone reset``: rewind the write pointer and discard the zone's data.
- plain reads anywhere; plain writes only *exactly at* the write pointer.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import DeviceError
from ..sim import Environment
from .base import BlockDevice, BlockRequest, DeviceProfile, IoOp
from .nvme import Nvme

__all__ = ["ZoneState", "Zone", "ZnsNvme"]


class ZoneState(enum.Enum):
    EMPTY = "empty"
    OPEN = "open"
    FULL = "full"


class Zone:
    __slots__ = ("index", "start", "size", "wp", "state")

    def __init__(self, index: int, start: int, size: int) -> None:
        self.index = index
        self.start = start
        self.size = size
        self.wp = start          # write pointer (absolute byte offset)
        self.state = ZoneState.EMPTY

    @property
    def remaining(self) -> int:
        return self.start + self.size - self.wp


class ZnsNvme(Nvme):
    """NVMe with zoned-namespace semantics enforced at the device."""

    def __init__(
        self,
        env: Environment,
        profile: DeviceProfile,
        rng: np.random.Generator | None = None,
        zone_size: int = 16 * 1024 * 1024,
    ) -> None:
        super().__init__(env, profile, rng)
        if profile.capacity_bytes % zone_size:
            raise DeviceError("capacity must be a multiple of the zone size")
        self.zone_size = zone_size
        self.zones = [
            Zone(i, i * zone_size, zone_size)
            for i in range(profile.capacity_bytes // zone_size)
        ]
        self.appends = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def zone_of(self, offset: int) -> Zone:
        if not 0 <= offset < self.profile.capacity_bytes:
            raise DeviceError(f"offset {offset} outside the namespace", device=self.name)
        return self.zones[offset // self.zone_size]

    def _validate_write(self, req: BlockRequest) -> None:
        zone = self.zone_of(req.offset)
        if zone.state is ZoneState.FULL:
            raise DeviceError(f"zone {zone.index} is FULL", device=self.name)
        if req.offset != zone.wp:
            raise DeviceError(
                f"zone {zone.index}: write at {req.offset} != write pointer {zone.wp} "
                "(zones are sequential-write-required)",
                device=self.name,
            )
        if req.size > zone.remaining:
            raise DeviceError(f"write crosses the end of zone {zone.index}", device=self.name)

    # -- public ZNS API -----------------------------------------------------
    def zone_append(self, zone_index: int, data: bytes, hctx: int = 0):
        """Process generator: append to a zone; returns the assigned offset."""
        try:
            zone = self.zones[zone_index]
        except IndexError:
            raise DeviceError(f"no zone {zone_index}", device=self.name) from None
        if zone.state is ZoneState.FULL:
            raise DeviceError(f"zone {zone_index} is FULL", device=self.name)
        if len(data) > zone.remaining:
            raise DeviceError(f"append overflows zone {zone_index}", device=self.name)
        offset = zone.wp
        req = BlockRequest(op=IoOp.WRITE, offset=offset, size=len(data), data=data,
                           hctx=hctx % self.nqueues)
        # the append advances the pointer at submission (device serializes
        # appends per zone, assigning offsets in arrival order)
        zone.wp += len(data)
        zone.state = ZoneState.FULL if zone.remaining == 0 else ZoneState.OPEN
        self.appends += 1
        # the device assigned this offset itself: skip the wp validation
        yield super().submit(req)
        return offset

    def zone_reset(self, zone_index: int):
        """Process generator: rewind and discard a zone."""
        try:
            zone = self.zones[zone_index]
        except IndexError:
            raise DeviceError(f"no zone {zone_index}", device=self.name) from None
        req = BlockRequest(op=IoOp.TRIM, offset=zone.start, size=zone.size)
        yield super().submit(req)
        zone.wp = zone.start
        zone.state = ZoneState.EMPTY
        self.resets += 1

    # -- block-compat: enforce the sequential-write rule --------------------
    def submit(self, req: BlockRequest):
        if req.op is IoOp.WRITE:
            zone = self.zone_of(req.offset)
            if req.offset == zone.wp:
                # in-order write through the block path also advances the wp
                self._validate_write(req)
                zone.wp += req.size
                zone.state = ZoneState.FULL if zone.remaining == 0 else ZoneState.OPEN
            elif req.offset + req.size <= zone.wp:
                # overwrite below the write pointer: rejected on real ZNS
                raise DeviceError(
                    f"zone {zone.index}: overwrite below the write pointer", device=self.name
                )
            else:
                self._validate_write(req)  # raises with the precise reason
        return super().submit(req)
