"""Sharded, replicated GenericKVS across cluster nodes.

:class:`HashRing` places keys with consistent hashing: every node owns
``vnodes`` SHA-256-positioned virtual points on a 64-bit ring, and a
key's **preference list** is the first N *distinct* nodes walking
clockwise from the key's position — reordered so distinct failure
domains come first (a rack loss costs at most one replica of any key
while domains suffice).  Adding or removing a node moves only the keys
adjacent to its virtual points, and placement depends on nothing but
the node names — every gateway computes identical lists.

:class:`ShardedKVS` mirrors the :class:`~repro.mods.generic_kvs.GenericKVS`
generator surface (put/get/remove/exists) over that placement:

- **writes** fan out to all N replicas concurrently and succeed at a
  write quorum (majority by default); once too many replicas have
  failed for the quorum to be reachable, the op raises
  :class:`~repro.errors.QuorumError` carrying the last replica error;
- **reads** fan out to all N replicas and return the first successful
  value (quorum 1) — a crashed replica's branch fails over silently,
  which is what keeps reads alive through a node kill;
- **application errors** (an ``ENOENT`` get, a malformed op) are not
  failures of the replica but answers from it: the first one settles
  the op by raising, exactly as a plain GenericKVS call would.

Late replica completions after the quorum settles are harmless: the
accumulator checks the settled event before touching it, and the spare
branches run as daemons on the shared clock (deterministically).

**Anti-entropy** (``anti_entropy=True``): a replica that crashes and
restarts recovers only what *its own* metadata log held at the power
cut — writes acked by the surviving quorum during the outage are
missing, and a quorum-1 read that happens to land on the rejoined node
would serve stale data.  With anti-entropy on, the gateway registers a
restart hook on every replica node; a restarting node is marked stale —
**excluded from read fan-outs only** (writes keep the full preference
list: fresh writes make it fresher) — while a resync daemon
quorum-reads every tracked key the node holds a replica of from the
healthy peers and write-repairs it (or replays a deletion) on the
recovered node, then lifts the read exclusion.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..core.requests import LabRequest
from ..errors import (
    FsError,
    IpcError,
    MediaError,
    QueueFull,
    QuorumError,
    RetriesExhausted,
    RuntimeCrashed,
    TimeoutError,
    WorkerCrashed,
)
from ..sim import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from .node import ClusterClient

__all__ = ["HashRing", "ShardedKVS", "FAILOVER_ERRORS"]

#: replica errors a fan-out absorbs and fails over from; anything else
#: (assertion-grade bugs, bad arguments) propagates immediately
FAILOVER_ERRORS = (
    TimeoutError,
    RuntimeCrashed,
    WorkerCrashed,
    RetriesExhausted,
    MediaError,
    QueueFull,
    IpcError,
)


def _hash64(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash placement with virtual nodes and failure domains."""

    def __init__(
        self,
        nodes: Iterable[Union[str, tuple[str, str]]],
        vnodes: int = 64,
    ) -> None:
        self.vnodes = vnodes
        self.domains: dict[str, str] = {}
        for entry in nodes:
            name, domain = entry if isinstance(entry, tuple) else (entry, entry)
            self.domains[name] = domain
        if not self.domains:
            raise QuorumError("hash ring needs at least one node")
        points: list[tuple[int, str]] = []
        for name in self.domains:
            for v in range(vnodes):
                points.append((_hash64(f"{name}#{v}"), name))
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]

    def nodes(self) -> list[str]:
        return list(self.domains)

    def _walk(self, key: str) -> list[str]:
        """Distinct nodes in clockwise ring order from the key's position."""
        start = bisect_right(self._positions, _hash64(key))
        seen: list[str] = []
        n = len(self._points)
        for i in range(n):
            name = self._points[(start + i) % n][1]
            if name not in seen:
                seen.append(name)
                if len(seen) == len(self.domains):
                    break
        return seen

    def preference(self, key: str, n: int) -> list[str]:
        """The key's first ``n`` replica holders, distinct failure domains
        first (ring order breaks ties within and across domains)."""
        if n > len(self.domains):
            raise QuorumError(
                f"cannot place {n} replicas on {len(self.domains)} node(s)"
            )
        walk = self._walk(key)
        chosen: list[str] = []
        used_domains: set[str] = set()
        for name in walk:  # pass 1: one node per failure domain
            if len(chosen) == n:
                break
            domain = self.domains[name]
            if domain not in used_domains:
                chosen.append(name)
                used_domains.add(domain)
        for name in walk:  # pass 2: fill from remaining nodes in ring order
            if len(chosen) == n:
                break
            if name not in chosen:
                chosen.append(name)
        return chosen

    def primary(self, key: str) -> str:
        return self.preference(key, 1)[0]


class ShardedKVS:
    """The cluster-wide key-value surface (build via
    :meth:`Cluster.shard_kvs`; extra gateways via :meth:`bind`)."""

    def __init__(
        self,
        client: "ClusterClient",
        *,
        mount: str,
        ring: HashRing,
        replicas: int = 1,
        quorum: Optional[int] = None,
        timeout_ns: Optional[int] = None,
        anti_entropy: bool = False,
    ) -> None:
        if replicas < 1:
            raise QuorumError("need at least one replica")
        if replicas > len(ring.domains):
            raise QuorumError(
                f"{replicas} replicas need {replicas} nodes; "
                f"ring has {len(ring.domains)}"
            )
        self.client = client
        self.env = client.env
        self.cost = client.home.cost
        self.mount = mount
        self.ring = ring
        self.replicas = replicas
        self.write_quorum = quorum if quorum is not None else replicas // 2 + 1
        if not 1 <= self.write_quorum <= replicas:
            raise QuorumError(
                f"write quorum {self.write_quorum} outside [1, {replicas}]"
            )
        #: per-replica-op deadline; None waits out crashes/retries
        self.timeout_ns = timeout_ns
        self.fanouts = 0
        self.failovers = 0
        self.quorum_failures = 0
        self.anti_entropy = anti_entropy
        #: nodes currently excluded from read fan-outs (rejoining after a
        #: crash, not yet re-synced)
        self._stale: set[str] = set()
        #: keys this gateway has ever written (resync's worklist; a
        #: removed key stays tracked so resync can replay the deletion)
        self._tracked: set[str] = set()
        self.resyncs = 0
        self.repaired = 0
        if anti_entropy:
            # pure callback registration — no events, so arming anti-
            # entropy leaves an un-crashed run's trace digest untouched
            for name in sorted(ring.domains):
                node = client.cluster.nodes[name]
                node.runtime.on_restart(
                    lambda n=name: self._on_node_restart(n)
                )

    def bind(self, client: "ClusterClient") -> "ShardedKVS":
        """A second gateway on another node sharing this placement.

        Anti-entropy stays with the primary gateway — bound gateways
        would otherwise register duplicate restart hooks and race the
        same repairs."""
        return ShardedKVS(
            client, mount=self.mount, ring=self.ring, replicas=self.replicas,
            quorum=self.write_quorum, timeout_ns=self.timeout_ns,
        )

    # ------------------------------------------------------------------
    def _intercept(self):
        # same client-side interception price GenericKVS pays
        yield self.env.timeout(self.cost.generic_fs_ns)

    def _fanout(self, op: str, payload: dict, targets: Sequence[str], need: int):
        """Process generator: issue ``op`` to every target, settle at
        ``need`` acks (value = first success), fail once unreachable."""
        env = self.env
        self.fanouts += 1
        done = env.event()
        total = len(targets)
        state = {"ok": 0, "fail": 0, "last_err": None, "value": None, "valued": False}

        def replica(node_name: str):
            req = LabRequest(op=op, payload=dict(payload))
            try:
                value = yield from self.client.call_on(
                    node_name, self.mount, req, timeout_ns=self.timeout_ns
                )
            except (Interrupt, GeneratorExit):
                raise
            except FAILOVER_ERRORS as exc:
                self.failovers += 1
                state["fail"] += 1
                state["last_err"] = exc
                if not done.triggered and state["fail"] > total - need:
                    self.quorum_failures += 1
                    done.fail(QuorumError(
                        f"{op} {payload.get('key')!r}: quorum {need}/{total} "
                        f"unreachable after {state['fail']} replica failure(s); "
                        f"last: {exc!r}"
                    ))
            except Exception as exc:  # app-level error (ENOENT, bad op):
                # the service answered; its verdict is authoritative, not
                # something another replica can out-vote
                if not done.triggered:
                    done.fail(exc)
            else:
                state["ok"] += 1
                if not state["valued"]:
                    state["value"] = value
                    state["valued"] = True
                if not done.triggered and state["ok"] >= need:
                    done.succeed(state["value"])

        for name in targets:  # spawn order == preference order: deterministic
            env.process(
                replica(name),
                name=f"skvs.{op}.{payload.get('key')}@{name}",
                daemon=True,
            )
        return (yield done)  # raises QuorumError when the event failed

    def _targets(self, key: str) -> list[str]:
        return self.ring.preference(key, self.replicas)

    def _targets_read(self, key: str) -> list[str]:
        """Preference list minus stale (rejoined, un-resynced) replicas;
        falls back to the full list when exclusion would leave nothing."""
        pref = self._targets(key)
        if not self._stale:
            return pref
        healthy = [n for n in pref if n not in self._stale]
        return healthy or pref

    # -- anti-entropy --------------------------------------------------
    def _on_node_restart(self, node_name: str) -> None:
        """Restart hook: quarantine the rejoined replica's reads and
        launch its resync."""
        self._stale.add(node_name)
        self.env.process(
            self._resync(node_name),
            name=f"skvs.resync.{node_name}",
            daemon=True,
        )

    def _resync(self, node_name: str):
        """Process generator: repair every tracked key the recovered node
        replicates from a quorum read of its healthy peers, then lift the
        read exclusion."""
        for key in sorted(self._tracked):
            pref = self._targets(key)
            if node_name not in pref:
                continue
            healthy = [n for n in pref if n != node_name and n not in self._stale]
            if not healthy:
                continue  # no fresh peer to read from; leave quarantined
            req: Optional[LabRequest] = None
            try:
                value = yield from self._fanout("kvs.get", {"key": key}, healthy, 1)
            except FsError:
                # deleted during the outage: replay the deletion
                req = LabRequest(op="kvs.remove", payload={"key": key})
            except QuorumError:
                continue  # peers unreachable right now; skip this key
            else:
                req = LabRequest(op="kvs.put", payload={"key": key, "value": value})
            try:
                yield from self.client.call_on(
                    node_name, self.mount, req, timeout_ns=self.timeout_ns
                )
            except FsError:
                pass  # removing an already-absent key: nothing to repair
            except FAILOVER_ERRORS:
                return  # node died again mid-resync; next restart retries
            self.repaired += 1
        self._stale.discard(node_name)
        self.resyncs += 1

    # -- GenericKVS surface ------------------------------------------------
    def put(self, key: str, value: bytes):
        self._tracked.add(key)
        yield from self._intercept()
        return (yield from self._fanout(
            "kvs.put", {"key": key, "value": value},
            self._targets(key), self.write_quorum,
        ))

    def get(self, key: str):
        yield from self._intercept()
        return (yield from self._fanout(
            "kvs.get", {"key": key}, self._targets_read(key), 1,
        ))

    def remove(self, key: str):
        yield from self._intercept()
        return (yield from self._fanout(
            "kvs.remove", {"key": key}, self._targets(key), self.write_quorum,
        ))

    def exists(self, key: str):
        yield from self._intercept()
        return (yield from self._fanout(
            "kvs.exists", {"key": key}, self._targets_read(key), 1,
        ))
