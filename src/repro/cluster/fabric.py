"""The network fabric model: links, costs, and cross-node transfers.

Generalizes the cross-core queue-pair cost model of :mod:`repro.ipc` to
cross-node hops.  Where a shared-memory queue pair charges one
``shm_hop_ns`` cache transfer per pop, a fabric hop decomposes into the
NIC fetch (``nic_tx_ns``, charged as the NIC queue pair's pop cost), a
**serialization** term (``bytes / bandwidth``, holding the directed
link's wire — capacity-1, so concurrent messages queue behind each
other), and a **propagation** term (``link_lat_ns``, pipelined: paid
after the wire is released, so back-to-back messages overlap their
flight time).  Completions pay ``nic_rx_ns`` on the reap side.

Links are declared per directed pair; :meth:`NetworkFabric.add_link`
installs both directions by default.  Topology is explicit — routing a
call between unlinked nodes raises :class:`~repro.errors.FabricError`
rather than inventing a path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import FabricError
from ..sim import Environment, Resource

__all__ = ["FabricCost", "FabricLink", "NetworkFabric", "FabricTransport",
           "DEFAULT_FABRIC_COST"]


@dataclass(frozen=True)
class FabricCost:
    """Per-link cost constants, nanoseconds and bytes/second.

    Defaults approximate one switch hop of a 100GbE datacenter fabric;
    override per link for heterogeneous topologies (e.g. a slow
    cross-rack uplink next to fast in-rack links).
    """

    link_lat_ns: int = 1500          # propagation + one switch traversal
    bw_bytes_per_s: float = 12.5e9   # 100 Gb/s payload rate
    nic_tx_ns: int = 600             # doorbell + NIC DMA fetch of the WQE
    nic_rx_ns: int = 600             # completion reap on the initiator

    def serialize_ns(self, nbytes: int) -> int:
        """Wire occupancy of an ``nbytes`` message."""
        return round(nbytes / self.bw_bytes_per_s * 1e9)

    def with_overrides(self, **kw) -> "FabricCost":
        return replace(self, **kw)


DEFAULT_FABRIC_COST = FabricCost()


class FabricLink:
    """One directed link.  The wire is a capacity-1 resource held for the
    serialization term only; propagation is paid after release so
    consecutive messages pipeline (message N+1 serializes while message
    N is still in flight)."""

    def __init__(self, env: Environment, src: str, dst: str, cost: FabricCost) -> None:
        self.env = env
        self.src = src
        self.dst = dst
        self.cost = cost
        self._wire = Resource(env, capacity=1)
        self.transfers = 0
        self.bytes_moved = 0

    def transfer(self, nbytes: int):
        """Process generator: move ``nbytes`` across the link."""
        with self._wire.request() as grant:
            yield grant
            yield self.env.timeout(self.cost.serialize_ns(nbytes))
        yield self.env.timeout(self.cost.link_lat_ns)
        self.transfers += 1
        self.bytes_moved += nbytes

    def send(self, nbytes: int):
        """Process generator: serialize ``nbytes`` onto the wire and
        return the **arrival time** without sleeping out the propagation.

        The sharded runner's transport: the sender only experiences the
        wire occupancy (identical contention to :meth:`transfer`); the
        propagation term is realized on the *receiving* environment as the
        returned ``release + link_lat_ns`` delivery timestamp.  Counters
        move at wire release, exactly when :meth:`transfer` would have
        started the flight.
        """
        with self._wire.request() as grant:
            yield grant
            yield self.env.timeout(self.cost.serialize_ns(nbytes))
        self.transfers += 1
        self.bytes_moved += nbytes
        return self.env.now + self.cost.link_lat_ns

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<FabricLink {self.src}->{self.dst} "
                f"transfers={self.transfers} bytes={self.bytes_moved}>")


class NetworkFabric:
    """The cluster's set of directed links, declared at topology time."""

    def __init__(self, env: Environment, cost: FabricCost | None = None) -> None:
        self.env = env
        self.cost = cost or DEFAULT_FABRIC_COST
        self._links: dict[tuple[str, str], FabricLink] = {}

    def add_link(self, src: str, dst: str, cost: FabricCost | None = None,
                 *, bidirectional: bool = True) -> None:
        if src == dst:
            raise FabricError(f"node {src!r} needs no link to itself")
        pairs = [(src, dst), (dst, src)] if bidirectional else [(src, dst)]
        for a, b in pairs:
            if (a, b) not in self._links:
                self._links[(a, b)] = FabricLink(self.env, a, b, cost or self.cost)

    def link(self, src: str, dst: str) -> FabricLink:
        try:
            return self._links[(src, dst)]
        except KeyError:
            known = sorted(f"{a}->{b}" for a, b in self._links)
            raise FabricError(
                f"no fabric link {src}->{dst}; topology has {known}"
            ) from None

    def connected(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def links(self) -> list[FabricLink]:
        """All links in deterministic (src, dst) order."""
        return [self._links[k] for k in sorted(self._links)]

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            f"{ln.src}->{ln.dst}": {"transfers": ln.transfers,
                                    "bytes": ln.bytes_moved}
            for ln in self.links()
        }


class FabricTransport:
    """Adapts the fabric to a peer-keyed ``transfer(peer, nbytes)``
    surface (the :class:`~repro.pfs.OrangeFs` network seam): each message
    from ``home`` pays the directed link to the peer's node.  A peer
    mapped to the home node itself transfers for free (node-local I/O
    crosses no wire)."""

    def __init__(self, fabric: NetworkFabric, home: str, peers: dict) -> None:
        self.fabric = fabric
        self.home = home
        #: logical peer key ("mds", data-server index, ...) -> node name
        self.peers = dict(peers)
        self.messages = 0

    def transfer(self, peer, nbytes: int):
        """Process generator: move ``nbytes`` from home to ``peer``."""
        try:
            node = self.peers[peer]
        except KeyError:
            raise FabricError(
                f"transport has no peer {peer!r}; knows {sorted(map(str, self.peers))}"
            ) from None
        self.messages += 1
        if node == self.home:
            return
        yield from self.fabric.link(self.home, node).transfer(nbytes)
