"""The Node abstraction: one LabStor deployment inside a cluster.

A :class:`Node` is what :class:`~repro.system.LabStorSystem` is to a
single machine — its own devices, Runtime, workers, and clients — except
it rides the **cluster's** shared discrete-event clock, RNG registry,
sanitizer, and telemetry instead of owning them.  That sharing is the
whole point: every node of the cluster advances on one virtual timeline,
so cross-node interactions (fabric transfers, replica fan-out, failure
and recovery) are globally ordered and digest-reproducible.

Node deliberately duck-types the slice of the LabStorSystem surface the
rest of the codebase composes against: :class:`~repro.builder.StackBuilder`
needs ``.devices`` / ``.runtime`` / ``.install_faults``, and
:class:`~repro.faults.FaultEngine` needs ``.env`` / ``.runtime`` /
``.devices`` — so stacks mount and fault plans install on a node exactly
as they do on a standalone system, unchanged.

Construct nodes through :class:`~repro.cluster.ClusterBuilder`, not
directly; the builder owns topology and route construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Union

from ..builder import StackBuilder
from ..core.client import LabStorClient
from ..core.runtime import LabStorRuntime, RuntimeConfig
from ..devices.profiles import DeviceSpec
from ..mods import STANDARD_REPO

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultEngine, FaultPlan
    from .builder import Cluster

__all__ = ["Node", "ClusterClient"]


class Node:
    """One machine of the cluster: devices + Runtime on the shared clock."""

    def __init__(
        self,
        cluster: "Cluster",
        name: str,
        *,
        devices: Iterable[Union[str, DeviceSpec]] = ("nvme",),
        config: RuntimeConfig | None = None,
        failure_domain: str | None = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.name = name
        #: placement constraint: replicas prefer distinct failure domains
        #: (rack/row/PDU); defaults to the node name, i.e. every node is
        #: its own domain
        self.failure_domain = failure_domain if failure_domain is not None else name
        self.cost = cluster.cost
        # device RNG streams are node-qualified so two nodes with the same
        # device kind draw from independent, seed-stable streams
        self.devices = {}
        for dev in devices:
            spec = dev if isinstance(dev, DeviceSpec) else DeviceSpec(dev)
            self.devices[spec.kind] = spec.build(
                self.env, rng=cluster.rngs.stream(f"{name}.device.{spec.kind}")
            )
        self.runtime = LabStorRuntime(
            self.env, self.devices, cost=self.cost, config=config
        )
        self.runtime.mount_repo("standard", STANDARD_REPO)
        self._clients: list[LabStorClient] = []
        self.faults = None

    # -- LabStorSystem-compatible surface ------------------------------
    def stack(self, mount: str) -> StackBuilder:
        """Begin a fluent stack configuration on this node."""
        return StackBuilder(self, mount)

    def install_faults(self, plan: Union["FaultPlan", str]) -> "FaultEngine":
        """Arm deterministic fault injection scoped to this node.

        Draws from the node-qualified ``"{name}.faults"`` RNG stream so
        plans on different nodes replay independently."""
        from ..faults import FaultEngine, FaultPlan

        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if self.faults is None:
            self.faults = FaultEngine(
                self.env, plan, rng=self.cluster.rngs.stream(f"{self.name}.faults")
            ).install(self)
        else:
            self.faults.extend(plan)
        return self.faults

    def client(self, ordered: bool = True) -> LabStorClient:
        """Create and connect a client on this node (setup-time only: the
        connect handshake drives the simulation via ``env.run``)."""
        c = LabStorClient(self.env, self.runtime)
        self.env.run(self.env.process(c.connect(ordered=ordered)))
        self._clients.append(c)
        return c

    @property
    def online(self) -> bool:
        return self.runtime.online

    def shutdown(self, drain: bool = True) -> None:
        """Tear this node down; an offline (crashed, never restarted)
        node skips the drain — its queues can never empty."""
        if drain and self.runtime.online:
            for c in self._clients:
                if c.conn is not None:
                    self.env.run(c.conn.qp.drained())
        for c in self._clients:
            c.close()
        self._clients.clear()
        self.runtime.shutdown()

    def run(self, *args, **kw):
        return self.env.run(*args, **kw)

    def process(self, gen, **kw):
        return self.env.process(gen, **kw)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "online" if self.runtime.online else "OFFLINE"
        return (f"<Node {self.name} [{state}] domain={self.failure_domain} "
                f"devices={sorted(self.devices)}>")


class ClusterClient:
    """A client homed on one node that can call services cluster-wide.

    Local calls go straight through the node's shared-memory queue pair,
    exactly like a standalone LabStorClient.  Remote calls ride the
    home node's NIC queue pair onto the fabric (see
    :class:`~repro.cluster.routing.Route`): serialize out, execute on
    the owning node through that route's proxy client, serialize the
    response back, reap the NIC completion.

    Create via :meth:`Cluster.client` during setup — connecting runs the
    IPC handshake with ``env.run``, which must not happen mid-simulation.
    """

    def __init__(self, cluster: "Cluster", home: Node, ordered: bool = True) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.home = home
        self.local = home.client(ordered=ordered)
        #: remote calls issued (local calls are visible on ``local``)
        self.remote_calls = 0

    @property
    def pid(self) -> int:
        return self.local.pid

    def call_on(self, node_name: str, path: str, req, timeout_ns: int | None = None):
        """Process generator: execute ``req`` against ``path`` on a named
        node, routing over the fabric when the node is not home."""
        if node_name == self.home.name:
            stack, _ = self.home.runtime.namespace.resolve(path)
            return (yield from self.local.call(stack, req, timeout_ns=timeout_ns))
        self.remote_calls += 1
        route = self.cluster.route(self.home.name, node_name)
        return (yield from route.call(path, req, timeout_ns=timeout_ns))

    def call(self, path: str, req, timeout_ns: int | None = None):
        """Process generator: route by the cluster service registry."""
        owner = self.cluster.owner_of(path)
        return (yield from self.call_on(owner, path, req, timeout_ns=timeout_ns))

    def close(self) -> None:
        self.local.close()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<ClusterClient pid={self.pid} home={self.home.name}>"
