"""Per-node cluster views and the par-capable scenario programs.

The sharded runner (:mod:`repro.sim.par`) gives every node its own
private Environment; this module supplies the cluster-side half of that
bargain.  A :class:`ClusterSpec` is pure data — node declarations, stack
chains, link costs — from which each world deterministically rebuilds
*its own node only*.  :class:`ParClusterView` then duck-types the
:class:`~repro.cluster.Cluster` surface a driver needs
(``client()``/``route()``/``owner_of()``/``shard_kvs()``) with
cross-node calls carried by :class:`~repro.cluster.routing.RemoteRoute`
/ :class:`~repro.cluster.routing.RouteExecutor` pairs over the runner's
timestamped message ports instead of a shared proxy client.

Because a world's construction consults nothing but the spec and its
own node name, the event stream each node observes is identical whether
its world shares a process with every other node (``shards=1``) or runs
alone in a fork — the invariant the byte-identical-digest guarantee
rests on.

Wiring rule, per bidirectionally-linked pair ``(me, peer)``:

- one egress port ``"me->peer"`` (shared sequence counter);
- a :class:`RemoteRoute` sending ``("me->peer", req)`` messages and
  consuming ``("peer->me", resp)`` ingress;
- a :class:`RouteExecutor` consuming ``("peer->me", req)`` ingress and
  answering on the same ``"me->peer"`` port — responses share the
  locally-owned outbound :class:`~repro.cluster.fabric.FabricLink` with
  this node's own requests, the same wire contention the serial
  :class:`~repro.cluster.routing.Route` models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Optional

from ..core.runtime import RuntimeConfig
from ..errors import FabricError, LabStorError
from ..kernel.cpu import DEFAULT_COST, CostModel
from ..units import msec, usec
from .builder import Cluster
from .fabric import DEFAULT_FABRIC_COST, FabricCost, FabricLink
from .kvs import HashRing, ShardedKVS
from .node import ClusterClient, Node
from .routing import RemoteRoute, RouteExecutor

__all__ = [
    "StackDecl", "NodeDecl", "LinkDecl", "ClusterSpec", "ParClusterView",
    "SpecParProgram", "ClusterParProgram", "ControlParProgram",
    "E14ParProgram", "CallbackParProgram", "ParHandle", "PAR_SCENARIOS",
]


# ----------------------------------------------------------------------
# the spec: topology as pure data
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StackDecl:
    """One mounted stack: the mount path plus the chain of StackBuilder
    calls that shaped it, replayed verbatim at world build time."""

    mount: str
    #: ((method, args, kwargs), ...) applied to ``node.stack(mount)``
    calls: tuple = ()


@dataclass(frozen=True)
class NodeDecl:
    name: str
    devices: tuple = ("nvme",)
    config: Optional[RuntimeConfig] = None
    failure_domain: Optional[str] = None
    stacks: tuple = ()


@dataclass(frozen=True)
class LinkDecl:
    a: str
    b: str
    cost: Optional[FabricCost] = None
    bidirectional: bool = True


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster topology as data: everything a world needs to rebuild
    its node, and everything the runner needs for routing + lookahead."""

    seed: int = 0
    cost: CostModel = field(default=DEFAULT_COST)
    fabric_cost: Optional[FabricCost] = None
    nodes: tuple = ()
    links: tuple = ()

    def node(self, name: str) -> NodeDecl:
        for d in self.nodes:
            if d.name == name:
                return d
        raise LabStorError(
            f"spec has no node {name!r}; declared: {self.node_names()}")

    def node_names(self) -> list[str]:
        return sorted(d.name for d in self.nodes)

    def directed_links(self) -> dict[tuple[str, str], FabricCost]:
        """Every directed (src, dst) pair and its cost.  No declared
        links means full mesh — the ClusterBuilder default."""
        default = self.fabric_cost or DEFAULT_FABRIC_COST
        out: dict[tuple[str, str], FabricCost] = {}
        if self.links:
            for ld in self.links:
                pairs = ([(ld.a, ld.b), (ld.b, ld.a)] if ld.bidirectional
                         else [(ld.a, ld.b)])
                for pair in pairs:
                    out.setdefault(pair, ld.cost or default)
        else:
            names = self.node_names()
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    out[(a, b)] = out[(b, a)] = default
        return out

    def lookahead_ns(self) -> Optional[int]:
        links = self.directed_links()
        if not links:
            return None
        return min(c.link_lat_ns for c in links.values())


# ----------------------------------------------------------------------
# the per-world view
# ----------------------------------------------------------------------
class ParClusterView:
    """One node's local slice of the cluster, duck-typing the Cluster
    surface drivers and :class:`ShardedKVS` consume.

    The backing :class:`Cluster` holds exactly one node; its RngRegistry
    is seeded from the spec, and because every stream a node draws is
    qualified by the node's name, local draws are independent of which
    other nodes share the process.
    """

    def __init__(self, spec: ClusterSpec, world) -> None:
        self.spec = spec
        self.world = world
        self.env = world.env
        self.node_name = world.node_name
        #: mount path -> owning node name, over the WHOLE spec
        self.services: dict[str, str] = {}
        self._routes: dict[tuple[str, str], RemoteRoute] = {}
        self._executors: list[RouteExecutor] = []
        self._clients: list[ClusterClient] = []
        self.cluster: Optional[Cluster] = None
        self.node: Optional[Node] = None

    # -- construction --------------------------------------------------
    def build_local(self) -> "ParClusterView":
        spec, me = self.spec, self.node_name
        decl = spec.node(me)
        cl = Cluster(seed=spec.seed, cost=spec.cost,
                     fabric_cost=spec.fabric_cost, env=self.env)
        self.cluster = cl
        self.node = cl.add_node(
            me, devices=decl.devices, config=decl.config,
            failure_domain=decl.failure_domain,
        )
        for sd in decl.stacks:
            sb = self.node.stack(sd.mount)
            for meth, a, kw in sd.calls:
                sb = getattr(sb, meth)(*a, **kw)
            sb.mount()
        for d in spec.nodes:
            for sd in d.stacks:
                self.services[sd.mount] = d.name
        directed = spec.directed_links()
        for (src, dst), cost in sorted(directed.items()):
            if src == me:
                cl.fabric.add_link(src, dst, cost, bidirectional=False)
        cl._built = True  # sharding is legal once topology is frozen
        env = self.env
        for peer in sorted(d.name for d in spec.nodes if d.name != me):
            if (me, peer) not in directed or (peer, me) not in directed:
                continue
            port = self.world.out_port(peer)
            out = cl.fabric.link(me, peer)
            route = RemoteRoute(env, me, peer, out, port)
            self.world.on_message(f"{peer}->{me}", "resp", route.deliver)
            self.world.register_route(route)
            self._routes[(me, peer)] = route
            executor = RouteExecutor(env, peer, self.node, out, port)
            self.world.on_message(f"{peer}->{me}", "req", executor.deliver)
            self.world.register_executor(executor)
            self._executors.append(executor)
        return self

    # -- Cluster surface -----------------------------------------------
    def route(self, src: str, dst: str) -> RemoteRoute:
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise FabricError(
                f"no route {src}->{dst} on node {self.node_name!r}; "
                f"local routes: {sorted(self._routes)}"
            ) from None

    def owner_of(self, path: str) -> str:
        best = None
        for mount, owner in self.services.items():
            if path == mount or path.startswith(mount):
                if best is None or len(mount) > len(best[0]):
                    best = (mount, owner)
        if best is None:
            raise LabStorError(
                f"no cluster service owns {path!r}; "
                f"registered: {sorted(self.services)}"
            )
        return best[1]

    def client(self, node: Optional[str] = None,
               ordered: bool = True) -> ClusterClient:
        if node is not None and node != self.node_name:
            raise FabricError(
                f"a sharded-runner client homes on its own world; this is "
                f"{self.node_name!r}, not {node!r}")
        c = ClusterClient(self, self.node, ordered=ordered)
        self._clients.append(c)
        return c

    def shard_kvs(
        self,
        mount: str = "kvs::/shard",
        *,
        replicas: int = 1,
        quorum: Optional[int] = None,
        vnodes: int = 64,
        variant: str = "min",
        device: str = "nvme",
        nworkers: int = 8,
        timeout_ns: Optional[int] = None,
        anti_entropy: bool = False,
    ) -> ShardedKVS:
        """The :meth:`Cluster.shard_kvs` analogue: mount locally if
        absent, hash over the *spec's* full ``(name, failure_domain)``
        metadata, gateway on the local client."""
        if anti_entropy:
            raise LabStorError(
                "anti-entropy registers restart hooks on remote nodes, "
                "which don't exist in this world — unsupported under the "
                "sharded runner")
        try:
            self.node.runtime.namespace.resolve(mount)
        except LabStorError:
            (self.node.stack(mount)
                 .kvs(variant=variant, nworkers=nworkers)
                 .device(device)
                 .mount())
        ring = HashRing(
            [(d.name, d.failure_domain)
             for d in sorted(self.spec.nodes, key=lambda d: d.name)],
            vnodes=vnodes,
        )
        return ShardedKVS(
            self.client(), mount=mount, ring=ring, replicas=replicas,
            quorum=quorum, timeout_ns=timeout_ns, anti_entropy=False,
        )

    def install_faults(self, plan, *, node: str):
        """Arm ``plan`` iff this world owns ``node`` — programs declare
        faults symmetrically and only the owning world arms them."""
        if node != self.node_name:
            return None
        return self.node.install_faults(plan)

    def process(self, gen, **kw):
        return self.env.process(gen, **kw)

    def stats(self) -> dict:
        return {
            "node": {"online": self.node.online,
                     "domain": self.node.failure_domain},
            "fabric": self.cluster.fabric.stats(),
            "routes": {
                f"{s}->{d}": {"remote_calls": r.remote_calls,
                              "nacks": r.nacks}
                for (s, d), r in sorted(self._routes.items())
            },
        }

    def shutdown(self, drain: bool = True) -> None:
        env = self.env
        if drain:
            for key in sorted(self._routes):
                env.run(self._routes[key].qp.drained())
        for c in self._clients:
            c.close()
        self._clients.clear()
        for key in sorted(self._routes):
            self._routes[key].close()
        for ex in self._executors:
            ex.close()
        self.node.shutdown(drain=drain)
        while (env._urgent or env._due or env._heap) and env.peek() <= env.now:
            env.step()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<ParClusterView {self.node_name!r} "
                f"routes={sorted(self._routes)}>")


# ----------------------------------------------------------------------
# programs
# ----------------------------------------------------------------------
class SpecParProgram:
    """Base for spec-driven parallel programs: owns the ClusterSpec and
    the world -> view construction; subclasses add drivers and checks."""

    epoch_ns = int(msec(1))
    min_virtual_ns = 0

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.spec = self.make_spec()

    def make_spec(self) -> ClusterSpec:
        raise NotImplementedError

    def nodes(self) -> list[str]:
        return self.spec.node_names()

    def lookahead_ns(self) -> Optional[int]:
        return self.spec.lookahead_ns()

    def build(self, world) -> ParClusterView:
        view = ParClusterView(self.spec, world).build_local()
        self.setup(view)
        return view

    def setup(self, view: ParClusterView) -> None:
        pass

    def drivers(self, world):
        return []

    def finish(self, world) -> dict:
        view = world.ctx
        out = view.stats()
        view.shutdown()
        return out


def _assert_nic_conservation(view: ParClusterView) -> None:
    for (s, d), r in sorted(view._routes.items()):
        qp = r.qp
        assert qp.submitted_total == qp.completed_total, (
            f"{s}->{d}: NIC conservation broken after shutdown "
            f"({qp.submitted_total} submitted, {qp.completed_total} completed)"
        )


class ClusterParProgram(SpecParProgram):
    """The "cluster" scenario under the sharded runner: the same 3-node
    replicated KVS, power cut on ``b`` at 3 ms, failover reads — with
    the cut landing mid-window so NACK discipline is exercised across a
    barrier (the in-flight replica op on ``b`` rides out the crash and
    comes back as a timestamped NACK message in a later round)."""

    nkeys = 18

    def make_spec(self) -> ClusterSpec:
        cfg = RuntimeConfig(nworkers=1, restart_wait_ns=int(usec(50)))
        return ClusterSpec(
            seed=11 + self.seed,
            nodes=tuple(
                NodeDecl(name, config=cfg, failure_domain=f"rack-{i + 1}")
                for i, name in enumerate("abc")
            ),
        )

    def setup(self, view: ParClusterView) -> None:
        view.kvs = view.shard_kvs("kvs::/det", replicas=2,
                                  timeout_ns=int(msec(1)))
        view.install_faults(f"power_cut:at={int(msec(3))}", node="b")
        view.hits = None

    def drivers(self, world):
        if world.node_name != "a":
            return []
        return [("cluster.driver", self._drive(world.ctx))]

    def _drive(self, view: ParClusterView):
        kvs, env, seed, nkeys = view.kvs, view.env, self.seed, self.nkeys
        for i in range(nkeys):
            yield from kvs.put(f"det{i}", bytes([(i + seed) % 251]) * 96)
        # ride past the power cut, then read through the outage
        if env.now < msec(3):
            yield env.timeout(int(msec(3)) - env.now + int(usec(100)))
        hits = 0
        for i in range(nkeys):
            if (yield from kvs.get(f"det{i}")) == bytes([(i + seed) % 251]) * 96:
                hits += 1
        # let straggler replica branches (timeouts, crash ride-outs)
        # resolve so the failover count is settled, not racing teardown
        yield env.timeout(int(msec(2)))
        view.hits = hits

    def finish(self, world) -> dict:
        view = world.ctx
        out = {
            "node": view.node_name,
            "online": view.node.online,
            "remote_calls": sum(r.remote_calls
                                for r in view._routes.values()),
            "nacks": sum(r.nacks for r in view._routes.values()),
            "handled": sum(x.handled for x in view._executors),
        }
        if view.hits is not None:
            out["hits"] = view.hits
            out["failovers"] = view.kvs.failovers
        view.shutdown()
        _assert_nic_conservation(view)
        return out

    def reduce(self, results: dict) -> dict:
        a = results["a"]
        assert a.get("hits") == self.nkeys, (
            f"failover reads lost keys ({a.get('hits')}/{self.nkeys})")
        assert not results["b"]["online"], "power cut never fired"
        assert a["failovers"] > 0, "no replica branch ever failed over"
        remote = sum(r["remote_calls"] for r in results.values())
        assert remote > 0, "no call ever crossed the fabric"
        return {
            "hits": a["hits"],
            "failovers": a["failovers"],
            "remote_calls": remote,
            "nacks": sum(r["nacks"] for r in results.values()),
            "handled": sum(r["handled"] for r in results.values()),
        }


class ControlParProgram:
    """The "control" scenario sharded: two independent chaos-control
    deployments (open-loop tenants, fault plan, self-healing daemon) on
    their own nodes, plus a cross-node KVS exchange so every barrier
    round carries real fabric traffic — including NACKs while the peer
    rides out its 6 ms power cut."""

    min_virtual_ns = 0
    names = ("ctl0", "ctl1")

    def __init__(self, seed: int = 0, *,
                 duration_ns: int = int(msec(8))) -> None:
        self.seed = seed
        self.duration_ns = int(duration_ns)
        self._cost = FabricCost()
        # the YCSB preload advances the clock during build; 2 ms clears
        # it with margin while keeping the 2/3/6 ms chaos plan intact
        self.epoch_ns = int(msec(2))

    def nodes(self) -> list[str]:
        return list(self.names)

    def lookahead_ns(self) -> int:
        return self._cost.link_lat_ns

    def build(self, world) -> SimpleNamespace:
        from ..ctl.presets import build_chaos_control

        me = world.node_name
        idx = self.names.index(me)
        system, engine, daemon = build_chaos_control(
            env=world.env, seed=self.seed + 17 * idx,
            duration_ns=self.duration_ns,
        )
        peer = self.names[1 - idx]
        link = FabricLink(world.env, me, peer, self._cost)
        port = world.out_port(peer)
        route = RemoteRoute(world.env, me, peer, link, port)
        world.on_message(f"{peer}->{me}", "resp", route.deliver)
        world.register_route(route)
        host = SimpleNamespace(name=me, runtime=system.runtime,
                               client=system.client)
        executor = RouteExecutor(world.env, peer, host, link, port)
        world.on_message(f"{peer}->{me}", "req", executor.deliver)
        world.register_executor(executor)
        return SimpleNamespace(system=system, engine=engine, daemon=daemon,
                               route=route, executor=executor, me=me,
                               summary=None, cross=None)

    def drivers(self, world):
        ctx = world.ctx
        return [
            (f"traffic.drive.{ctx.me}", self._engine(ctx)),
            (f"cross.drive.{ctx.me}", self._cross(ctx, world.env)),
        ]

    def _engine(self, ctx):
        ctx.summary = yield from ctx.engine.drive()

    def _cross(self, ctx, env):
        from ..core.requests import LabRequest
        from ..ctl.presets import MOUNT

        nops = 24
        val = bytes([33]) * 64
        oks = errors = hit = 0
        for i in range(nops):
            req = LabRequest(op="kvs.put",
                             payload={"key": f"x.{ctx.me}.{i}", "value": val})
            try:
                yield from ctx.route.call(MOUNT, req, timeout_ns=int(msec(2)))
                oks += 1
            except Exception:  # noqa: BLE001 - NACKed puts are the point
                errors += 1
            yield env.timeout(int(usec(250)))
        for i in range(nops):
            req = LabRequest(op="kvs.get", payload={"key": f"x.{ctx.me}.{i}"})
            try:
                if (yield from ctx.route.call(
                        MOUNT, req, timeout_ns=int(msec(2)))) == val:
                    hit += 1
            except Exception:  # noqa: BLE001
                errors += 1
        ctx.cross = {"puts_ok": oks, "gets_hit": hit, "remote_errors": errors}

    def finish(self, world) -> dict:
        ctx = world.ctx
        if ctx.daemon is not None:
            ctx.daemon.stop()
        env = world.env
        env.run(ctx.route.qp.drained())
        out = {
            "node": ctx.me,
            "summary": ctx.summary,
            "cross": ctx.cross,
            "remote_calls": ctx.route.remote_calls,
            "nacks": ctx.route.nacks,
            "handled": ctx.executor.handled,
            "ticks": ctx.daemon.ticks if ctx.daemon is not None else 0,
        }
        ctx.route.close()
        ctx.executor.close()
        ctx.system.shutdown()
        qp = ctx.route.qp
        assert qp.submitted_total == qp.completed_total, (
            f"{ctx.me}: NIC conservation broken after shutdown")
        return out

    def reduce(self, results: dict) -> dict:
        for name in self.names:
            r = results[name]
            assert r["summary"] is not None, f"{name}: engine never finished"
            assert r["cross"] is not None, f"{name}: cross driver never finished"
            assert r["handled"] > 0, f"{name}: executed no remote requests"
            assert r["cross"]["puts_ok"] > 0, f"{name}: every remote put failed"
        return {
            "remote_calls": sum(r["remote_calls"] for r in results.values()),
            "nacks": sum(r["nacks"] for r in results.values()),
            "ticks": {n: results[n]["ticks"] for n in self.names},
            "cross": {n: results[n]["cross"] for n in self.names},
        }


class E14ParProgram(SpecParProgram):
    """E14 (sharded KVS scaling) as a parallel program: the same fixed
    offered load — ``nclients`` closed loops, client *i* entering at its
    home node ``n{i % nnodes}``'s gateway — over a cross-rack topology
    whose larger propagation delay buys the runner wide windows (many
    whole KVS ops per barrier)."""

    def __init__(self, seed: int = 0, *, nnodes: int = 4, replicas: int = 1,
                 nclients: int = 96, ops_per_client: int = 16,
                 value_size: int = 256, vnodes: int = 64,
                 link_lat_ns: int = int(usec(100))) -> None:
        self.nnodes = nnodes
        self.replicas = replicas
        self.nclients = nclients
        self.ops_per_client = ops_per_client
        self.value_size = value_size
        self.vnodes = vnodes
        self.link_lat_ns = int(link_lat_ns)
        super().__init__(seed)

    def make_spec(self) -> ClusterSpec:
        cfg = RuntimeConfig(nworkers=1, min_workers=1, max_workers=1)
        fc = FabricCost(link_lat_ns=self.link_lat_ns)
        return ClusterSpec(
            seed=self.seed,
            fabric_cost=fc,
            nodes=tuple(NodeDecl(f"n{i}", config=cfg)
                        for i in range(self.nnodes)),
        )

    def setup(self, view: ParClusterView) -> None:
        view.kvs = view.shard_kvs("kvs::/bench", replicas=self.replicas,
                                  vnodes=self.vnodes)

    def drivers(self, world):
        idx = int(world.node_name[1:])
        kvs = world.ctx.kvs
        return [
            (f"bench.loop{i}", self._loop(kvs, i))
            for i in range(self.nclients)
            if i % self.nnodes == idx
        ]

    def _loop(self, kvs, i: int):
        payload = bytes(self.value_size)
        for j in range(self.ops_per_client):
            yield from kvs.put(f"c{i}.k{j}", payload)
        for j in range(self.ops_per_client):
            yield from kvs.get(f"c{i}.k{j}")

    def finish(self, world) -> dict:
        view = world.ctx
        out = {
            "node": view.node_name,
            "virtual_ns": view.env.now,
            "remote_calls": sum(r.remote_calls
                                for r in view._routes.values()),
            "nacks": sum(r.nacks for r in view._routes.values()),
            "fabric_bytes": sum(
                s["bytes"] for s in view.cluster.fabric.stats().values()),
            "failovers": view.kvs.failovers,
        }
        view.shutdown()
        _assert_nic_conservation(view)
        return out

    def reduce(self, results: dict) -> dict:
        from ..units import to_sec

        total_ops = self.nclients * self.ops_per_client * 2
        end = max(r["virtual_ns"] for r in results.values())
        elapsed_ns = max(0, end - self.epoch_ns)
        return {
            "nnodes": self.nnodes,
            "replicas": self.replicas,
            "ops": total_ops,
            "elapsed_ms": elapsed_ns / 1e6,
            "kops_s": (total_ops / to_sec(elapsed_ns) / 1e3
                       if elapsed_ns else 0.0),
            "remote_calls": sum(r["remote_calls"] for r in results.values()),
            "fabric_MB": sum(r["fabric_bytes"]
                             for r in results.values()) / 1e6,
            "fanout_failovers": sum(r["failovers"]
                                    for r in results.values()),
        }


# ----------------------------------------------------------------------
# the ClusterBuilder front door: build(shards=N)
# ----------------------------------------------------------------------
class CallbackParProgram(SpecParProgram):
    """A SpecParProgram assembled from user callbacks instead of a
    subclass — what :meth:`ParHandle.run` constructs under the hood.

    Each callback receives the per-node :class:`ParClusterView`:

    - ``setup(view)`` runs after the local node is built (mount shards,
      install faults — gate on ``view.node_name``).
    - ``drivers(view)`` returns ``[(name, generator), ...]`` for that
      node; return ``[]`` (or gate on ``view.node_name``) for nodes that
      only serve remote traffic.
    - ``finish(view)`` returns the node's result dict; the default
      collects ``view.stats()`` and shuts the world down — a custom
      finish must call ``view.shutdown()`` itself.
    - ``reduce(results)`` folds the per-node dicts into one value.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        drivers=None,
        setup=None,
        finish=None,
        reduce=None,
        epoch_ns: int = int(msec(1)),
        min_virtual_ns: int = 0,
    ) -> None:
        self.seed = spec.seed
        self.spec = spec
        self._drivers = drivers
        self._setup = setup
        self._finish = finish
        self.epoch_ns = int(epoch_ns)
        self.min_virtual_ns = int(min_virtual_ns)
        if reduce is not None:
            self.reduce = reduce

    def setup(self, view: ParClusterView) -> None:
        if self._setup is not None:
            self._setup(view)

    def drivers(self, world):
        if self._drivers is None:
            return []
        return list(self._drivers(world.ctx))

    def finish(self, world) -> dict:
        if self._finish is not None:
            return self._finish(world.ctx)
        return super().finish(world)


class ParHandle:
    """What ``ClusterBuilder.build(shards=N)`` returns: the frozen
    :class:`ClusterSpec` plus a shard count, runnable under the
    conservative windowed parallel runner::

        handle = (cluster(seed=7)
                  .node("n0").stack("kvs::/t").kvs(variant="min").device("nvme")
                  .node("n1").stack("kvs::/t").kvs(variant="min").device("nvme")
                  .build(shards=2))
        result = handle.run(drivers=my_drivers, trace=True)

    ``result`` is a :class:`repro.sim.par.ParResult`; with ``trace=True``
    its ``digest`` is byte-identical at every shard count.
    """

    def __init__(self, spec: ClusterSpec, shards: int) -> None:
        self.spec = spec
        self.shards = int(shards)

    def lookahead_ns(self) -> Optional[int]:
        return self.spec.lookahead_ns()

    def program(self, **kw) -> CallbackParProgram:
        """Assemble the program without running it (for run_program)."""
        return CallbackParProgram(self.spec, **kw)

    def run(
        self,
        *,
        drivers=None,
        setup=None,
        finish=None,
        reduce=None,
        epoch_ns: int = int(msec(1)),
        min_virtual_ns: int = 0,
        trace: bool = False,
    ):
        from ..sim.par import run_program

        program = self.program(
            drivers=drivers, setup=setup, finish=finish, reduce=reduce,
            epoch_ns=epoch_ns, min_virtual_ns=min_virtual_ns,
        )
        return run_program(program, shards=self.shards, trace=trace)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<ParHandle nodes={self.spec.node_names()} "
                f"shards={self.shards}>")


PAR_SCENARIOS = {
    "cluster": ClusterParProgram,
    "control": ControlParProgram,
    "e14": E14ParProgram,
}
