"""Cluster composition: the :class:`Cluster` runtime and the fluent
:class:`ClusterBuilder` front door.

The builder extends the StackBuilder idiom one level up — nodes instead
of LabMods, links instead of layer edges::

    from repro.cluster import cluster

    cl = (
        cluster(seed=7)
        .node("n0").stack("kvs::/t").kvs(variant="min").device("nvme")
        .node("n1").stack("kvs::/t").kvs(variant="min").device("nvme")
        .node("n2", failure_domain="rack-b")
        .stack("kvs::/t").kvs(variant="min").device("nvme")
        .build()
    )
    skvs = cl.shard_kvs("kvs::/t", replicas=3)

Inside a ``.stack(...)`` scope every chainable StackBuilder knob is
available (``kvs``, ``fs``, ``device``, ``sched``, ...); calling a
builder-level verb (``node``, ``link``, ``connect_all``, ``build``,
``stack``) mounts the pending stack and pops back out.  Note this means
``build()`` after a ``stack(...)`` finishes the **cluster** — compose a
raw StackSpec through ``node_obj.stack(...)`` if that's what you need.

A Cluster owns exactly one Environment, sanitizer, telemetry pipeline,
and RngRegistry; nodes and the fabric share them, which is what makes a
multi-node run a single deterministic simulation.
"""

from __future__ import annotations

from typing import Optional, Union

from ..devices.profiles import DeviceSpec
from ..errors import FabricError, LabStorError
from ..kernel.cpu import DEFAULT_COST, CostModel
from ..obs.telemetry import Telemetry
from ..obs.telemetry import maybe_attach as _maybe_attach_telemetry
from ..sim import Environment, RngRegistry
from ..sim.sanitizer import maybe_attach
from .fabric import FabricCost, NetworkFabric
from .kvs import HashRing, ShardedKVS
from .node import ClusterClient, Node
from .routing import Route

__all__ = ["Cluster", "ClusterBuilder", "cluster"]


class Cluster:
    """A set of nodes on one shared clock, wired by a network fabric.

    Build through :func:`cluster` / :class:`ClusterBuilder` — that is the
    public path to multi-node composition; constructing Node or Route by
    hand skips topology bookkeeping.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        cost: CostModel = DEFAULT_COST,
        fabric_cost: FabricCost | None = None,
        telemetry: Union[Telemetry, bool, None] = None,
        env: Environment | None = None,
    ) -> None:
        self.env = env if env is not None else Environment()
        # one sanitizer / telemetry pipeline for the whole cluster: nodes
        # share the env, and attaching per node would double-count events
        self.sanitizer = maybe_attach(self.env)
        self.telemetry: Optional[Telemetry] = None
        if isinstance(telemetry, Telemetry):
            self.telemetry = telemetry.install(self.env)
        elif telemetry is True:
            self.telemetry = Telemetry().install(self.env)
        elif telemetry is None:
            self.telemetry = _maybe_attach_telemetry(self.env)
        self.rngs = RngRegistry(seed)
        self.cost = cost
        self.fabric = NetworkFabric(self.env, fabric_cost)
        self.nodes: dict[str, Node] = {}
        self._routes: dict[tuple[str, str], Route] = {}
        #: service registry: mount path -> owning node name
        self.services: dict[str, str] = {}
        self._clients: list[ClusterClient] = []
        self._built = False

    # -- topology ------------------------------------------------------
    def add_node(self, name: str, **kw) -> Node:
        if self._built:
            raise LabStorError("cluster is built; topology is frozen")
        if name in self.nodes:
            raise LabStorError(f"node {name!r} already in cluster")
        node = Node(self, name, **kw)
        self.nodes[name] = node
        return node

    def link(self, a: str, b: str, cost: FabricCost | None = None,
             *, bidirectional: bool = True) -> None:
        for name in (a, b):
            if name not in self.nodes:
                raise FabricError(
                    f"cannot link unknown node {name!r}; "
                    f"cluster has {sorted(self.nodes)}"
                )
        self.fabric.add_link(a, b, cost, bidirectional=bidirectional)

    def connect_all(self, cost: FabricCost | None = None) -> None:
        """Full mesh over the current node set (idempotent)."""
        names = sorted(self.nodes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                self.fabric.add_link(a, b, cost)

    def build_routes(self) -> None:
        """Instantiate a Route (NIC QP + proxy client) per directed link.

        Setup-time only: each route's proxy connect drives the sim.
        Routes are created in sorted (src, dst) order so pids and queue
        ids assign deterministically regardless of declaration order."""
        for src, dst in sorted(
            (a, b) for a in self.nodes for b in self.nodes
            if a != b and self.fabric.connected(a, b)
        ):
            if (src, dst) not in self._routes:
                self._routes[(src, dst)] = Route(
                    self, self.nodes[src], self.nodes[dst]
                )
        self._built = True

    def route(self, src: str, dst: str) -> Route:
        try:
            return self._routes[(src, dst)]
        except KeyError:
            hint = (
                "cluster not built yet — call build()"
                if not self._built
                else f"declared routes: {sorted(self._routes)}"
            )
            raise FabricError(f"no route {src}->{dst}; {hint}") from None

    # -- services ------------------------------------------------------
    def register_service(self, path: str, node_name: str) -> None:
        if node_name not in self.nodes:
            raise LabStorError(f"unknown node {node_name!r}")
        owner = self.services.get(path)
        if owner is not None and owner != node_name:
            raise LabStorError(
                f"service {path!r} already registered on {owner!r}"
            )
        self.services[path] = node_name

    def owner_of(self, path: str) -> str:
        """Longest registered prefix wins (mirrors Namespace.resolve)."""
        best = None
        for mount, owner in self.services.items():
            if path == mount or path.startswith(mount):
                if best is None or len(mount) > len(best[0]):
                    best = (mount, owner)
        if best is None:
            raise LabStorError(
                f"no cluster service owns {path!r}; "
                f"registered: {sorted(self.services)}"
            )
        return best[1]

    # -- clients and sharding ------------------------------------------
    def client(self, node: str | None = None, ordered: bool = True) -> ClusterClient:
        """A cluster-wide client homed on ``node`` (default: first node
        in sorted order).  Setup-time only — connecting runs the sim."""
        if not self.nodes:
            raise LabStorError("cluster has no nodes")
        home = self.nodes[node] if node is not None else (
            self.nodes[sorted(self.nodes)[0]]
        )
        c = ClusterClient(self, home, ordered=ordered)
        self._clients.append(c)
        return c

    def shard_kvs(
        self,
        mount: str = "kvs::/shard",
        *,
        replicas: int = 1,
        quorum: int | None = None,
        vnodes: int = 64,
        variant: str = "min",
        device: str = "nvme",
        nworkers: int = 8,
        gateway: str | None = None,
        timeout_ns: int | None = None,
        anti_entropy: bool = False,
    ) -> ShardedKVS:
        """Shard (and replicate) a GenericKVS namespace across every node.

        Mounts a LabKVS stack at ``mount`` on each node that does not
        already carry one, builds the consistent-hash ring over
        ``(name, failure_domain)``, and returns the sharded surface.
        """
        if not self._built:
            raise LabStorError("build() the cluster before sharding a KVS")
        for name in sorted(self.nodes):
            node = self.nodes[name]
            try:
                node.runtime.namespace.resolve(mount)
            except LabStorError:
                (node.stack(mount)
                     .kvs(variant=variant, nworkers=nworkers)
                     .device(device)
                     .mount())
        ring = HashRing(
            [(n.name, n.failure_domain)
             for n in (self.nodes[k] for k in sorted(self.nodes))],
            vnodes=vnodes,
        )
        return ShardedKVS(
            self.client(gateway), mount=mount, ring=ring,
            replicas=replicas, quorum=quorum, timeout_ns=timeout_ns,
            anti_entropy=anti_entropy,
        )

    # -- faults --------------------------------------------------------
    def install_faults(self, plan, *, node: str) -> object:
        """Arm a fault plan scoped to one named node."""
        try:
            target = self.nodes[node]
        except KeyError:
            raise LabStorError(
                f"unknown node {node!r}; cluster has {sorted(self.nodes)}"
            ) from None
        return target.install_faults(plan)

    # -- lifecycle -----------------------------------------------------
    def stats(self) -> dict:
        return {
            "nodes": {
                n.name: {"online": n.online, "domain": n.failure_domain}
                for n in (self.nodes[k] for k in sorted(self.nodes))
            },
            "fabric": self.fabric.stats(),
            "routes": {
                f"{s}->{d}": {"remote_calls": r.remote_calls, "nacks": r.nacks}
                for (s, d), r in sorted(self._routes.items())
            },
        }

    def shutdown(self, drain: bool = True) -> None:
        """Tear the whole cluster down: drain NIC queue pairs, close
        routes and clients, stop every node's Runtime daemons."""
        if drain:
            # a route to a dead node still drains: its in-flight ops ride
            # out the crash window and complete as NACKs
            for key in sorted(self._routes):
                self.env.run(self._routes[key].qp.drained())
        for c in self._clients:
            c.close()
        self._clients.clear()
        for key in sorted(self._routes):
            self._routes[key].close()
        for name in sorted(self.nodes):
            self.nodes[name].shutdown(drain=drain)
        # unwind the just-scheduled interrupts (same dance as
        # LabStorSystem.shutdown) so no dead process lingers
        env = self.env
        while (env._urgent or env._due or env._heap) and env.peek() <= env.now:
            env.step()

    def run(self, *args, **kw):
        return self.env.run(*args, **kw)

    def process(self, gen, **kw):
        return self.env.process(gen, **kw)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<Cluster nodes={sorted(self.nodes)} "
                f"routes={len(self._routes)} built={self._built}>")


class _StackScope:
    """A ``.stack(...)`` scope inside a ClusterBuilder chain.

    Chainable StackBuilder knobs return the scope; builder-level verbs
    flush (mount + register the service) and continue the outer chain.
    """

    _BUILDER_VERBS = frozenset(
        {"node", "link", "connect_all", "build", "stack"}
    )

    def __init__(self, outer: "ClusterBuilder", node: Node, mount: str) -> None:
        self._outer = outer
        self._node = node
        self._inner = node.stack(mount)
        self._mount = mount
        self._flushed = False
        self._calls: list[tuple] = []

    def _flush(self) -> None:
        if self._flushed:
            return
        self._flushed = True
        self._inner.mount()
        self._outer._cluster.register_service(self._mount, self._node.name)
        self._outer._record_stack(self._node.name, self._mount,
                                  tuple(self._calls))

    def mount(self):
        """Mount now and return the outer builder (optional — any
        builder verb flushes implicitly)."""
        self._flush()
        return self._outer

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self._BUILDER_VERBS:
            self._flush()
            return getattr(self._outer, name)
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def proxy(*args, **kw):
            out = attr(*args, **kw)
            if out is self._inner:
                # a chainable knob — record it so the scope can be
                # replayed verbatim inside each shard's private world
                self._calls.append((name, args, kw))
                return self
            return out

        return proxy


class ClusterBuilder:
    """Fluent cluster composition (create via :func:`cluster`)."""

    def __init__(self, **cluster_kw) -> None:
        self._cluster = Cluster(**cluster_kw)
        self._cluster_kw = dict(cluster_kw)
        self._current: Node | None = None
        self._linked = False
        # declaration log so build(shards=N) can freeze the topology as
        # data and replay it node-by-node inside forked shard worlds
        self._node_decls: list[dict] = []
        self._stack_decls: dict[str, list] = {}
        self._link_decls: list[tuple] = []

    def _record_stack(self, node_name: str, mount: str, calls: tuple) -> None:
        self._stack_decls.setdefault(node_name, []).append((mount, calls))

    def node(
        self,
        name: str,
        *,
        devices=("nvme",),
        config=None,
        failure_domain: str | None = None,
    ) -> "ClusterBuilder":
        """Add a node; subsequent ``stack()`` calls target it."""
        if devices is not None:
            devices = tuple(
                d if isinstance(d, DeviceSpec) else d for d in devices
            )
        self._current = self._cluster.add_node(
            name, devices=devices, config=config, failure_domain=failure_domain
        )
        self._node_decls.append({
            "name": name, "devices": devices, "config": config,
            "failure_domain": failure_domain,
        })
        return self

    def stack(self, mount: str) -> _StackScope:
        """Open a stack scope on the current node."""
        if self._current is None:
            raise LabStorError("call node(...) before stack(...)")
        return _StackScope(self, self._current, mount)

    def link(self, a: str, b: str, cost: FabricCost | None = None,
             *, bidirectional: bool = True) -> "ClusterBuilder":
        self._cluster.link(a, b, cost, bidirectional=bidirectional)
        self._linked = True
        self._link_decls.append((a, b, cost, bidirectional))
        return self

    def connect_all(self, cost: FabricCost | None = None) -> "ClusterBuilder":
        self._cluster.connect_all(cost)
        self._linked = True
        self._link_decls.append(("*", "*", cost, True))
        return self

    def _freeze_spec(self):
        from .par import ClusterSpec, LinkDecl, NodeDecl, StackDecl

        nodes = tuple(
            NodeDecl(
                d["name"], devices=d["devices"], config=d["config"],
                failure_domain=d["failure_domain"],
                stacks=tuple(
                    StackDecl(mount, calls)
                    for mount, calls in self._stack_decls.get(d["name"], [])
                ),
            )
            for d in self._node_decls
        )
        names = sorted(d["name"] for d in self._node_decls)
        links: list = []
        for rec in self._link_decls:
            if rec[0] == "*":  # connect_all marker: expand the full mesh
                for i, a in enumerate(names):
                    for b in names[i + 1:]:
                        links.append(LinkDecl(a, b, rec[2], True))
            else:
                a, b, cost, bidi = rec
                links.append(LinkDecl(a, b, cost, bidi))
        kw = self._cluster_kw
        return ClusterSpec(
            seed=kw.get("seed", 0), cost=kw.get("cost", DEFAULT_COST),
            fabric_cost=kw.get("fabric_cost"),
            nodes=nodes, links=tuple(links),
        )

    def build(self, shards: int | None = None):
        """Finalize the topology.

        ``build()`` defaults to a full mesh when no links were declared,
        instantiates all routes, and returns the live :class:`Cluster`.

        ``build(shards=N)`` instead freezes the recorded declarations
        into a :class:`~repro.cluster.par.ClusterSpec` and returns a
        :class:`~repro.cluster.par.ParHandle` whose ``run(...)`` executes
        the topology under the conservative windowed parallel runner —
        node-sharded across ``N`` processes, byte-identical to serial.
        """
        if shards is None:
            if not self._linked and len(self._cluster.nodes) > 1:
                self._cluster.connect_all()
            self._cluster.build_routes()
            return self._cluster
        if not isinstance(shards, int) or shards < 1:
            raise LabStorError(f"shards must be a positive int, got {shards!r}")
        if self._cluster_kw.get("env") is not None:
            raise LabStorError(
                "build(shards=N) owns its environments per node-world; "
                "drop env= from cluster(...)"
            )
        from .par import ParHandle

        # the eagerly-built parent Cluster is discarded unrouted: shard
        # worlds rebuild their node subset from the frozen spec instead
        return ParHandle(self._freeze_spec(), shards)


def cluster(**kw) -> ClusterBuilder:
    """Begin a fluent cluster composition::

        cl = cluster(seed=3).node("n0").node("n1").build()
    """
    return ClusterBuilder(**kw)
