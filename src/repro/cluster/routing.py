"""Cross-node call routing: NIC queue pairs over fabric links.

One :class:`Route` exists per directed, linked node pair.  Its anatomy
mirrors a real RDMA/NVMe-oF initiator-target path, built entirely from
existing primitives:

1. the initiator submits a :class:`_RemoteOp` envelope to the route's
   **NIC queue pair** — an unordered private-memory
   :class:`~repro.ipc.QueuePair` whose pop cost is the NIC's WQE fetch
   (``nic_tx_ns``) and whose ``owner`` names the route, so a sanitizer
   conservation failure says *which node's* NIC leaked;
2. the TX loop pops the envelope, pays the request's serialization +
   propagation on the outbound :class:`~repro.cluster.fabric.FabricLink`,
   and executes the request on the target node through the route's
   **proxy client** (an ordinary unordered LabStorClient connected to
   the target's Runtime at setup);
3. the response pays the return link, then the envelope completes on
   the NIC QP — **always**, as an error completion (NACK) when anything
   failed, so ``submitted == completed + inflight`` holds through node
   crashes, timeouts, and unresolvable mounts;
4. the RX loop reaps completions (``nic_rx_ns`` per reap) and fires the
   initiator's pending event.

Target-node crashes surface naturally: the proxy client's Wait rides
out the crash window and raises :class:`~repro.errors.RuntimeCrashed`,
which comes back to the caller as the NACK payload — the signal
:class:`~repro.cluster.ShardedKVS` uses to fail over to a replica.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..ipc.queue_pair import Completion, QueuePair
from ..sim import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from .builder import Cluster
    from .node import Node

__all__ = ["Route"]

#: fixed wire overhead per message: headers, op code, key framing
WIRE_HEADER_BYTES = 64


def _payload_bytes(value: Any) -> int:
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value)
    return 0


def request_wire_bytes(req: Any) -> int:
    """On-the-wire size of a request: header + payload blobs/strings."""
    payload = getattr(req, "payload", None) or {}
    return WIRE_HEADER_BYTES + sum(_payload_bytes(v) for v in payload.values())


def response_wire_bytes(comp: Completion) -> int:
    """On-the-wire size of a response (errors are header-sized NACKs)."""
    return WIRE_HEADER_BYTES + _payload_bytes(comp.value)


class _RemoteOp:
    """Envelope a remote call rides through the NIC queue pair."""

    __slots__ = ("path", "req", "timeout_ns", "est_ns")

    def __init__(self, path: str, req: Any, timeout_ns: Optional[int]) -> None:
        self.path = path
        self.req = req
        self.timeout_ns = timeout_ns
        self.est_ns = 0  # queue-depth estimator input (NIC QPs don't classify)


class Route:
    """One directed initiator→target path (built by the Cluster)."""

    def __init__(self, cluster: "Cluster", src: "Node", dst: "Node") -> None:
        env = cluster.env
        self.env = env
        self.src = src
        self.dst = dst
        self.out = cluster.fabric.link(src.name, dst.name)
        self.back = cluster.fabric.link(dst.name, src.name)
        self.qp = QueuePair(
            env,
            primary=False,
            ordered=False,
            depth=4096,
            segment=None,
            pop_cost_ns=self.out.cost.nic_tx_ns,
            owner=f"fabric:{src.name}->{dst.name}",
        )
        # target-side execution identity: one unordered client per route,
        # connected at setup (connect drives the sim; mid-run would break)
        self.proxy = dst.client(ordered=False)
        self._pending: dict[int, Event] = {}  # req_id -> initiator event
        self.remote_calls = 0
        self.nacks = 0
        self._tx = env.process(
            self._tx_loop(), name=f"nic.{src.name}->{dst.name}.tx", daemon=True
        )
        self._rx = env.process(
            self._rx_loop(), name=f"nic.{src.name}->{dst.name}.rx", daemon=True
        )

    # -- initiator side ------------------------------------------------
    def call(self, path: str, req: Any, timeout_ns: int | None = None):
        """Process generator: one remote call, raising the remote error."""
        ev = self.env.event()
        self._pending[req.req_id] = ev
        try:
            self.qp.submit(_RemoteOp(path, req, timeout_ns))
            comp = yield ev
        except BaseException:
            self._pending.pop(req.req_id, None)
            raise
        if comp.error is not None:
            raise comp.error
        return comp.value

    # -- NIC loops -------------------------------------------------------
    def _tx_loop(self):
        try:
            while True:
                op = yield from self.qp.pop_request()  # pays the WQE fetch
                # each op executes in its own process so a slow or crashed
                # target never head-of-line blocks the NIC
                self.env.process(
                    self._execute(op),
                    name=f"nic.{self.src.name}->{self.dst.name}.op{op.req.req_id}",
                    daemon=True,
                )
        except Interrupt:
            return  # route closed

    def _execute(self, op: _RemoteOp):
        self.remote_calls += 1
        req = op.req
        try:
            yield from self.out.transfer(request_wire_bytes(req))
            stack, _ = self.dst.runtime.namespace.resolve(op.path)
            value = yield from self.proxy.call(stack, req, timeout_ns=op.timeout_ns)
            comp = Completion(req, value=value)
        except (Interrupt, GeneratorExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - becomes the NACK
            self.nacks += 1
            comp = Completion(req, error=exc)
        try:
            yield from self.back.transfer(response_wire_bytes(comp))
        except (Interrupt, GeneratorExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - return path failed
            if comp.error is None:
                self.nacks += 1
                comp = Completion(req, error=exc)
        # conservation: every accepted submission completes, ack or NACK
        self.qp.complete(comp)

    def _rx_loop(self):
        try:
            while True:
                comp = yield from self.qp.pop_completion()  # pays nic_rx-ish reap
                ev = self._pending.pop(comp.request.req_id, None)
                if ev is not None and not ev.triggered:
                    ev.succeed(comp)
        except Interrupt:
            return  # route closed

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        for proc in (self._tx, self._rx):
            if proc is not None and proc.is_alive:
                proc.interrupt("route closed")
        self._tx = self._rx = None
        self.proxy.close()
        self._pending.clear()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<Route {self.src.name}->{self.dst.name} "
                f"calls={self.remote_calls} nacks={self.nacks}>")
